"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` falls back to this legacy path (setuptools
``develop``) because the offline environment lacks ``bdist_wheel``.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
