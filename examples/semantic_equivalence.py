#!/usr/bin/env python3
"""Scenario: prove the primitives are semantic-preserving — by training.

Aceso's whole search rests on one guarantee (§3.2.1): reconfiguration
primitives change *where and how* work runs, never *what* is computed.
This example trains the same small model under every mechanism the
primitives touch — data parallelism, tensor parallelism (column/row),
pipeline parallelism with microbatching, and activation recomputation —
using the real numpy training runtime, and verifies the losses and
final weights match serial execution to floating-point accuracy.

Run:  python examples/semantic_equivalence.py
"""

from repro.numrt import (
    MLP,
    dp_fn,
    make_dataset,
    max_weight_difference,
    pp_fn,
    rc_fn,
    serial_fn,
    tp_fn,
    train,
)


def main() -> None:
    model = MLP([32, 64, 32, 64, 16], seed=7)
    x, target = make_dataset(48, 32, 16, seed=8)
    steps = 8

    reference = train(model, x, target, serial_fn, steps=steps)
    print(
        f"serial training, {steps} SGD steps: "
        f"loss {reference.losses[0]:.5f} -> {reference.losses[-1]:.5f}"
    )

    mechanisms = [
        ("data parallel x4 (inc-dp)", dp_fn(4)),
        ("data parallel x8 (inc-dp)", dp_fn(8)),
        ("tensor parallel x2 (inc-tp)", tp_fn(2)),
        ("tensor parallel x4 (inc-tp)", tp_fn(4)),
        ("pipeline 2 stages x 4 microbatches (op#/mbs)", pp_fn(2, 4)),
        ("pipeline 4 stages x 8 microbatches (op#/mbs)", pp_fn(4, 8)),
        ("recompute every layer (inc-rc)", rc_fn(1)),
        ("recompute 2-layer segments (inc-rc)", rc_fn(2)),
    ]

    print(f"\n{'mechanism':<46} {'loss gap':>10} {'weight gap':>11}")
    print("-" * 70)
    all_ok = True
    for name, grad_fn in mechanisms:
        run = train(model, x, target, grad_fn, steps=steps)
        loss_gap = max(
            abs(a - b) for a, b in zip(reference.losses, run.losses)
        )
        weight_gap = max_weight_difference(reference.model, run.model)
        ok = loss_gap < 1e-9 and weight_gap < 1e-9
        all_ok &= ok
        print(f"{name:<46} {loss_gap:>10.2e} {weight_gap:>11.2e}"
              f"{'' if ok else '  MISMATCH'}")

    assert all_ok, "a mechanism diverged from serial execution"
    print(
        "\nall mechanisms reproduced serial training exactly — "
        "the search may apply any primitive without touching convergence."
    )


if __name__ == "__main__":
    main()
