#!/usr/bin/env python3
"""Scenario: quick re-planning when cluster resources change.

The paper motivates cheap search with shared clusters whose resources
change frequently: when a job is preempted from 8 GPUs down to 4 (or
granted 8 again), the parallel plan must be recomputed *now* — a
multi-hour Alpa-style search is useless.  This example re-plans GPT-3
2.6B across shrinking and growing allocations, reusing the profile
database where hardware allows, and reports each re-plan's cost.

Run:  python examples/cluster_reconfiguration.py
"""

import time

from repro import (
    Executor,
    SimulatedProfiler,
    build_model,
    build_perf_model,
    paper_cluster,
    search_all_stage_counts,
)


def replan(graph, num_gpus, *, database=None):
    """Profile (if needed) + search + deploy for one allocation."""
    cluster = paper_cluster(num_gpus)
    if database is None:
        database = SimulatedProfiler(cluster, seed=0).profile(graph)
    perf_model = build_perf_model(graph, cluster, database=database)
    start = time.monotonic()
    multi = search_all_stage_counts(
        graph, cluster, perf_model,
        budget_per_count={"max_iterations": 15},
    )
    wall = time.monotonic() - start
    run = Executor(graph, cluster, seed=0).run(multi.best.best_config)
    return {
        "gpus": num_gpus,
        "search_wall": wall,
        "parallel_cost": multi.parallel_seconds,
        "throughput": run.throughput(graph.global_batch_size),
        "config": multi.best.best_config,
        "database": database,
    }


def main() -> None:
    graph = build_model("gpt3-2.6b")
    print(f"model: {graph.describe()}\n")

    # The job's allocation changes over its lifetime: 8 -> 4 -> 8.
    print(f"{'event':<24} {'gpus':>4} {'replan':>8} {'samples/s':>10}")
    print("-" * 52)
    databases = {}
    for event, gpus in [
        ("initial allocation", 8),
        ("preempted to half", 4),
        ("allocation restored", 8),
    ]:
        # Profile databases are per-cluster-shape; the restored
        # allocation reuses the one measured at the start.
        outcome = replan(graph, gpus, database=databases.get(gpus))
        databases[gpus] = outcome["database"]
        print(
            f"{event:<24} {gpus:>4} {outcome['search_wall']:>7.1f}s "
            f"{outcome['throughput']:>10.2f}"
        )

    print(
        "\nevery re-plan completed in seconds — the regime the paper's "
        "<5%-of-Alpa search cost targets (Exp#2)."
    )
    final = replan(graph, 8, database=databases[8])
    print("final plan on the restored allocation:")
    print(final["config"].describe())


if __name__ == "__main__":
    main()
