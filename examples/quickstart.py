#!/usr/bin/env python3
"""Quickstart: search a parallel plan for GPT-3 1.3B on 4 GPUs.

Walks the full Aceso loop end to end:

1. build the model IR and the (simulated) V100 cluster;
2. profile the operators into a reusable database;
3. run the iterative bottleneck-alleviation search over every
   pipeline stage count;
4. deploy the winner on the ground-truth executor and report
   throughput and TFLOPS.

Run:  python examples/quickstart.py
"""

from repro import (
    Executor,
    SimulatedProfiler,
    build_model,
    build_perf_model,
    paper_cluster,
    search_all_stage_counts,
    tflops_per_gpu,
)


def main() -> None:
    # 1. Model + hardware.  Any registry name works (gpt3-*, t5-*,
    #    wresnet-*, gpt-<N>l); the cluster mirrors the paper's testbed.
    graph = build_model("gpt3-1.3b")
    cluster = paper_cluster(4)
    print(f"model:   {graph.describe()}")
    print(f"cluster: {cluster.describe()}")

    # 2. Profile once; the database is keyed by op signature, so the
    #    24 identical transformer layers collapse to a handful of
    #    measurements (and it can be saved/loaded for reuse).
    profiler = SimulatedProfiler(cluster, seed=0)
    database = profiler.profile(graph)
    print(
        f"profiled {database.num_ops} unique op signatures "
        f"covering {graph.num_ops} ops"
    )

    # 3. Search.  One independent run per pipeline stage count (the
    #    paper parallelizes these; their wall-clock cost is the slowest
    #    single run).
    perf_model = build_perf_model(graph, cluster, database=database)
    result = search_all_stage_counts(
        graph,
        cluster,
        perf_model,
        budget_per_count={"max_iterations": 20},
    )
    best = result.best
    print(
        f"\nsearch done: {perf_model.num_estimates} configurations "
        f"estimated, parallel cost {result.parallel_seconds:.1f}s"
    )
    print(f"predicted iteration time: {best.best_objective:.2f}s")
    print(best.best_config.describe())

    # 4. Deploy on the ground-truth executor (the stand-in for a real
    #    cluster run) and report what the paper's Figure 7 reports.
    executor = Executor(graph, cluster, seed=0)
    run = executor.run(best.best_config)
    throughput = run.throughput(graph.global_batch_size)
    print(f"\nmeasured iteration time: {run.iteration_time:.2f}s")
    print(
        f"throughput: {throughput:.2f} samples/s  "
        f"({tflops_per_gpu(graph, throughput, cluster.num_gpus):.1f} "
        f"TFLOPS/GPU)"
    )
    print(f"pipeline bubble fraction: {run.bubble_fraction:.1%}")
    print(f"peak memory per stage: "
          f"{[f'{m / 2**30:.1f}GB' for m in run.stage_peak_memory]}")


if __name__ == "__main__":
    main()
