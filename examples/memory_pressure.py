#!/usr/bin/env python3
"""Scenario: a model that does not fit — watch the search rescue it.

GPT-3 6.7B on 8 V100s is the paper's motivating regime: pure data
parallelism is impossible (6.7B x 18 bytes of state per GPU), so the
planner must trade pipeline depth, tensor parallelism, and op-level
recomputation against each other.  This example shows the bottleneck-
alleviation loop doing exactly that, iteration by iteration.

Run:  python examples/memory_pressure.py
"""

from repro import (
    AcesoSearch,
    Executor,
    SearchBudget,
    balanced_config,
    build_model,
    build_perf_model,
    paper_cluster,
)
from repro.core import identify_bottleneck


def main() -> None:
    graph = build_model("gpt3-6.7b")
    cluster = paper_cluster(8)
    perf_model = build_perf_model(graph, cluster)
    print(f"model:   {graph.describe()}")
    print(f"cluster: {cluster.describe()}")

    # A naive balanced 4-stage start.
    init = balanced_config(graph, cluster, 4)
    report = perf_model.estimate(init)
    print("\ninitial configuration:")
    print(init.describe())
    print(
        f"predicted peak memory per stage: "
        f"{[f'{m / 2**30:.1f}GB' for m in report.peak_memories]} "
        f"(limit {report.memory_limit / 2**30:.0f}GB)"
    )
    if report.is_oom:
        bottleneck = identify_bottleneck(report)
        print(
            f"OUT OF MEMORY — Heuristic-1 picks stage "
            f"{bottleneck.stage}, scarce resource "
            f"'{bottleneck.primary_resource}' (safety first)"
        )

    # Let the search alleviate bottlenecks until feasible and fast.
    search = AcesoSearch(graph, cluster, perf_model)
    result = search.run(init, SearchBudget(max_iterations=25))
    print("\nafter search:")
    print(result.best_config.describe())
    final = perf_model.estimate(result.best_config)
    print(
        f"predicted peak memory per stage: "
        f"{[f'{m / 2**30:.1f}GB' for m in final.peak_memories]}"
    )
    recomputed = sum(
        int(s.recompute.sum()) for s in result.best_config.stages
    )
    print(
        f"ops recomputed: {recomputed}/{graph.num_ops} "
        f"(op-level, not all-or-nothing)"
    )

    # Deploy.
    run = Executor(graph, cluster).run(result.best_config)
    assert not run.oom, "search must deliver a deployable plan"
    print(
        f"\ndeployed: {run.iteration_time:.1f}s per iteration, "
        f"{run.throughput(graph.global_batch_size):.2f} samples/s, "
        f"no OOM"
    )

    # Show the trace: how many iterations improved, and how.
    improving = [r for r in result.trace.records if r.improved]
    multi_hop = sum(1 for r in improving if r.hops_used > 1)
    print(
        f"search trace: {result.trace.num_iterations} iterations, "
        f"{len(improving)} improved ({multi_hop} needed multi-hop)"
    )


if __name__ == "__main__":
    main()
