#!/usr/bin/env python3
"""Scenario: heterogeneous models need uneven pipelines (T5).

T5 mixes encoder layers (sequence length 2048) with much cheaper
decoder layers (sequence length 512 + cross-attention), so an
equal-op-count pipeline split — all Megatron-LM can express — is badly
imbalanced.  This example contrasts the Megatron-style plan with
Aceso's cost-balanced, uneven split and quantifies the bubble each one
pays on the ground-truth executor.

Run:  python examples/heterogeneous_t5.py
"""

import numpy as np

from repro import (
    Executor,
    build_model,
    build_perf_model,
    paper_cluster,
    search_all_stage_counts,
)
from repro.baselines import megatron_grid_search


def stage_costs(graph, config):
    """Training FLOPs per stage (the imbalance the planner must fix)."""
    weights = graph.arrays.flops + graph.arrays.bwd_flops
    return [
        float(weights[s.start:s.end].sum()) / 1e12 for s in config.stages
    ]


def main() -> None:
    graph = build_model("t5-3b")
    cluster = paper_cluster(4)
    perf_model = build_perf_model(graph, cluster)
    executor = Executor(graph, cluster)
    print(f"model:   {graph.describe()}")

    enc_ops = sum(
        1 for op in graph.ops if op.name.startswith(("enc", "dec"))
    )
    print(
        f"{enc_ops} transformer ops; encoder token count is 4x the "
        f"decoder's, so per-op costs differ sharply"
    )

    # Megatron-LM: stages split by op count, one global setting.
    grid = megatron_grid_search(graph, cluster, perf_model)
    mega = grid.best_config
    print("\nMegatron-LM best plan (even op counts):")
    print(mega.describe())
    print(f"  per-stage TFLOPs: "
          f"{[f'{c:.0f}' for c in stage_costs(graph, mega)]}")

    # Aceso: op movement balances *cost*, not count.
    multi = search_all_stage_counts(
        graph, cluster, perf_model,
        budget_per_count={"max_iterations": 20},
    )
    aceso = multi.best.best_config
    print("\nAceso best plan (cost-balanced spans):")
    print(aceso.describe())
    print(f"  per-stage TFLOPs: "
          f"{[f'{c:.0f}' for c in stage_costs(graph, aceso)]}")

    # Deploy both.
    mega_run = executor.run(mega)
    aceso_run = executor.run(aceso)
    print(
        f"\nMegatron-LM: {mega_run.iteration_time:.1f}s/iter, "
        f"bubble {mega_run.bubble_fraction:.1%}"
    )
    print(
        f"Aceso:       {aceso_run.iteration_time:.1f}s/iter, "
        f"bubble {aceso_run.bubble_fraction:.1%}"
    )
    speedup = mega_run.iteration_time / aceso_run.iteration_time
    print(f"speedup: {speedup:.2f}x (paper reports up to 1.50x on T5)")

    if aceso.num_stages > 1:
        spans = np.diff([s.start for s in aceso.stages] +
                        [aceso.stages[-1].end])
        if len(set(spans.tolist())) > 1:
            print(
                "note: Aceso's stages hold *unequal op counts* "
                f"({spans.tolist()}) — outside Megatron-LM's space"
            )


if __name__ == "__main__":
    main()
