"""Per-stage parallel configuration.

A pipeline stage owns a contiguous op span ``[start, end)`` and a device
count, and stores *per-op* parallel settings as numpy arrays (tensor
degree, data degree, partition-dimension index, recompute flag).  The
array layout is what lets the performance model cost 1K-layer
configurations with vectorized gathers, and what keeps primitive
application (copy + slice assignment) cheap during search.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value >= 1 and (value & (value - 1)) == 0


@dataclass
class StageConfig:
    """Configuration of one pipeline stage.

    Attributes:
        start: first op index (inclusive).
        end: last op index (exclusive).
        num_devices: GPUs assigned to this stage.
        tp: per-op tensor-parallel degree, shape ``(end - start,)``.
        dp: per-op data-parallel degree; ``tp * dp == num_devices``.
        tp_dim: per-op partition-option index.
        recompute: per-op recomputation flag.
    """

    start: int
    end: int
    num_devices: int
    tp: np.ndarray
    dp: np.ndarray
    tp_dim: np.ndarray
    recompute: np.ndarray
    # Lazily computed identity caches.  A stage is semantically frozen
    # once it has been costed/hashed; the mutation helpers that are
    # allowed to edit arrays in place reset these (see
    # ``_invalidate_signature``), and ``clone()`` never copies them.
    _sig_bytes: Optional[bytes] = field(
        default=None, repr=False, compare=False
    )
    _sig_digest: Optional[bytes] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def uniform(
        cls,
        start: int,
        end: int,
        num_devices: int,
        *,
        tp: int = 1,
        tp_dim: int = 0,
        recompute: bool = False,
    ) -> "StageConfig":
        """Build a stage where every op shares one (tp, dp) setting."""
        if end <= start:
            raise ValueError(f"empty stage span [{start}, {end})")
        if not is_power_of_two(num_devices):
            raise ValueError(f"num_devices must be a power of two: {num_devices}")
        if not is_power_of_two(tp) or tp > num_devices:
            raise ValueError(f"invalid tp={tp} for {num_devices} devices")
        n = end - start
        return cls(
            start=start,
            end=end,
            num_devices=num_devices,
            tp=np.full(n, tp, dtype=np.int64),
            dp=np.full(n, num_devices // tp, dtype=np.int64),
            tp_dim=np.full(n, tp_dim, dtype=np.int64),
            recompute=np.full(n, recompute, dtype=bool),
        )

    def __post_init__(self) -> None:
        n = self.end - self.start
        for name in ("tp", "dp", "tp_dim", "recompute"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ValueError(
                    f"stage array {name!r} has shape {arr.shape}, "
                    f"expected ({n},)"
                )

    @property
    def num_ops(self) -> int:
        return self.end - self.start

    @property
    def op_indices(self) -> range:
        return range(self.start, self.end)

    def clone(self) -> "StageConfig":
        """Deep copy (arrays copied so mutations stay local)."""
        return StageConfig(
            start=self.start,
            end=self.end,
            num_devices=self.num_devices,
            tp=self.tp.copy(),
            dp=self.dp.copy(),
            tp_dim=self.tp_dim.copy(),
            recompute=self.recompute.copy(),
        )

    def slice_arrays(self, lo: int, hi: int) -> "StageConfig":
        """New stage covering local op range ``[lo, hi)`` of this one."""
        if not 0 <= lo < hi <= self.num_ops:
            raise ValueError(f"bad local slice [{lo}, {hi})")
        return StageConfig(
            start=self.start + lo,
            end=self.start + hi,
            num_devices=self.num_devices,
            tp=self.tp[lo:hi].copy(),
            dp=self.dp[lo:hi].copy(),
            tp_dim=self.tp_dim[lo:hi].copy(),
            recompute=self.recompute[lo:hi].copy(),
        )

    def set_uniform_parallel(self, tp: int) -> None:
        """Reset every op to degree ``tp`` (dp follows)."""
        if not is_power_of_two(tp) or tp > self.num_devices:
            raise ValueError(f"invalid tp={tp} for {self.num_devices} devices")
        self.tp[:] = tp
        self.dp[:] = self.num_devices // tp
        self._invalidate_signature()

    def _invalidate_signature(self) -> None:
        """Drop cached identity after an in-place mutation."""
        self._sig_bytes = None
        self._sig_digest = None

    def with_devices(self, num_devices: int) -> "StageConfig":
        """Copy with a new device count, rescaling per-op dp.

        Ops keep their tensor degree when it still fits; ops whose tp
        exceeds the new device count are clamped down to it.
        """
        if not is_power_of_two(num_devices):
            raise ValueError(f"num_devices must be a power of two: {num_devices}")
        stage = self.clone()
        stage.num_devices = num_devices
        np.minimum(stage.tp, num_devices, out=stage.tp)
        stage.dp = num_devices // stage.tp
        return stage

    def signature_bytes(self) -> bytes:
        """Raw bytes identifying this stage's semantics (for hashing)."""
        if self._sig_bytes is None:
            header = np.array(
                [self.start, self.end, self.num_devices], dtype=np.int64
            )
            self._sig_bytes = b"".join(
                (
                    header.tobytes(),
                    self.tp.tobytes(),
                    self.dp.tobytes(),
                    self.tp_dim.tobytes(),
                    self.recompute.tobytes(),
                )
            )
        return self._sig_bytes

    def digest(self) -> bytes:
        """16-byte stable hash of :meth:`signature_bytes` (cached)."""
        if self._sig_digest is None:
            self._sig_digest = hashlib.blake2b(
                self.signature_bytes(), digest_size=16
            ).digest()
        return self._sig_digest
