"""Configuration-space size estimates (Figure 1).

The paper motivates Aceso with the exponential growth of the joint
configuration space.  These are analytic combinatorial counts (in
log10) of the spaces reachable with 2, 3, and 4 mechanisms, matching
Figure 1's setting: GPT models on 16 devices, per-layer decisions.
"""

from __future__ import annotations

import math
from typing import Dict, List


def _log10_comb(n: int, k: int) -> float:
    """log10 of C(n, k) via lgamma (stable for huge n)."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(10)


def _log10_sum(terms: List[float]) -> float:
    """log10 of a sum given log10 terms (logsumexp in base 10)."""
    finite = [t for t in terms if t != float("-inf")]
    if not finite:
        return float("-inf")
    peak = max(finite)
    return peak + math.log10(sum(10 ** (t - peak) for t in finite))


def dp_tp_choices(num_gpus: int) -> int:
    """(dp, tp) pairs with dp * tp == num_gpus, both powers of two."""
    if num_gpus < 1 or num_gpus & (num_gpus - 1):
        raise ValueError("num_gpus must be a power of two")
    return num_gpus.bit_length()


def log10_configs_2mech(num_layers: int, num_gpus: int) -> float:
    """Data + tensor parallelism: independent per-layer (dp, tp) picks."""
    if num_layers < 1:
        raise ValueError("num_layers must be positive")
    return num_layers * math.log10(dp_tp_choices(num_gpus))


def log10_configs_3mech(num_layers: int, num_gpus: int) -> float:
    """+ pipeline parallelism: stage count, layer cuts, device split.

    Counts, for each stage count S: layer compositions C(L-1, S-1),
    ordered power-of-two device splits of G into S parts (approximated
    by compositions of the log2 exponent), and per-layer intra-stage
    (dp, tp) choices.
    """
    choices = dp_tp_choices(num_gpus)
    terms = []
    max_stages = min(num_layers, num_gpus)
    for stages in range(1, max_stages + 1):
        layer_cuts = _log10_comb(num_layers - 1, stages - 1)
        device_splits = _log10_comb(
            int(math.log2(num_gpus)) + stages - 1, stages - 1
        )
        intra = num_layers * math.log10(choices)
        terms.append(layer_cuts + device_splits + intra)
    return _log10_sum(terms)


def log10_configs_4mech(num_layers: int, num_gpus: int) -> float:
    """+ per-layer recomputation: one more binary choice per layer."""
    return log10_configs_3mech(num_layers, num_gpus) + num_layers * math.log10(2)


def config_space_table(
    layer_counts: List[int], num_gpus: int = 16
) -> Dict[str, List[float]]:
    """Figure 1's series: log10(#configs) per mechanism count."""
    return {
        "layers": [float(n) for n in layer_counts],
        "2 mechanisms": [
            log10_configs_2mech(n, num_gpus) for n in layer_counts
        ],
        "3 mechanisms": [
            log10_configs_3mech(n, num_gpus) for n in layer_counts
        ],
        "4 mechanisms": [
            log10_configs_4mech(n, num_gpus) for n in layer_counts
        ],
    }
