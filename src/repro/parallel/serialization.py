"""Plan serialization: save and reload parallel configurations.

A searched plan is a deployment artifact — it outlives the process that
found it (the paper's shared-cluster motivation) — so it must round-trip
through JSON losslessly, including the semantic signature used for
deduplication and executor-noise seeding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .config import ParallelConfig
from .stage import StageConfig

#: Format marker so future layout changes can stay loadable.
FORMAT_VERSION = 1


def config_to_dict(config: ParallelConfig) -> dict:
    """Plain-python representation of a configuration."""
    return {
        "format_version": FORMAT_VERSION,
        "microbatch_size": config.microbatch_size,
        "stages": [
            {
                "start": stage.start,
                "end": stage.end,
                "num_devices": stage.num_devices,
                "tp": stage.tp.tolist(),
                "dp": stage.dp.tolist(),
                "tp_dim": stage.tp_dim.tolist(),
                "recompute": stage.recompute.tolist(),
            }
            for stage in config.stages
        ],
    }


def config_from_dict(data: dict) -> ParallelConfig:
    """Inverse of :func:`config_to_dict` (validates the version)."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported plan format version: {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    stages = [
        StageConfig(
            start=int(s["start"]),
            end=int(s["end"]),
            num_devices=int(s["num_devices"]),
            tp=np.asarray(s["tp"], dtype=np.int64),
            dp=np.asarray(s["dp"], dtype=np.int64),
            tp_dim=np.asarray(s["tp_dim"], dtype=np.int64),
            recompute=np.asarray(s["recompute"], dtype=bool),
        )
        for s in data["stages"]
    ]
    return ParallelConfig(
        stages=stages, microbatch_size=int(data["microbatch_size"])
    )


def save_config(config: ParallelConfig, path: Union[str, Path]) -> None:
    """Write a plan to a JSON file."""
    Path(path).write_text(json.dumps(config_to_dict(config), indent=2))


def load_config(path: Union[str, Path]) -> ParallelConfig:
    """Read a plan from a JSON file."""
    return config_from_dict(json.loads(Path(path).read_text()))
