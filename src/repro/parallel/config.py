"""Whole-model parallel configuration.

A :class:`ParallelConfig` is exactly the paper's "configuration": a
pipeline partition of the op chain into stages with device counts, a
global (aggregated) microbatch size, and per-op tensor/data degrees,
partition dimensions, and recompute flags.  It can express every plan
Megatron-LM or Alpa emits (§3.1 "Configuration representation") plus
the op-level refinements only Aceso reaches.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

import numpy as np

from .stage import StageConfig


@dataclass
class ParallelConfig:
    """One point in Aceso's search space.

    Attributes:
        stages: pipeline stages in order; spans must tile the op chain.
        microbatch_size: aggregated samples per microbatch (shared by
            every stage; a stage's per-GPU share is ``mbs / dp``).
    """

    stages: List[StageConfig]
    microbatch_size: int = 1
    _signature: str = field(default="", repr=False, compare=False)
    _cache_key: bytes = field(default=b"", repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("configuration needs at least one stage")
        if self.microbatch_size < 1:
            raise ValueError("microbatch_size must be positive")

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_ops(self) -> int:
        return self.stages[-1].end - self.stages[0].start

    @property
    def total_devices(self) -> int:
        return sum(stage.num_devices for stage in self.stages)

    def num_microbatches(self, global_batch_size: int) -> int:
        """Microbatches per iteration for a given global batch."""
        if global_batch_size % self.microbatch_size:
            raise ValueError(
                f"batch {global_batch_size} not divisible by microbatch "
                f"{self.microbatch_size}"
            )
        return global_batch_size // self.microbatch_size

    def stage_of_op(self, op_index: int) -> int:
        """Stage index owning global op ``op_index``."""
        for i, stage in enumerate(self.stages):
            if stage.start <= op_index < stage.end:
                return i
        raise IndexError(f"op {op_index} not covered by any stage")

    def stage_first_device(self, stage_index: int) -> int:
        """First global device id of a stage under contiguous placement."""
        return sum(s.num_devices for s in self.stages[:stage_index])

    # ------------------------------------------------------------------
    # copying / identity
    # ------------------------------------------------------------------
    def clone(self) -> "ParallelConfig":
        """Deep copy; the cached signature is dropped."""
        return ParallelConfig(
            stages=[stage.clone() for stage in self.stages],
            microbatch_size=self.microbatch_size,
        )

    def mutated_copy(
        self, dirty_stages: Iterable[int] = ()
    ) -> "ParallelConfig":
        """Copy that deep-copies only ``dirty_stages``.

        Clean stages are *shared by reference* with this config, which
        keeps their cached signatures/digests (and therefore the
        performance model's per-stage cost cache) valid in the copy.
        Callers must only mutate the stages they declared dirty.
        """
        dirty = set(dirty_stages)
        return ParallelConfig(
            stages=[
                stage.clone() if i in dirty else stage
                for i, stage in enumerate(self.stages)
            ],
            microbatch_size=self.microbatch_size,
        )

    def signature(self) -> str:
        """Semantic hash for deduplication (§4.3).

        Two configurations that apply the same settings to the same op
        spans hash identically even when reached via different primitive
        sequences.  Stages cache their raw ``signature_bytes``, so for
        configs produced via :meth:`mutated_copy` only the dirty
        stages re-serialize their arrays.
        """
        if not self._signature:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(
                np.array([self.microbatch_size], dtype=np.int64).tobytes()
            )
            for stage in self.stages:
                digest.update(stage.signature_bytes())
            self._signature = digest.hexdigest()
        return self._signature

    def cache_key(self) -> bytes:
        """Fast identity key for memoization hot paths.

        Semantically equivalent to :meth:`signature` (two configs get
        the same key iff they apply the same settings to the same op
        spans) but composed from the stages' cached 16-byte digests
        instead of their full array serializations, so computing it
        hashes ~100 bytes rather than kilobytes.  Kept separate from
        :meth:`signature` on purpose: the executor seeds its measurement
        noise from the signature's exact value, so the signature's byte
        layout is load-bearing and must not change, while this key only
        needs to be unique.
        """
        if not self._cache_key:
            parts = [
                int(self.microbatch_size).to_bytes(8, "little", signed=True)
            ]
            parts += [stage.digest() for stage in self.stages]
            self._cache_key = hashlib.blake2b(
                b"".join(parts), digest_size=16
            ).digest()
        return self._cache_key

    # ------------------------------------------------------------------
    # whole-model array views (used by the performance model)
    # ------------------------------------------------------------------
    def gather_arrays(self):
        """Concatenate per-stage op arrays over the whole model.

        Returns ``(tp, dp, tp_dim, recompute, stage_id)`` numpy arrays,
        each with one entry per op in global op order.
        """
        tp = np.concatenate([s.tp for s in self.stages])
        dp = np.concatenate([s.dp for s in self.stages])
        tp_dim = np.concatenate([s.tp_dim for s in self.stages])
        recompute = np.concatenate([s.recompute for s in self.stages])
        stage_id = np.concatenate(
            [np.full(s.num_ops, i, dtype=np.int64)
             for i, s in enumerate(self.stages)]
        )
        return tp, dp, tp_dim, recompute, stage_id

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Compact multi-line human summary of the plan."""
        lines = [
            f"{self.num_stages}-stage pipeline, microbatch={self.microbatch_size}"
        ]
        for i, stage in enumerate(self.stages):
            tps = np.unique(stage.tp)
            dps = np.unique(stage.dp)
            rc = int(stage.recompute.sum())
            tp_text = str(tps[0]) if len(tps) == 1 else f"{{{','.join(map(str, tps))}}}"
            dp_text = str(dps[0]) if len(dps) == 1 else f"{{{','.join(map(str, dps))}}}"
            lines.append(
                f"  stage {i}: ops [{stage.start}, {stage.end}) on "
                f"{stage.num_devices} GPUs, tp={tp_text}, dp={dp_text}, "
                f"recompute {rc}/{stage.num_ops} ops"
            )
        return "\n".join(lines)

    def summary_tuple(self):
        """Hashable compact summary (stage spans + device counts)."""
        return tuple(
            (s.start, s.end, s.num_devices) for s in self.stages
        ) + (self.microbatch_size,)


def changed_stages(
    new: ParallelConfig, old: ParallelConfig
) -> Tuple[int, ...]:
    """Stage indices of ``new`` that differ from ``old``.

    Relies on the copy-on-write discipline of
    :meth:`ParallelConfig.mutated_copy`: a stage object shared by
    identity between the two configs is by construction unchanged.
    When the stage counts differ every stage of ``new`` is reported.
    """
    if new.num_stages != old.num_stages:
        return tuple(range(new.num_stages))
    return tuple(
        i
        for i, (a, b) in enumerate(zip(new.stages, old.stages))
        if a is not b
    )
