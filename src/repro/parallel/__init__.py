"""Parallel-configuration representation, validation, initialization."""

from .config import ParallelConfig, changed_stages
from .initializer import (
    balanced_config,
    imbalanced_gpu_config,
    imbalanced_op_config,
    minimum_microbatch_size,
    split_devices,
    split_ops_balanced,
)
from .serialization import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from .space import (
    config_space_table,
    dp_tp_choices,
    log10_configs_2mech,
    log10_configs_3mech,
    log10_configs_4mech,
)
from .stage import StageConfig, is_power_of_two
from .validation import ConfigError, is_valid, validate_config

__all__ = [
    "ConfigError",
    "config_from_dict",
    "config_to_dict",
    "load_config",
    "save_config",
    "ParallelConfig",
    "StageConfig",
    "balanced_config",
    "changed_stages",
    "config_space_table",
    "dp_tp_choices",
    "imbalanced_gpu_config",
    "imbalanced_op_config",
    "is_power_of_two",
    "is_valid",
    "log10_configs_2mech",
    "log10_configs_3mech",
    "log10_configs_4mech",
    "minimum_microbatch_size",
    "split_devices",
    "split_ops_balanced",
    "validate_config",
]
