"""Initial-configuration generators.

Aceso starts from "a default configuration with a balanced partition
and minimum microbatch size" (§5.2, Exp#7), and the robustness study
adds two deliberately bad starting points: imbalanced op partition and
imbalanced GPU allocation.  All three generators live here.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from .config import ParallelConfig
from .stage import StageConfig, is_power_of_two


def split_devices(total: int, parts: int) -> List[int]:
    """Partition ``total`` GPUs into ``parts`` power-of-two counts.

    ``total`` must itself be a power of two with ``parts <= total``.
    The split is as even as a power-of-two partition allows, e.g.
    ``split_devices(32, 3) == [8, 8, 16]``.
    """
    if not is_power_of_two(total):
        raise ValueError(f"total devices must be a power of two: {total}")
    if not 1 <= parts <= total:
        raise ValueError(f"cannot split {total} devices into {parts} parts")
    base = 1
    while base * 2 * parts <= total:
        base *= 2
    counts = [base] * parts
    leftover = total - base * parts
    # Absorb the leftover by doubling counts right-to-left; leftover is
    # always a multiple of ``base`` and the greedy drains it before
    # running out of stages (see tests for the exhaustive check).
    index = parts - 1
    while leftover > 0:
        if index < 0:
            raise AssertionError(
                f"split_devices failed: total={total} parts={parts}"
            )
        if counts[index] <= leftover:
            leftover -= counts[index]
            counts[index] *= 2
        else:
            index -= 1
    return counts


def split_ops_balanced(
    graph: OpGraph, num_stages: int, weights: np.ndarray = None
) -> List[int]:
    """Split the op chain into ``num_stages`` spans of ~equal weight.

    Returns the list of span boundaries ``[0, b1, ..., num_ops]``.
    ``weights`` defaults to per-op training FLOPs.  Every span is
    non-empty (requires ``num_stages <= num_ops``).
    """
    n = graph.num_ops
    if not 1 <= num_stages <= n:
        raise ValueError(
            f"cannot split {n} ops into {num_stages} stages"
        )
    if weights is None:
        weights = graph.arrays.flops + graph.arrays.bwd_flops
    cumulative = np.concatenate([[0.0], np.cumsum(weights)])
    total = cumulative[-1]
    boundaries = [0]
    for k in range(1, num_stages):
        target = total * k / num_stages
        cut = int(np.searchsorted(cumulative, target))
        cut = max(cut, boundaries[-1] + 1)  # keep spans non-empty
        cut = min(cut, n - (num_stages - k))  # leave room for the rest
        boundaries.append(cut)
    boundaries.append(n)
    return boundaries


def minimum_microbatch_size(device_counts: List[int]) -> int:
    """Smallest aggregated microbatch valid for every stage's max dp."""
    return max(device_counts)


def balanced_config(
    graph: OpGraph,
    cluster: ClusterSpec,
    num_stages: int,
    *,
    microbatch_size: int = None,
    tp: int = 1,
) -> ParallelConfig:
    """The paper's default starting point: even split, minimum mbs."""
    device_counts = split_devices(cluster.num_gpus, num_stages)
    boundaries = split_ops_balanced(graph, num_stages)
    return _assemble(graph, boundaries, device_counts, microbatch_size, tp)


def imbalanced_op_config(
    graph: OpGraph,
    cluster: ClusterSpec,
    num_stages: int,
    *,
    skew: float = 3.0,
    microbatch_size: int = None,
) -> ParallelConfig:
    """Exp#7 "imbalance-op": front stages get ``skew``x the op weight."""
    if skew <= 0:
        raise ValueError("skew must be positive")
    n = graph.num_ops
    base = graph.arrays.flops + graph.arrays.bwd_flops
    ramp = np.linspace(skew, 1.0, n)
    boundaries = split_ops_balanced(graph, num_stages, weights=base * ramp)
    device_counts = split_devices(cluster.num_gpus, num_stages)
    return _assemble(graph, boundaries, device_counts, microbatch_size, 1)


def _split_any(total: int, parts: int) -> List[int]:
    """Partition any ``total`` into ``parts`` power-of-two counts.

    Returns ``None`` when no such partition exists (e.g. 7 into 2).
    """
    if parts < 1 or parts > total:
        return None
    counts = [1] * parts
    leftover = total - parts
    index = parts - 1
    while leftover > 0 and index >= 0:
        if counts[index] <= leftover:
            leftover -= counts[index]
            counts[index] *= 2
        else:
            index -= 1
    if leftover:
        return None
    return counts


def imbalanced_gpu_config(
    graph: OpGraph,
    cluster: ClusterSpec,
    num_stages: int,
    *,
    microbatch_size: int = None,
) -> ParallelConfig:
    """Exp#7 "imbalance-GPU": one stage hoards devices.

    The first stage takes the largest power-of-two hoard that still
    leaves a valid power-of-two split for the remaining stages; when
    even that equals the balanced split (tiny clusters), the balanced
    configuration is returned.
    """
    if num_stages < 2:
        return balanced_config(graph, cluster, num_stages,
                               microbatch_size=microbatch_size)
    hoard = cluster.num_gpus // 2
    device_counts = None
    while hoard >= 1:
        rest = _split_any(cluster.num_gpus - hoard, num_stages - 1)
        if rest is not None:
            device_counts = [hoard] + rest
            break
        hoard //= 2
    if device_counts is None:
        return balanced_config(graph, cluster, num_stages,
                               microbatch_size=microbatch_size)
    boundaries = split_ops_balanced(graph, num_stages)
    return _assemble(graph, boundaries, device_counts, microbatch_size, 1)


def _assemble(
    graph: OpGraph,
    boundaries: List[int],
    device_counts: List[int],
    microbatch_size: int,
    tp: int,
) -> ParallelConfig:
    if microbatch_size is None:
        microbatch_size = minimum_microbatch_size(device_counts)
        # dp per op never exceeds the stage device count, and the
        # minimum mbs equals the largest such count, so divisibility
        # of mbs by dp holds by construction.
    stages = []
    for i, devices in enumerate(device_counts):
        stage_tp = min(tp, devices)
        stages.append(
            StageConfig.uniform(
                boundaries[i],
                boundaries[i + 1],
                devices,
                tp=stage_tp,
            )
        )
    if graph.global_batch_size % microbatch_size:
        # Snap down to the nearest divisor (powers of two always divide
        # the paper's batch sizes; general graphs may need the search).
        mbs = microbatch_size
        while mbs > 1 and graph.global_batch_size % mbs:
            mbs -= 1
        microbatch_size = mbs
    return ParallelConfig(stages=stages, microbatch_size=microbatch_size)
