"""Structural validation of parallel configurations.

The search only ever constructs valid configurations, but primitives
are easier to write (and test) against a single authoritative checker.
``validate_config`` raises :class:`ConfigError` with a precise message
on the first violated invariant.
"""

from __future__ import annotations

import numpy as np

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from .config import ParallelConfig
from .stage import is_power_of_two


class ConfigError(ValueError):
    """A parallel configuration violates a structural invariant."""


def validate_config(
    config: ParallelConfig,
    graph: OpGraph,
    cluster: ClusterSpec,
) -> None:
    """Check every invariant of ``config`` against model and hardware.

    Invariants (from §3.1 and §5.1 of the paper):

    1. stage spans tile ``[0, num_ops)`` contiguously;
    2. stage device counts are powers of two summing to the cluster size;
    3. per-op ``tp``/``dp`` are powers of two with ``tp * dp`` equal to
       the stage's device count;
    4. per-op ``tp_dim`` indexes a real partition option;
    5. the aggregated microbatch size divides the global batch and is
       divisible by every op's ``dp`` (integral per-GPU share);
    6. ``tp`` never exceeds the cluster size.
    """
    _check_spans(config, graph)
    _check_devices(config, cluster)
    _check_parallel_degrees(config, cluster)
    _check_tp_dims(config, graph)
    _check_microbatch(config, graph)


def _check_spans(config: ParallelConfig, graph: OpGraph) -> None:
    expected = 0
    for i, stage in enumerate(config.stages):
        if stage.start != expected:
            raise ConfigError(
                f"stage {i} starts at op {stage.start}, expected {expected}"
            )
        if stage.end <= stage.start:
            raise ConfigError(f"stage {i} has empty span")
        expected = stage.end
    if expected != graph.num_ops:
        raise ConfigError(
            f"stages cover {expected} ops but the graph has {graph.num_ops}"
        )


def _check_devices(config: ParallelConfig, cluster: ClusterSpec) -> None:
    total = 0
    for i, stage in enumerate(config.stages):
        if not is_power_of_two(stage.num_devices):
            raise ConfigError(
                f"stage {i} device count {stage.num_devices} is not a "
                f"power of two"
            )
        total += stage.num_devices
    if total != cluster.num_gpus:
        raise ConfigError(
            f"stages use {total} devices but the cluster has "
            f"{cluster.num_gpus}"
        )


def _check_parallel_degrees(
    config: ParallelConfig, cluster: ClusterSpec
) -> None:
    for i, stage in enumerate(config.stages):
        for name, arr in (("tp", stage.tp), ("dp", stage.dp)):
            if np.any(arr < 1):
                raise ConfigError(f"stage {i} has non-positive {name}")
            bad = arr & (arr - 1)
            if np.any(bad):
                raise ConfigError(
                    f"stage {i} has non-power-of-two {name} values"
                )
        if np.any(stage.tp * stage.dp != stage.num_devices):
            raise ConfigError(
                f"stage {i}: tp * dp != num_devices ({stage.num_devices})"
            )
        if np.any(stage.tp > cluster.num_gpus):
            raise ConfigError(f"stage {i} tp exceeds cluster size")


def _check_tp_dims(config: ParallelConfig, graph: OpGraph) -> None:
    num_options = graph.arrays.num_options
    for i, stage in enumerate(config.stages):
        if np.any(stage.tp_dim < 0):
            raise ConfigError(f"stage {i} has negative tp_dim")
        limit = num_options[stage.start:stage.end]
        if np.any(stage.tp_dim >= limit):
            raise ConfigError(
                f"stage {i} has tp_dim beyond an op's partition options"
            )


def _check_microbatch(config: ParallelConfig, graph: OpGraph) -> None:
    mbs = config.microbatch_size
    if graph.global_batch_size % mbs:
        raise ConfigError(
            f"microbatch {mbs} does not divide global batch "
            f"{graph.global_batch_size}"
        )
    for i, stage in enumerate(config.stages):
        if np.any(mbs % stage.dp):
            raise ConfigError(
                f"stage {i}: microbatch {mbs} not divisible by some op dp"
            )


def is_valid(
    config: ParallelConfig, graph: OpGraph, cluster: ClusterSpec
) -> bool:
    """Boolean wrapper around :func:`validate_config`."""
    try:
        validate_config(config, graph, cluster)
    except ConfigError:
        return False
    return True
