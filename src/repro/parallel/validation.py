"""Structural validation of parallel configurations.

The search only ever constructs valid configurations, but primitives
are easier to write (and test) against a single authoritative checker.
The invariants themselves now live in the collect-all analyzer
:func:`repro.lint.config_rules.analyze_structure`; ``validate_config``
is a thin raise-on-first wrapper that surfaces the analyzer's first
diagnostic as a :class:`ConfigError` with the historical message text.
"""

from __future__ import annotations

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from .config import ParallelConfig


class ConfigError(ValueError):
    """A parallel configuration violates a structural invariant."""


def validate_config(
    config: ParallelConfig,
    graph: OpGraph,
    cluster: ClusterSpec,
) -> None:
    """Check every invariant of ``config`` against model and hardware.

    Invariants (from §3.1 and §5.1 of the paper):

    1. stage spans tile ``[0, num_ops)`` contiguously;
    2. stage device counts are powers of two summing to the cluster size;
    3. per-op ``tp``/``dp`` are powers of two with ``tp * dp`` equal to
       the stage's device count;
    4. per-op ``tp_dim`` indexes a real partition option;
    5. the aggregated microbatch size divides the global batch and is
       divisible by every op's ``dp`` (integral per-GPU share);
    6. ``tp`` never exceeds the cluster size.

    Raises :class:`ConfigError` with the first violation, in the same
    order (and with the same message) the historical checker used.
    """
    from ..lint.config_rules import analyze_structure

    diagnostics = analyze_structure(config, graph, cluster)
    if diagnostics:
        raise ConfigError(diagnostics[0].message)


def is_valid(
    config: ParallelConfig, graph: OpGraph, cluster: ClusterSpec
) -> bool:
    """Boolean wrapper around :func:`validate_config`."""
    try:
        validate_config(config, graph, cluster)
    except ConfigError:
        return False
    return True
