"""Operator specifications for the model IR.

Every operator records the per-*sample* quantities the planner needs:

* forward FLOPs,
* parameter element count,
* output activation elements (what flows to the next op / next stage),
* saved activation elements (what must be retained for backward when
  recomputation is off),
* the tensor-parallel partition options it supports, each with its
  communication behaviour.

The planner multiplies these per-sample numbers by microbatch sizes and
divides by parallel degrees; the op itself is agnostic of any parallel
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: Backward FLOPs are roughly 2x forward for matmul-dominated ops (one
#: matmul for the input gradient, one for the weight gradient).
DEFAULT_BWD_FLOPS_RATIO = 2.0


@dataclass(frozen=True)
class PartitionOption:
    """One way to tensor-parallel partition an operator.

    Attributes:
        name: human-readable dimension name (``"row"``, ``"column"``,
            ``"in_channel"``, ``"out_channel"``, ``"head"``, ...).
        fwd_comm_numel: activation elements all-reduced per sample in the
            forward pass when tp > 1 (e.g. the output of a row-parallel
            matmul).
        bwd_comm_numel: activation-gradient elements all-reduced per
            sample in the backward pass when tp > 1 (e.g. the input
            gradient of a column-parallel matmul).
        shards_output: whether the op's *output* activation is sharded
            across the tp group (column-parallel) or replicated
            (row-parallel after its all-reduce).
    """

    name: str
    fwd_comm_numel: int = 0
    bwd_comm_numel: int = 0
    shards_output: bool = True


@dataclass(frozen=True)
class OpSpec:
    """Per-sample cost description of one model operator.

    All sizes are element counts (not bytes); the precision of the
    enclosing graph decides byte widths.  All FLOPs are forward-pass
    FLOPs per training sample.
    """

    name: str
    kind: str
    flops: float
    params: int
    out_numel: int
    saved_numel: int
    partition_options: Tuple[PartitionOption, ...] = field(
        default_factory=lambda: (PartitionOption("none"),)
    )
    max_tp: int = 1_048_576
    bwd_flops_ratio: float = DEFAULT_BWD_FLOPS_RATIO

    def __post_init__(self) -> None:
        if self.flops < 0 or self.params < 0:
            raise ValueError(f"negative cost in op {self.name!r}")
        if not self.partition_options:
            raise ValueError(f"op {self.name!r} has no partition options")
        if self.max_tp < 1:
            raise ValueError(f"op {self.name!r} has max_tp < 1")

    @property
    def bwd_flops(self) -> float:
        """Backward FLOPs per sample."""
        return self.flops * self.bwd_flops_ratio

    @property
    def total_flops(self) -> float:
        """Forward + backward FLOPs per sample (no recomputation)."""
        return self.flops + self.bwd_flops

    def option(self, index: int) -> PartitionOption:
        """Return partition option ``index`` (validated)."""
        try:
            return self.partition_options[index]
        except IndexError:
            raise IndexError(
                f"op {self.name!r} has {len(self.partition_options)} "
                f"partition options; index {index} out of range"
            ) from None

    @property
    def num_partition_options(self) -> int:
        return len(self.partition_options)


def matmul_op(
    name: str,
    in_features: int,
    out_features: int,
    tokens_per_sample: int,
    *,
    parallel_style: str = "column",
    max_tp: int = 1_048_576,
) -> OpSpec:
    """Build a linear/matmul operator.

    ``parallel_style`` selects which partition option comes first (the
    builder's preferred initial dimension, following Megatron-LM):
    ``"column"`` splits the output features, ``"row"`` splits the input
    features.  Both options are always present so fine-tuning can flip
    the dimension (§4.2 of the paper).
    """
    flops = 2.0 * tokens_per_sample * in_features * out_features
    params = in_features * out_features + out_features  # weight + bias
    out_numel = tokens_per_sample * out_features
    in_numel = tokens_per_sample * in_features
    column = PartitionOption(
        "column",
        fwd_comm_numel=0,
        bwd_comm_numel=in_numel,
        shards_output=True,
    )
    row = PartitionOption(
        "row",
        fwd_comm_numel=out_numel,
        bwd_comm_numel=0,
        shards_output=False,
    )
    options = (column, row) if parallel_style == "column" else (row, column)
    return OpSpec(
        name=name,
        kind="matmul",
        flops=flops,
        params=params,
        out_numel=out_numel,
        saved_numel=in_numel,
        partition_options=options,
        max_tp=max_tp,
    )


def attention_core_op(
    name: str,
    seq_len: int,
    kv_seq_len: int,
    hidden: int,
    num_heads: int,
) -> OpSpec:
    """Build the softmax(QK^T)V core of self/cross attention.

    Partitioned along the head dimension; no communication of its own
    (the surrounding projections carry the all-reduces).
    """
    # QK^T and attn @ V, each 2*s*s_kv*h FLOPs per sample.
    flops = 4.0 * seq_len * kv_seq_len * hidden
    out_numel = seq_len * hidden
    # Saved: attention probabilities (s * s_kv * heads) plus q/k/v.
    saved = seq_len * kv_seq_len * num_heads + 3 * seq_len * hidden
    head = PartitionOption("head", shards_output=True)
    return OpSpec(
        name=name,
        kind="attention",
        flops=flops,
        params=0,
        out_numel=out_numel,
        saved_numel=saved,
        partition_options=(head,),
        max_tp=num_heads,
    )


def layernorm_op(name: str, tokens_per_sample: int, hidden: int) -> OpSpec:
    """Build a LayerNorm operator (replicated; cheap)."""
    numel = tokens_per_sample * hidden
    return OpSpec(
        name=name,
        kind="layernorm",
        flops=8.0 * numel,
        params=2 * hidden,
        out_numel=numel,
        saved_numel=numel,
        partition_options=(PartitionOption("replicate", shards_output=False),),
        max_tp=1,
        bwd_flops_ratio=1.0,
    )


def elementwise_op(
    name: str, kind: str, numel: int, flops_per_element: float = 4.0
) -> OpSpec:
    """Build an activation/elementwise op (GeLU, ReLU, residual-add...)."""
    return OpSpec(
        name=name,
        kind=kind,
        flops=flops_per_element * numel,
        params=0,
        out_numel=numel,
        saved_numel=numel,
        partition_options=(PartitionOption("elementwise", shards_output=True),),
        bwd_flops_ratio=1.0,
    )


def embedding_op(
    name: str, vocab_size: int, hidden: int, tokens_per_sample: int
) -> OpSpec:
    """Build a token-embedding lookup (vocab-parallel when tp > 1)."""
    out_numel = tokens_per_sample * hidden
    vocab = PartitionOption(
        "vocab",
        fwd_comm_numel=out_numel,  # masked-lookup partial sums all-reduced
        bwd_comm_numel=0,
        shards_output=False,
    )
    return OpSpec(
        name=name,
        kind="embedding",
        flops=2.0 * out_numel,
        params=vocab_size * hidden,
        out_numel=out_numel,
        saved_numel=tokens_per_sample,  # token ids only
        partition_options=(vocab,),
        bwd_flops_ratio=1.0,
    )


def lm_head_op(
    name: str, vocab_size: int, hidden: int, tokens_per_sample: int
) -> OpSpec:
    """Build the output projection to vocabulary logits."""
    flops = 2.0 * tokens_per_sample * hidden * vocab_size
    out_numel = tokens_per_sample * vocab_size
    column = PartitionOption(
        "vocab_column",
        fwd_comm_numel=0,
        bwd_comm_numel=tokens_per_sample * hidden,
        shards_output=True,
    )
    return OpSpec(
        name=name,
        kind="lm_head",
        flops=flops,
        params=vocab_size * hidden,
        out_numel=out_numel,
        saved_numel=tokens_per_sample * hidden,
        partition_options=(column,),
    )


def loss_op(name: str, logits_numel: int) -> OpSpec:
    """Build a cross-entropy (or similar) loss op."""
    return OpSpec(
        name=name,
        kind="loss",
        flops=6.0 * logits_numel,
        params=0,
        out_numel=1,
        saved_numel=logits_numel,
        partition_options=(PartitionOption("elementwise", shards_output=True),),
        bwd_flops_ratio=1.0,
    )


def conv2d_op(
    name: str,
    in_channels: int,
    out_channels: int,
    kernel_size: int,
    out_hw: int,
    *,
    parallel_style: str = "out_channel",
) -> OpSpec:
    """Build a 2-D convolution operator.

    Partition options follow the paper's Wide-ResNet treatment
    (input-channel and output-channel splits, out-channel first).
    """
    flops = 2.0 * kernel_size * kernel_size * in_channels * out_channels * out_hw * out_hw
    params = kernel_size * kernel_size * in_channels * out_channels + out_channels
    out_numel = out_channels * out_hw * out_hw
    in_numel_approx = in_channels * out_hw * out_hw
    out_channel = PartitionOption(
        "out_channel",
        fwd_comm_numel=0,
        bwd_comm_numel=in_numel_approx,
        shards_output=True,
    )
    in_channel = PartitionOption(
        "in_channel",
        fwd_comm_numel=out_numel,
        bwd_comm_numel=0,
        shards_output=False,
    )
    options = (
        (out_channel, in_channel)
        if parallel_style == "out_channel"
        else (in_channel, out_channel)
    )
    return OpSpec(
        name=name,
        kind="conv2d",
        flops=flops,
        params=params,
        out_numel=out_numel,
        saved_numel=in_numel_approx,
        partition_options=options,
        max_tp=min(in_channels, out_channels),
    )


def norm2d_op(name: str, channels: int, hw: int) -> OpSpec:
    """Build a BatchNorm/GroupNorm over a (C, H, W) activation."""
    numel = channels * hw * hw
    return OpSpec(
        name=name,
        kind="norm2d",
        flops=8.0 * numel,
        params=2 * channels,
        out_numel=numel,
        saved_numel=numel,
        partition_options=(PartitionOption("channel", shards_output=True),),
        max_tp=channels,
        bwd_flops_ratio=1.0,
    )


def pool_op(name: str, channels: int, out_hw: int) -> OpSpec:
    """Build a pooling / downsample op."""
    numel = channels * out_hw * out_hw
    return OpSpec(
        name=name,
        kind="pool",
        flops=9.0 * numel,
        params=0,
        out_numel=numel,
        saved_numel=numel,
        partition_options=(PartitionOption("channel", shards_output=True),),
        max_tp=channels,
        bwd_flops_ratio=1.0,
    )
