"""Tensor metadata used by the model IR.

The reproduction never materializes training tensors; the planner only
needs shapes, dtypes, and byte counts.  ``TensorSpec`` is the single
source of truth for those quantities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

#: Bytes per element for each supported dtype.
DTYPE_BYTES = {
    "fp16": 2,
    "bf16": 2,
    "fp32": 4,
    "fp64": 8,
    "int8": 1,
    "int32": 4,
    "int64": 8,
}


class UnknownDtypeError(ValueError):
    """Raised when a dtype string is not in :data:`DTYPE_BYTES`."""


def dtype_bytes(dtype: str) -> int:
    """Return the per-element size in bytes of ``dtype``.

    >>> dtype_bytes("fp16")
    2
    """
    try:
        return DTYPE_BYTES[dtype]
    except KeyError:
        raise UnknownDtypeError(f"unknown dtype: {dtype!r}") from None


@dataclass(frozen=True)
class TensorSpec:
    """Shape/dtype description of a logical tensor.

    Attributes:
        shape: dimension sizes, excluding any implicit batch dimension.
        dtype: one of the keys of :data:`DTYPE_BYTES`.
    """

    shape: Tuple[int, ...]
    dtype: str = "fp16"

    def __post_init__(self) -> None:
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"non-positive dimension in shape {self.shape}")
        dtype_bytes(self.dtype)  # validate eagerly

    @property
    def numel(self) -> int:
        """Number of elements (product of the shape)."""
        return math.prod(self.shape) if self.shape else 1

    @property
    def bytes(self) -> int:
        """Total size in bytes."""
        return self.numel * dtype_bytes(self.dtype)

    def with_dim(self, index: int, size: int) -> "TensorSpec":
        """Return a copy with dimension ``index`` replaced by ``size``."""
        shape = list(self.shape)
        shape[index] = size
        return TensorSpec(tuple(shape), self.dtype)

    def split(self, index: int, ways: int) -> "TensorSpec":
        """Return the spec of one shard after splitting dim ``index``.

        Raises ``ValueError`` when the dimension is not divisible.
        """
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        size = self.shape[index]
        if size % ways:
            raise ValueError(
                f"dimension {index} of size {size} not divisible by {ways}"
            )
        return self.with_dim(index, size // ways)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(d) for d in self.shape)
        return f"{dims}:{self.dtype}"
