"""Wide-ResNet family model builders.

Wide-ResNet (Zagoruyko & Komodakis) is the paper's convolutional vision
model: a ResNet-50-style bottleneck network whose convolution widths are
multiplied by a width factor.  Table 2 uses FP32, batch 1536, input
224x224x3, with sizes 0.5B - 13B; we pick (depth, width-factor) pairs
that land close to those parameter counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..graph import OpGraph
from ..ops import OpSpec, conv2d_op, elementwise_op, loss_op, matmul_op, norm2d_op, pool_op

#: Wide-ResNet ladder: size name -> (blocks per stage, width factor).
WRN_SIZES: Dict[str, Tuple[Tuple[int, int, int, int], int]] = {
    "500m": ((3, 4, 6, 3), 5),
    "2b": ((3, 4, 6, 3), 9),
    "4b": ((3, 4, 23, 3), 10),
    "6.8b": ((3, 4, 6, 3), 17),
    "13b": ((3, 4, 23, 3), 18),
}

#: Base channel counts per stage of ResNet-50 (before width scaling).
BASE_CHANNELS = (64, 128, 256, 512)
#: Bottleneck expansion factor.
EXPANSION = 4
DEFAULT_IMAGE_HW = 224
DEFAULT_BATCH = 1536
DEFAULT_NUM_CLASSES = 1000


@dataclass(frozen=True)
class WideResNetSpec:
    """Hyper-parameters of one Wide-ResNet variant."""

    blocks_per_stage: Tuple[int, int, int, int]
    width_factor: int
    image_hw: int = DEFAULT_IMAGE_HW
    num_classes: int = DEFAULT_NUM_CLASSES

    def __post_init__(self) -> None:
        if self.width_factor < 1:
            raise ValueError("width_factor must be >= 1")
        if len(self.blocks_per_stage) != 4:
            raise ValueError("expected 4 stages of blocks")


def bottleneck_block_ops(
    tag: str,
    in_channels: int,
    mid_channels: int,
    out_channels: int,
    out_hw: int,
    *,
    downsample: bool,
) -> List[OpSpec]:
    """One bottleneck residual block: 1x1 -> 3x3 -> 1x1 (+ shortcut)."""
    ops = [
        conv2d_op(f"{tag}.conv1", in_channels, mid_channels, 1, out_hw),
        norm2d_op(f"{tag}.bn1", mid_channels, out_hw),
        conv2d_op(f"{tag}.conv2", mid_channels, mid_channels, 3, out_hw),
        norm2d_op(f"{tag}.bn2", mid_channels, out_hw),
        conv2d_op(f"{tag}.conv3", mid_channels, out_channels, 1, out_hw),
        norm2d_op(f"{tag}.bn3", out_channels, out_hw),
    ]
    if downsample:
        ops.append(
            conv2d_op(f"{tag}.shortcut", in_channels, out_channels, 1, out_hw)
        )
    ops.append(
        elementwise_op(f"{tag}.relu", "relu", out_channels * out_hw * out_hw,
                       flops_per_element=2.0)
    )
    return ops


def build_wide_resnet_from_spec(
    name: str,
    spec: WideResNetSpec,
    *,
    batch_size: int = DEFAULT_BATCH,
    precision: str = "fp32",
) -> OpGraph:
    """Assemble the full Wide-ResNet graph."""
    hw = spec.image_hw // 4  # stem: 7x7 stride-2 conv + stride-2 pool
    stem_channels = BASE_CHANNELS[0]
    ops: List[OpSpec] = [
        conv2d_op("stem.conv", 3, stem_channels, 7, spec.image_hw // 2),
        norm2d_op("stem.bn", stem_channels, spec.image_hw // 2),
        pool_op("stem.pool", stem_channels, hw),
    ]
    layer_spans: List[Tuple[int, int]] = [(0, len(ops))]
    in_channels = stem_channels
    for stage, num_blocks in enumerate(spec.blocks_per_stage):
        mid = BASE_CHANNELS[stage] * spec.width_factor
        out_channels = BASE_CHANNELS[stage] * EXPANSION * spec.width_factor
        if stage > 0:
            hw //= 2  # first block of each later stage downsamples
        for block in range(num_blocks):
            start = len(ops)
            ops.extend(
                bottleneck_block_ops(
                    f"s{stage}b{block}",
                    in_channels,
                    mid,
                    out_channels,
                    hw,
                    downsample=(block == 0),
                )
            )
            layer_spans.append((start, len(ops)))
            in_channels = out_channels
    start = len(ops)
    ops.append(pool_op("head.avgpool", in_channels, 1))
    ops.append(
        matmul_op("head.fc", in_channels, spec.num_classes, 1,
                  parallel_style="column")
    )
    ops.append(loss_op("loss", spec.num_classes))
    layer_spans.append((start, len(ops)))
    return OpGraph(
        name=name,
        ops=ops,
        precision=precision,
        global_batch_size=batch_size,
        layer_spans=layer_spans,
    )


def build_wide_resnet(
    size: str, *, batch_size: int = DEFAULT_BATCH
) -> OpGraph:
    """Build one of the paper's five Wide-ResNet sizes (Table 2).

    >>> build_wide_resnet("2b").precision
    'fp32'
    """
    key = size.lower()
    if key not in WRN_SIZES:
        raise KeyError(
            f"unknown Wide-ResNet size {size!r}; choose from "
            f"{sorted(WRN_SIZES)}"
        )
    blocks, width = WRN_SIZES[key]
    spec = WideResNetSpec(blocks_per_stage=blocks, width_factor=width)
    return build_wide_resnet_from_spec(
        f"wresnet-{key}", spec, batch_size=batch_size
    )
