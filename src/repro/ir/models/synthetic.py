"""Synthetic workload generator.

Random-but-reproducible op chains with realistic cost distributions,
for fuzzing the planner: the search must return valid, feasible
configurations on *any* well-formed graph, not just the three benchmark
families.  Used by the property-based tests.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graph import OpGraph
from ..ops import (
    OpSpec,
    elementwise_op,
    layernorm_op,
    loss_op,
    matmul_op,
)


def build_synthetic(
    num_ops: int,
    *,
    seed: int = 0,
    hidden_range=(32, 256),
    tokens_range=(16, 128),
    batch_size: int = 64,
    precision: str = "fp16",
    name: Optional[str] = None,
) -> OpGraph:
    """Build a random sequential model of roughly ``num_ops`` operators.

    The chain alternates matmuls (the cost carriers, with random widths
    and both partition dims), elementwise activations, and occasional
    layernorms — the ingredient mix of real transformer-ish models,
    with none of their regularity.  Deterministic per ``seed``.
    """
    if num_ops < 2:
        raise ValueError("num_ops must be at least 2 (one op + loss)")
    rng = np.random.default_rng(seed)
    lo_h, hi_h = hidden_range
    lo_t, hi_t = tokens_range
    if lo_h < 1 or lo_t < 1 or hi_h < lo_h or hi_t < lo_t:
        raise ValueError("invalid hidden/tokens ranges")

    def pow2(low: int, high: int) -> int:
        choices = [1 << e for e in range(16) if low <= (1 << e) <= high]
        return int(rng.choice(choices)) if choices else low

    tokens = pow2(lo_t, hi_t)
    width = pow2(lo_h, hi_h)
    ops: List[OpSpec] = []
    index = 0
    while len(ops) < num_ops - 1:
        roll = rng.random()
        if roll < 0.55:
            out_width = pow2(lo_h, hi_h)
            style = "column" if rng.random() < 0.5 else "row"
            ops.append(
                matmul_op(
                    f"syn{index}.matmul", width, out_width, tokens,
                    parallel_style=style,
                )
            )
            width = out_width
        elif roll < 0.85:
            ops.append(
                elementwise_op(
                    f"syn{index}.act", "gelu", tokens * width
                )
            )
        else:
            ops.append(layernorm_op(f"syn{index}.ln", tokens, width))
        index += 1
    ops.append(loss_op("loss", tokens * width))
    return OpGraph(
        name=name or f"synthetic-{num_ops}ops-s{seed}",
        ops=ops,
        precision=precision,
        global_batch_size=batch_size,
    )
