"""GPT-3 family model builders.

Sizes follow Table 2 of the paper (0.35B - 13B, FP16, batch 1024,
sequence length 2048) using the standard GPT-3 depth/width ladder from
Brown et al.  ``build_gpt3_layers`` additionally builds N-layer variants
for the 1K-layer scalability experiment (Exp#3), with hyper-parameters
from DeepNet (Wang et al., 2022).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..graph import OpGraph
from ..ops import (
    OpSpec,
    attention_core_op,
    elementwise_op,
    embedding_op,
    layernorm_op,
    lm_head_op,
    loss_op,
    matmul_op,
)

#: GPT-3 ladder: size name -> (num_layers, hidden, num_heads).
GPT3_SIZES: Dict[str, Tuple[int, int, int]] = {
    "350m": (24, 1024, 16),
    "1.3b": (24, 2048, 32),
    "2.6b": (32, 2560, 32),
    "6.7b": (32, 4096, 32),
    "13b": (40, 5120, 40),
}

DEFAULT_SEQ_LEN = 2048
DEFAULT_VOCAB = 51200
DEFAULT_BATCH = 1024


@dataclass(frozen=True)
class GPTSpec:
    """Hyper-parameters of one GPT variant."""

    num_layers: int
    hidden: int
    num_heads: int
    seq_len: int = DEFAULT_SEQ_LEN
    vocab_size: int = DEFAULT_VOCAB

    def __post_init__(self) -> None:
        if self.hidden % self.num_heads:
            raise ValueError("hidden must be divisible by num_heads")


def decoder_layer_ops(
    spec: GPTSpec, layer_index: int, *, prefix: str = "layer"
) -> List[OpSpec]:
    """Build the op chain of one transformer decoder layer.

    Megatron-style layout: LN -> QKV (column) -> attention core ->
    output projection (row, all-reduce) -> LN -> FC1 h->4h (column) ->
    GeLU -> FC2 4h->h (row, all-reduce).  Residual adds are folded into
    the projections' elementwise cost (negligible for planning).
    """
    s, h, heads = spec.seq_len, spec.hidden, spec.num_heads
    tag = f"{prefix}{layer_index}"
    return [
        layernorm_op(f"{tag}.ln1", s, h),
        matmul_op(f"{tag}.attn_qkv", h, 3 * h, s, parallel_style="column",
                  max_tp=heads),
        attention_core_op(f"{tag}.attn_core", s, s, h, heads),
        matmul_op(f"{tag}.attn_out", h, h, s, parallel_style="row",
                  max_tp=heads),
        layernorm_op(f"{tag}.ln2", s, h),
        matmul_op(f"{tag}.mlp_fc1", h, 4 * h, s, parallel_style="column"),
        elementwise_op(f"{tag}.gelu", "gelu", s * 4 * h),
        matmul_op(f"{tag}.mlp_fc2", 4 * h, h, s, parallel_style="row"),
    ]


def build_gpt(
    name: str,
    spec: GPTSpec,
    *,
    batch_size: int = DEFAULT_BATCH,
    precision: str = "fp16",
) -> OpGraph:
    """Assemble a full GPT graph: embedding, N layers, head, loss."""
    ops: List[OpSpec] = [
        embedding_op("embedding", spec.vocab_size, spec.hidden, spec.seq_len)
    ]
    layer_spans: List[Tuple[int, int]] = []
    for i in range(spec.num_layers):
        start = len(ops)
        ops.extend(decoder_layer_ops(spec, i))
        layer_spans.append((start, len(ops)))
    ops.append(layernorm_op("final_ln", spec.seq_len, spec.hidden))
    ops.append(
        lm_head_op("lm_head", spec.vocab_size, spec.hidden, spec.seq_len)
    )
    ops.append(loss_op("loss", spec.seq_len * spec.vocab_size))
    return OpGraph(
        name=name,
        ops=ops,
        precision=precision,
        global_batch_size=batch_size,
        layer_spans=layer_spans,
    )


def build_gpt3(size: str, *, batch_size: int = DEFAULT_BATCH) -> OpGraph:
    """Build one of the paper's five GPT-3 sizes (Table 2).

    >>> build_gpt3("1.3b").num_layers
    24
    """
    key = size.lower()
    if key not in GPT3_SIZES:
        raise KeyError(
            f"unknown GPT-3 size {size!r}; choose from {sorted(GPT3_SIZES)}"
        )
    layers, hidden, heads = GPT3_SIZES[key]
    spec = GPTSpec(num_layers=layers, hidden=hidden, num_heads=heads)
    return build_gpt(f"gpt3-{key}", spec, batch_size=batch_size)


def build_gpt3_layers(
    num_layers: int,
    *,
    hidden: int = 1024,
    num_heads: int = 16,
    seq_len: int = 1024,
    batch_size: int = 128,
) -> OpGraph:
    """Build an N-layer GPT for the 1K-layer scalability study (Exp#3).

    Defaults follow the DeepNet-style small-width/deep setting the paper
    cites for this experiment.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be positive")
    spec = GPTSpec(
        num_layers=num_layers,
        hidden=hidden,
        num_heads=num_heads,
        seq_len=seq_len,
    )
    return build_gpt(
        f"gpt-{num_layers}l", spec, batch_size=batch_size
    )
