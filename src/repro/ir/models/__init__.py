"""Benchmark model builders (GPT-3, T5, Wide-ResNet)."""

from .gpt3 import GPT3_SIZES, GPTSpec, build_gpt, build_gpt3, build_gpt3_layers
from .registry import available_models, build_model
from .synthetic import build_synthetic
from .t5 import T5_SIZES, T5Spec, build_t5, build_t5_from_spec
from .wide_resnet import (
    WRN_SIZES,
    WideResNetSpec,
    build_wide_resnet,
    build_wide_resnet_from_spec,
)

__all__ = [
    "GPT3_SIZES",
    "GPTSpec",
    "T5_SIZES",
    "T5Spec",
    "WRN_SIZES",
    "WideResNetSpec",
    "available_models",
    "build_synthetic",
    "build_gpt",
    "build_gpt3",
    "build_gpt3_layers",
    "build_model",
    "build_t5",
    "build_t5_from_spec",
    "build_wide_resnet",
    "build_wide_resnet_from_spec",
]
