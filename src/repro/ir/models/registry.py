"""Model registry: build any benchmark model by string name.

Names follow ``"<family>-<size>"`` (``"gpt3-1.3b"``, ``"t5-3b"``,
``"wresnet-6.8b"``) plus ``"gpt-<N>l"`` for N-layer scalability models.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional

from ..graph import OpGraph
from .gpt3 import GPT3_SIZES, build_gpt3, build_gpt3_layers
from .t5 import T5_SIZES, build_t5
from .wide_resnet import WRN_SIZES, build_wide_resnet

_LAYERS_PATTERN = re.compile(r"^gpt-(\d+)l$")

_FAMILIES: Dict[str, Callable[..., OpGraph]] = {
    "gpt3": build_gpt3,
    "t5": build_t5,
    "wresnet": build_wide_resnet,
}


def available_models() -> List[str]:
    """All registered model names (excluding parametric ``gpt-<N>l``)."""
    names = [f"gpt3-{s}" for s in GPT3_SIZES]
    names += [f"t5-{s}" for s in T5_SIZES]
    names += [f"wresnet-{s}" for s in WRN_SIZES]
    return names


def build_model(name: str, *, batch_size: Optional[int] = None) -> OpGraph:
    """Build a model by registry name.

    >>> build_model("gpt3-350m").name
    'gpt3-350m'
    >>> build_model("gpt-16l").num_layers
    16
    """
    key = name.lower()
    match = _LAYERS_PATTERN.match(key)
    if match:
        kwargs = {} if batch_size is None else {"batch_size": batch_size}
        return build_gpt3_layers(int(match.group(1)), **kwargs)
    family, _, size = key.partition("-")
    builder = _FAMILIES.get(family)
    if builder is None or not size:
        raise KeyError(
            f"unknown model {name!r}; available: {available_models()} "
            f"or gpt-<N>l"
        )
    kwargs = {} if batch_size is None else {"batch_size": batch_size}
    return builder(size, **kwargs)
