"""T5 family model builders.

T5 is the paper's heterogeneous/imbalanced model: transformer *encoder*
layers process sequence length 2048 and *decoder* layers process
sequence length 512 with an extra cross-attention block, so op costs
differ markedly between the two halves (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..graph import OpGraph
from ..ops import (
    OpSpec,
    attention_core_op,
    elementwise_op,
    embedding_op,
    layernorm_op,
    lm_head_op,
    loss_op,
    matmul_op,
)

#: T5 ladder: size name -> (enc_layers, dec_layers, hidden, ff, heads).
T5_SIZES: Dict[str, Tuple[int, int, int, int, int]] = {
    "770m": (24, 24, 1024, 4096, 16),
    "3b": (24, 24, 2048, 8192, 32),
    "6b": (32, 32, 2560, 10240, 32),
    "11b": (24, 24, 4096, 16384, 64),
    "22b": (48, 48, 4096, 16384, 64),
}

ENCODER_SEQ_LEN = 2048
DECODER_SEQ_LEN = 512
DEFAULT_VOCAB = 32128
DEFAULT_BATCH = 1024


@dataclass(frozen=True)
class T5Spec:
    """Hyper-parameters of one T5 variant."""

    enc_layers: int
    dec_layers: int
    hidden: int
    ff: int
    num_heads: int
    enc_seq_len: int = ENCODER_SEQ_LEN
    dec_seq_len: int = DECODER_SEQ_LEN
    vocab_size: int = DEFAULT_VOCAB

    def __post_init__(self) -> None:
        if self.hidden % self.num_heads:
            raise ValueError("hidden must be divisible by num_heads")


def _self_attention_ops(
    tag: str, seq_len: int, hidden: int, heads: int
) -> List[OpSpec]:
    return [
        layernorm_op(f"{tag}.ln_attn", seq_len, hidden),
        matmul_op(f"{tag}.attn_qkv", hidden, 3 * hidden, seq_len,
                  parallel_style="column", max_tp=heads),
        attention_core_op(f"{tag}.attn_core", seq_len, seq_len, hidden, heads),
        matmul_op(f"{tag}.attn_out", hidden, hidden, seq_len,
                  parallel_style="row", max_tp=heads),
    ]


def _cross_attention_ops(
    tag: str, q_seq_len: int, kv_seq_len: int, hidden: int, heads: int
) -> List[OpSpec]:
    return [
        layernorm_op(f"{tag}.ln_xattn", q_seq_len, hidden),
        matmul_op(f"{tag}.xattn_q", hidden, hidden, q_seq_len,
                  parallel_style="column", max_tp=heads),
        matmul_op(f"{tag}.xattn_kv", hidden, 2 * hidden, kv_seq_len,
                  parallel_style="column", max_tp=heads),
        attention_core_op(f"{tag}.xattn_core", q_seq_len, kv_seq_len,
                          hidden, heads),
        matmul_op(f"{tag}.xattn_out", hidden, hidden, q_seq_len,
                  parallel_style="row", max_tp=heads),
    ]


def _mlp_ops(tag: str, seq_len: int, hidden: int, ff: int) -> List[OpSpec]:
    return [
        layernorm_op(f"{tag}.ln_mlp", seq_len, hidden),
        matmul_op(f"{tag}.mlp_fc1", hidden, ff, seq_len,
                  parallel_style="column"),
        elementwise_op(f"{tag}.relu", "relu", seq_len * ff),
        matmul_op(f"{tag}.mlp_fc2", ff, hidden, seq_len,
                  parallel_style="row"),
    ]


def encoder_layer_ops(spec: T5Spec, layer_index: int) -> List[OpSpec]:
    """One T5 encoder layer (self-attention + MLP at seq 2048)."""
    tag = f"enc{layer_index}"
    ops = _self_attention_ops(tag, spec.enc_seq_len, spec.hidden,
                              spec.num_heads)
    ops.extend(_mlp_ops(tag, spec.enc_seq_len, spec.hidden, spec.ff))
    return ops


def decoder_layer_ops(spec: T5Spec, layer_index: int) -> List[OpSpec]:
    """One T5 decoder layer (self + cross attention + MLP at seq 512)."""
    tag = f"dec{layer_index}"
    ops = _self_attention_ops(tag, spec.dec_seq_len, spec.hidden,
                              spec.num_heads)
    ops.extend(
        _cross_attention_ops(tag, spec.dec_seq_len, spec.enc_seq_len,
                             spec.hidden, spec.num_heads)
    )
    ops.extend(_mlp_ops(tag, spec.dec_seq_len, spec.hidden, spec.ff))
    return ops


def build_t5_from_spec(
    name: str,
    spec: T5Spec,
    *,
    batch_size: int = DEFAULT_BATCH,
    precision: str = "fp16",
) -> OpGraph:
    """Assemble the full encoder-decoder graph."""
    ops: List[OpSpec] = [
        embedding_op("enc_embedding", spec.vocab_size, spec.hidden,
                     spec.enc_seq_len)
    ]
    layer_spans: List[Tuple[int, int]] = []
    for i in range(spec.enc_layers):
        start = len(ops)
        ops.extend(encoder_layer_ops(spec, i))
        layer_spans.append((start, len(ops)))
    ops.append(layernorm_op("enc_final_ln", spec.enc_seq_len, spec.hidden))
    ops.append(
        embedding_op("dec_embedding", spec.vocab_size, spec.hidden,
                     spec.dec_seq_len)
    )
    for i in range(spec.dec_layers):
        start = len(ops)
        ops.extend(decoder_layer_ops(spec, i))
        layer_spans.append((start, len(ops)))
    ops.append(layernorm_op("dec_final_ln", spec.dec_seq_len, spec.hidden))
    ops.append(
        lm_head_op("lm_head", spec.vocab_size, spec.hidden, spec.dec_seq_len)
    )
    ops.append(loss_op("loss", spec.dec_seq_len * spec.vocab_size))
    return OpGraph(
        name=name,
        ops=ops,
        precision=precision,
        global_batch_size=batch_size,
        layer_spans=layer_spans,
    )


def build_t5(size: str, *, batch_size: int = DEFAULT_BATCH) -> OpGraph:
    """Build one of the paper's five T5 sizes (Table 2).

    >>> build_t5("770m").name
    't5-770m'
    """
    key = size.lower()
    if key not in T5_SIZES:
        raise KeyError(
            f"unknown T5 size {size!r}; choose from {sorted(T5_SIZES)}"
        )
    enc, dec, hidden, ff, heads = T5_SIZES[key]
    spec = T5Spec(enc_layers=enc, dec_layers=dec, hidden=hidden, ff=ff,
                  num_heads=heads)
    return build_t5_from_spec(f"t5-{key}", spec, batch_size=batch_size)
