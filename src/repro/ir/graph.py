"""Sequential operator graph and its vectorized view.

Aceso (like Megatron-LM and Alpa's pipeline level) treats the model as a
sequential chain of operators that pipeline stages partition into
contiguous spans.  ``OpGraph`` holds the chain plus model-level training
metadata; ``GraphArrays`` caches per-op quantities as numpy arrays so the
performance model can evaluate thousand-op models in microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from .ops import OpSpec
from .tensor import dtype_bytes


@dataclass
class OpGraph:
    """A DNN model as a sequential chain of :class:`OpSpec`.

    Attributes:
        name: model identifier, e.g. ``"gpt3-1.3b"``.
        ops: the operator chain in execution order.
        precision: training dtype of weights/activations.
        global_batch_size: samples per training iteration.
        optimizer_bytes_per_param: bytes of optimizer + master + gradient
            state kept per parameter (Adam mixed precision ~= 16).
        layer_spans: optional (start, end) op-index spans marking the
            model's "layers" (used by layer-grouping baselines).
    """

    name: str
    ops: List[OpSpec]
    precision: str = "fp16"
    global_batch_size: int = 1024
    optimizer_bytes_per_param: int = 16
    layer_spans: List[Tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("OpGraph requires at least one op")
        if self.global_batch_size < 1:
            raise ValueError("global_batch_size must be positive")
        dtype_bytes(self.precision)  # validate
        self._arrays: "GraphArrays" = None  # type: ignore[assignment]

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[OpSpec]:
        return iter(self.ops)

    def __getitem__(self, index: int) -> OpSpec:
        return self.ops[index]

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    @property
    def elem_bytes(self) -> int:
        """Bytes per activation/weight element at the model precision."""
        return dtype_bytes(self.precision)

    @property
    def total_params(self) -> int:
        """Total parameter element count."""
        return int(self.arrays.params.sum())

    @property
    def total_fwd_flops_per_sample(self) -> float:
        """Forward FLOPs for one sample through the whole model."""
        return float(self.arrays.flops.sum())

    @property
    def total_train_flops_per_sample(self) -> float:
        """Forward + backward FLOPs for one sample (no recomputation)."""
        return float(self.arrays.flops.sum() + self.arrays.bwd_flops.sum())

    @property
    def num_layers(self) -> int:
        """Number of declared layer spans (0 when none were declared)."""
        return len(self.layer_spans)

    @property
    def arrays(self) -> "GraphArrays":
        """The cached vectorized view (built lazily, immutable)."""
        if self._arrays is None:
            self._arrays = GraphArrays.from_ops(self.ops)
        return self._arrays

    def op_index(self, name: str) -> int:
        """Return the index of the (first) op called ``name``."""
        for i, op in enumerate(self.ops):
            if op.name == name:
                return i
        raise KeyError(f"no op named {name!r} in graph {self.name!r}")

    def describe(self) -> str:
        """One-line human summary."""
        params_b = self.total_params / 1e9
        return (
            f"{self.name}: {self.num_ops} ops, {self.num_layers} layers, "
            f"{params_b:.2f}B params, {self.precision}, "
            f"batch={self.global_batch_size}"
        )


class GraphArrays:
    """Immutable numpy views over per-op quantities of an op chain.

    Indexing convention: every array has one entry per op, in op order.
    Partition-option-dependent arrays are 2-D ``(num_ops, max_options)``,
    padded with the last valid option.
    """

    __slots__ = (
        "flops",
        "bwd_flops",
        "params",
        "out_numel",
        "saved_numel",
        "max_tp",
        "num_options",
        "fwd_comm_numel",
        "bwd_comm_numel",
        "shards_output",
    )

    def __init__(
        self,
        flops: np.ndarray,
        bwd_flops: np.ndarray,
        params: np.ndarray,
        out_numel: np.ndarray,
        saved_numel: np.ndarray,
        max_tp: np.ndarray,
        num_options: np.ndarray,
        fwd_comm_numel: np.ndarray,
        bwd_comm_numel: np.ndarray,
        shards_output: np.ndarray,
    ) -> None:
        self.flops = flops
        self.bwd_flops = bwd_flops
        self.params = params
        self.out_numel = out_numel
        self.saved_numel = saved_numel
        self.max_tp = max_tp
        self.num_options = num_options
        self.fwd_comm_numel = fwd_comm_numel
        self.bwd_comm_numel = bwd_comm_numel
        self.shards_output = shards_output
        for arr in (
            flops, bwd_flops, params, out_numel, saved_numel,
            max_tp, num_options, fwd_comm_numel, bwd_comm_numel, shards_output,
        ):
            arr.setflags(write=False)

    @classmethod
    def from_ops(cls, ops: Sequence[OpSpec]) -> "GraphArrays":
        n = len(ops)
        max_opts = max(op.num_partition_options for op in ops)
        flops = np.array([op.flops for op in ops], dtype=np.float64)
        bwd_flops = np.array([op.bwd_flops for op in ops], dtype=np.float64)
        params = np.array([op.params for op in ops], dtype=np.float64)
        out_numel = np.array([op.out_numel for op in ops], dtype=np.float64)
        saved_numel = np.array([op.saved_numel for op in ops], dtype=np.float64)
        max_tp = np.array([op.max_tp for op in ops], dtype=np.int64)
        num_options = np.array(
            [op.num_partition_options for op in ops], dtype=np.int64
        )
        fwd_comm = np.zeros((n, max_opts), dtype=np.float64)
        bwd_comm = np.zeros((n, max_opts), dtype=np.float64)
        shards = np.zeros((n, max_opts), dtype=bool)
        for i, op in enumerate(ops):
            for j in range(max_opts):
                opt = op.partition_options[min(j, op.num_partition_options - 1)]
                fwd_comm[i, j] = opt.fwd_comm_numel
                bwd_comm[i, j] = opt.bwd_comm_numel
                shards[i, j] = opt.shards_output
        return cls(
            flops, bwd_flops, params, out_numel, saved_numel,
            max_tp, num_options, fwd_comm, bwd_comm, shards,
        )

    @property
    def num_ops(self) -> int:
        return int(self.flops.shape[0])
