"""Model intermediate representation: tensors, operators, graphs."""

from .graph import GraphArrays, OpGraph
from .ops import (
    OpSpec,
    PartitionOption,
    attention_core_op,
    conv2d_op,
    elementwise_op,
    embedding_op,
    layernorm_op,
    lm_head_op,
    loss_op,
    matmul_op,
    norm2d_op,
    pool_op,
)
from .tensor import DTYPE_BYTES, TensorSpec, UnknownDtypeError, dtype_bytes

__all__ = [
    "DTYPE_BYTES",
    "GraphArrays",
    "OpGraph",
    "OpSpec",
    "PartitionOption",
    "TensorSpec",
    "UnknownDtypeError",
    "attention_core_op",
    "conv2d_op",
    "dtype_bytes",
    "elementwise_op",
    "embedding_op",
    "layernorm_op",
    "lm_head_op",
    "loss_op",
    "matmul_op",
    "norm2d_op",
    "pool_op",
]
