"""Profiling-based performance model (§3.3 of the paper)."""

from .memory import (
    activation_kept_mask,
    allocator_reserve,
    in_flight_counts,
    stage_allocator_reserve,
    stage_peak_memory,
)
from .model import PerfModel, build_perf_model
from .report import RESOURCES, PerfReport, StageCost, StageReport
from .timing import iteration_time_1f1b, stage_totals

__all__ = [
    "PerfModel",
    "PerfReport",
    "RESOURCES",
    "StageCost",
    "StageReport",
    "activation_kept_mask",
    "allocator_reserve",
    "build_perf_model",
    "in_flight_counts",
    "iteration_time_1f1b",
    "stage_allocator_reserve",
    "stage_peak_memory",
    "stage_totals",
]
