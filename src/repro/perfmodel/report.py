"""Performance-report dataclasses.

The performance model answers every question the search asks through a
single :class:`PerfReport`: per-stage computation/communication time,
per-stage memory breakdown, OOM flags, and the predicted iteration
time (Eq. 2).  Keeping it one immutable object makes estimates safely
cacheable by configuration signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

#: Resource names used by bottleneck analysis (Table 1 columns).
RESOURCES = ("compute", "communication", "memory")

#: Column order of :attr:`StageCost.row` — the batched assembly kernel
#: gathers stage costs into ``[batch, stage, len(STAGE_COST_COLUMNS)]``
#: tensors and slices per-field planes by these positions.
STAGE_COST_COLUMNS = (
    "fwd_time",
    "bwd_time",
    "recompute_time",
    "tp_fwd_comm_time",
    "tp_bwd_comm_time",
    "reshard_time",
    "dp_sync_time",
    "weight_bytes",
    "optimizer_bytes",
    "activation_bytes",
    "reserved_bytes",
    "egress_bytes",
)


@dataclass(frozen=True)
class StageCost:
    """Stage-count-invariant cost of one pipeline stage.

    Everything here depends only on the stage's own op span, device
    count, per-op settings, and the microbatch size — never on how many
    other stages exist or where they sit.  That invariance is what lets
    :class:`~repro.perfmodel.PerfModel` memoize these by
    ``(stage.digest(), microbatch_size)`` and reuse them across every
    configuration that contains an identical stage.  The stage-count-
    dependent parts (pipeline p2p transfers, 1F1B in-flight counts,
    Eq. 2 totals) are added during assembly.

    Times are seconds per microbatch except ``dp_sync_time`` (per
    iteration); ``reshard_time`` is the one-way in-stage resharding
    cost (charged once forward, once backward).  ``egress_bytes`` is
    the stage's last-op output size, used to price the p2p transfer to
    whatever stage follows.
    """

    fwd_time: float
    bwd_time: float
    recompute_time: float
    tp_fwd_comm_time: float
    tp_bwd_comm_time: float
    reshard_time: float
    dp_sync_time: float
    weight_bytes: float
    optimizer_bytes: float
    activation_bytes: float
    reserved_bytes: float
    egress_bytes: float

    def __post_init__(self) -> None:
        # Precomputed STAGE_COST_COLUMNS vector so the batched assembly
        # copies one contiguous row per stage instead of re-reading
        # twelve attributes per candidate on the hot path.  Stored via
        # object.__setattr__ (the dataclass is frozen) and deliberately
        # not a field: equality, hashing, and pickling see only the
        # twelve scalars.
        object.__setattr__(
            self,
            "row",
            np.array(
                [
                    self.fwd_time,
                    self.bwd_time,
                    self.recompute_time,
                    self.tp_fwd_comm_time,
                    self.tp_bwd_comm_time,
                    self.reshard_time,
                    self.dp_sync_time,
                    self.weight_bytes,
                    self.optimizer_bytes,
                    self.activation_bytes,
                    self.reserved_bytes,
                    self.egress_bytes,
                ],
                dtype=np.float64,
            ),
        )

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("row", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__post_init__()

    def scaled(self, compute_scale: float) -> "StageCost":
        """Copy with compute terms stretched by ``compute_scale``.

        Heterogeneous assembly prices a stage on the slowest device it
        occupies by scaling the roofline compute columns (forward,
        backward, recompute); collective and memory terms are link- and
        capacity-bound, not device-speed-bound, and stay as profiled on
        the reference device.
        """
        return StageCost(
            fwd_time=self.fwd_time * compute_scale,
            bwd_time=self.bwd_time * compute_scale,
            recompute_time=self.recompute_time * compute_scale,
            tp_fwd_comm_time=self.tp_fwd_comm_time,
            tp_bwd_comm_time=self.tp_bwd_comm_time,
            reshard_time=self.reshard_time,
            dp_sync_time=self.dp_sync_time,
            weight_bytes=self.weight_bytes,
            optimizer_bytes=self.optimizer_bytes,
            activation_bytes=self.activation_bytes,
            reserved_bytes=self.reserved_bytes,
            egress_bytes=self.egress_bytes,
        )


@dataclass(frozen=True)
class StageReport:
    """Predicted resource consumption of one pipeline stage.

    Times are seconds per *iteration* unless suffixed ``_mb`` (per
    microbatch); memory is bytes per device.
    """

    fwd_time_mb: float
    bwd_time_mb: float
    recompute_time_mb: float
    tp_comm_time_mb: float
    reshard_time_mb: float
    p2p_time_mb: float
    dp_sync_time: float
    weight_bytes: float
    optimizer_bytes: float
    activation_bytes_mb: float
    in_flight: int
    reserved_bytes: float

    @property
    def compute_time_mb(self) -> float:
        """Pure computation per microbatch (fwd + bwd + recompute)."""
        return self.fwd_time_mb + self.bwd_time_mb + self.recompute_time_mb

    @property
    def comm_time_mb(self) -> float:
        """Communication per microbatch (tp collectives, reshard, p2p)."""
        return self.tp_comm_time_mb + self.reshard_time_mb + self.p2p_time_mb

    @property
    def peak_memory(self) -> float:
        """Predicted peak bytes per device (Eq. 1 + reserve)."""
        return (
            self.weight_bytes
            + self.optimizer_bytes
            + self.activation_bytes_mb * self.in_flight
            + self.reserved_bytes
        )

    def compute_time(self, num_microbatches: int) -> float:
        """Computation seconds per iteration."""
        return self.compute_time_mb * num_microbatches

    def comm_time(self, num_microbatches: int) -> float:
        """Communication seconds per iteration (incl. dp sync)."""
        return self.comm_time_mb * num_microbatches + self.dp_sync_time

    def stage_time(self, num_microbatches: int) -> float:
        """Total busy seconds per iteration for this stage's devices."""
        return (
            self.compute_time(num_microbatches)
            + self.comm_time(num_microbatches)
        )


#: StageReport float fields materialized from a lazy plane row, in
#: declaration order (in_flight and reserved_bytes are carried apart so
#: in_flight stays a Python int).
_STAGE_REPORT_PLANE_FIELDS = (
    "fwd_time_mb",
    "bwd_time_mb",
    "recompute_time_mb",
    "tp_comm_time_mb",
    "reshard_time_mb",
    "p2p_time_mb",
    "dp_sync_time",
    "weight_bytes",
    "optimizer_bytes",
    "activation_bytes_mb",
)


class LazyStages:
    """Deferred per-stage report payload for batch-assembled estimates.

    The batched assembly kernel computes every stage value as array
    planes; most of those reports only ever answer "what is your
    objective?" before the search discards them, so building eight
    ``StageReport`` objects per candidate up front is pure overhead.
    This payload keeps the plane rows (plus the precomputed Eq. 1 peak
    memories and OOM verdict) and materializes the ``StageReport``
    tuple on first access — with values bit-identical to the eager
    scalar path, since they are the same Python floats either way.
    """

    __slots__ = ("planes", "in_flight", "reserved", "peaks", "oom")

    def __init__(self, planes, in_flight, reserved, peaks, oom):
        self.planes = planes
        self.in_flight = in_flight
        self.reserved = reserved
        self.peaks = peaks
        self.oom = oom

    def build(self) -> Tuple[StageReport, ...]:
        new_stage = StageReport.__new__
        reports = []
        for row, infl, resv in zip(self.planes, self.in_flight, self.reserved):
            report = new_stage(StageReport)
            fields = report.__dict__
            (
                fields["fwd_time_mb"],
                fields["bwd_time_mb"],
                fields["recompute_time_mb"],
                fields["tp_comm_time_mb"],
                fields["reshard_time_mb"],
                fields["p2p_time_mb"],
                fields["dp_sync_time"],
                fields["weight_bytes"],
                fields["optimizer_bytes"],
                fields["activation_bytes_mb"],
            ) = row
            fields["in_flight"] = infl
            fields["reserved_bytes"] = resv
            reports.append(report)
        return tuple(reports)


@dataclass(frozen=True)
class PerfReport:
    """Predicted performance of a full configuration.

    Instances from the scalar estimator carry their ``stages`` tuple
    directly; instances from the batch estimator defer it behind a
    :class:`LazyStages` payload (see :func:`lazy_perf_report`) and
    materialize on first access.  Equality, hashing, pickling, and
    every property read through the same field values either way.
    """

    stages: Tuple[StageReport, ...]
    num_microbatches: int
    iteration_time: float
    memory_limit: float
    #: Per-stage memory limits on heterogeneous clusters (the minimum
    #: capacity over each stage's occupied devices); ``None`` on a
    #: homogeneous cluster, where ``memory_limit`` bounds every stage.
    stage_limits: Optional[Tuple[float, ...]] = None

    def __getattr__(self, name: str):
        # Only ever reached when normal lookup fails, i.e. for the
        # not-yet-materialized ``stages`` of a lazy instance.
        if name == "stages":
            payload = self.__dict__.pop("_lazy", None)
            if payload is not None:
                stages = payload.build()
                self.__dict__["stages"] = stages
                return stages
        raise AttributeError(name)

    def __getstate__(self) -> dict:
        # Canonical field order regardless of lazy/eager construction
        # history, so identical reports pickle to identical bytes.
        return {
            "stages": self.stages,
            "num_microbatches": self.num_microbatches,
            "iteration_time": self.iteration_time,
            "memory_limit": self.memory_limit,
            "stage_limits": self.stage_limits,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def num_stages(self) -> int:
        payload = self.__dict__.get("_lazy")
        if payload is not None:
            return len(payload.peaks)
        return len(self.stages)

    @property
    def peak_memories(self) -> List[float]:
        payload = self.__dict__.get("_lazy")
        if payload is not None:
            return list(payload.peaks)
        return [s.peak_memory for s in self.stages]

    @property
    def is_oom(self) -> bool:
        """Whether any stage exceeds its device memory limit."""
        payload = self.__dict__.get("_lazy")
        if payload is not None:
            return payload.oom
        if self.stage_limits is not None:
            return any(
                m > limit
                for m, limit in zip(self.peak_memories, self.stage_limits)
            )
        return any(m > self.memory_limit for m in self.peak_memories)

    @property
    def oom_stages(self) -> List[int]:
        peaks = self.peak_memories
        limits = (
            self.stage_limits
            if self.stage_limits is not None
            else [self.memory_limit] * len(peaks)
        )
        return [
            i for i, (m, limit) in enumerate(zip(peaks, limits))
            if m > limit
        ]

    @property
    def max_memory(self) -> float:
        return max(self.peak_memories)

    def stage_times(self) -> List[float]:
        """Per-stage busy time per iteration (bottleneck metric)."""
        return [s.stage_time(self.num_microbatches) for s in self.stages]

    def throughput(self, global_batch_size: int) -> float:
        """Training throughput in samples per second."""
        if self.iteration_time <= 0:
            raise ValueError("iteration_time must be positive")
        return global_batch_size / self.iteration_time

    def resource_consumption(self, stage: int) -> dict:
        """Per-resource consumption of one stage (for Heuristic-2)."""
        s = self.stages[stage]
        return {
            "compute": s.compute_time(self.num_microbatches),
            "communication": s.comm_time(self.num_microbatches),
            "memory": s.peak_memory,
        }

    def resource_proportions(self, stage: int) -> dict:
        """Stage share of each resource across all stages (§3.2.2).

        The paper's "consumption proportion": the stage's consumed
        amount divided by the total consumed across stages.
        """
        totals = {name: 0.0 for name in RESOURCES}
        for i in range(self.num_stages):
            for name, value in self.resource_consumption(i).items():
                totals[name] += value
        own = self.resource_consumption(stage)
        return {
            name: (own[name] / totals[name]) if totals[name] > 0 else 0.0
            for name in RESOURCES
        }


def lazy_perf_report(
    payload: LazyStages,
    num_microbatches: int,
    iteration_time: float,
    memory_limit: float,
    stage_limits: Optional[Tuple[float, ...]] = None,
) -> PerfReport:
    """Construct a :class:`PerfReport` with deferred stage reports.

    Bypasses the dataclass ``__init__`` so the ``stages`` slot stays
    unset until :attr:`PerfReport.stages` is first read (at which point
    ``__getattr__`` materializes it from ``payload``).
    """
    report = PerfReport.__new__(PerfReport)
    fields = report.__dict__
    fields["_lazy"] = payload
    fields["num_microbatches"] = num_microbatches
    fields["iteration_time"] = iteration_time
    fields["memory_limit"] = memory_limit
    fields["stage_limits"] = stage_limits
    return report
