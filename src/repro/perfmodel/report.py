"""Performance-report dataclasses.

The performance model answers every question the search asks through a
single :class:`PerfReport`: per-stage computation/communication time,
per-stage memory breakdown, OOM flags, and the predicted iteration
time (Eq. 2).  Keeping it one immutable object makes estimates safely
cacheable by configuration signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: Resource names used by bottleneck analysis (Table 1 columns).
RESOURCES = ("compute", "communication", "memory")


@dataclass(frozen=True)
class StageCost:
    """Stage-count-invariant cost of one pipeline stage.

    Everything here depends only on the stage's own op span, device
    count, per-op settings, and the microbatch size — never on how many
    other stages exist or where they sit.  That invariance is what lets
    :class:`~repro.perfmodel.PerfModel` memoize these by
    ``(stage.digest(), microbatch_size)`` and reuse them across every
    configuration that contains an identical stage.  The stage-count-
    dependent parts (pipeline p2p transfers, 1F1B in-flight counts,
    Eq. 2 totals) are added during assembly.

    Times are seconds per microbatch except ``dp_sync_time`` (per
    iteration); ``reshard_time`` is the one-way in-stage resharding
    cost (charged once forward, once backward).  ``egress_bytes`` is
    the stage's last-op output size, used to price the p2p transfer to
    whatever stage follows.
    """

    fwd_time: float
    bwd_time: float
    recompute_time: float
    tp_fwd_comm_time: float
    tp_bwd_comm_time: float
    reshard_time: float
    dp_sync_time: float
    weight_bytes: float
    optimizer_bytes: float
    activation_bytes: float
    reserved_bytes: float
    egress_bytes: float


@dataclass(frozen=True)
class StageReport:
    """Predicted resource consumption of one pipeline stage.

    Times are seconds per *iteration* unless suffixed ``_mb`` (per
    microbatch); memory is bytes per device.
    """

    fwd_time_mb: float
    bwd_time_mb: float
    recompute_time_mb: float
    tp_comm_time_mb: float
    reshard_time_mb: float
    p2p_time_mb: float
    dp_sync_time: float
    weight_bytes: float
    optimizer_bytes: float
    activation_bytes_mb: float
    in_flight: int
    reserved_bytes: float

    @property
    def compute_time_mb(self) -> float:
        """Pure computation per microbatch (fwd + bwd + recompute)."""
        return self.fwd_time_mb + self.bwd_time_mb + self.recompute_time_mb

    @property
    def comm_time_mb(self) -> float:
        """Communication per microbatch (tp collectives, reshard, p2p)."""
        return self.tp_comm_time_mb + self.reshard_time_mb + self.p2p_time_mb

    @property
    def peak_memory(self) -> float:
        """Predicted peak bytes per device (Eq. 1 + reserve)."""
        return (
            self.weight_bytes
            + self.optimizer_bytes
            + self.activation_bytes_mb * self.in_flight
            + self.reserved_bytes
        )

    def compute_time(self, num_microbatches: int) -> float:
        """Computation seconds per iteration."""
        return self.compute_time_mb * num_microbatches

    def comm_time(self, num_microbatches: int) -> float:
        """Communication seconds per iteration (incl. dp sync)."""
        return self.comm_time_mb * num_microbatches + self.dp_sync_time

    def stage_time(self, num_microbatches: int) -> float:
        """Total busy seconds per iteration for this stage's devices."""
        return (
            self.compute_time(num_microbatches)
            + self.comm_time(num_microbatches)
        )


@dataclass(frozen=True)
class PerfReport:
    """Predicted performance of a full configuration."""

    stages: Tuple[StageReport, ...]
    num_microbatches: int
    iteration_time: float
    memory_limit: float

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def peak_memories(self) -> List[float]:
        return [s.peak_memory for s in self.stages]

    @property
    def is_oom(self) -> bool:
        """Whether any stage exceeds the device memory limit."""
        return any(m > self.memory_limit for m in self.peak_memories)

    @property
    def oom_stages(self) -> List[int]:
        return [
            i for i, m in enumerate(self.peak_memories)
            if m > self.memory_limit
        ]

    @property
    def max_memory(self) -> float:
        return max(self.peak_memories)

    def stage_times(self) -> List[float]:
        """Per-stage busy time per iteration (bottleneck metric)."""
        return [s.stage_time(self.num_microbatches) for s in self.stages]

    def throughput(self, global_batch_size: int) -> float:
        """Training throughput in samples per second."""
        if self.iteration_time <= 0:
            raise ValueError("iteration_time must be positive")
        return global_batch_size / self.iteration_time

    def resource_consumption(self, stage: int) -> dict:
        """Per-resource consumption of one stage (for Heuristic-2)."""
        s = self.stages[stage]
        return {
            "compute": s.compute_time(self.num_microbatches),
            "communication": s.comm_time(self.num_microbatches),
            "memory": s.peak_memory,
        }

    def resource_proportions(self, stage: int) -> dict:
        """Stage share of each resource across all stages (§3.2.2).

        The paper's "consumption proportion": the stage's consumed
        amount divided by the total consumed across stages.
        """
        totals = {name: 0.0 for name in RESOURCES}
        for i in range(self.num_stages):
            for name, value in self.resource_consumption(i).items():
                totals[name] += value
        own = self.resource_consumption(stage)
        return {
            name: (own[name] / totals[name]) if totals[name] > 0 else 0.0
            for name in RESOURCES
        }
