"""Memory-prediction formulas (Eq. 1 of the paper).

Peak memory of pipeline stage ``i`` under 1F1B scheduling is::

    Memory_i = M_param_i + M_act_i * (p - i) + M_opt_i  (+ reserve)

plus the recomputation adjustment (recomputed segments keep only their
checkpoint inputs) and the deliberately *over-estimated* allocator
reserve (§3.3: under-estimating risks OOM configurations, so Aceso
charges the largest transient op footprint of the stage).
"""

from __future__ import annotations

import numpy as np

#: Safety multiplier on the predicted allocator reserve.  The paper
#: deliberately over-estimates extra memory (an under-estimate risks
#: OOM at deploy time); charging the largest transient twice covers
#: backward-pass workspaces the forward-replay can't see.
RESERVE_SAFETY_FACTOR = 2.0

#: The caching allocator hands out whole blocks of this granularity,
#: so tiny transients still reserve full blocks — the prediction must
#: round the same way or small models under-predict.
ALLOCATOR_BLOCK_BYTES = 2 * 1024 * 1024


def in_flight_counts(num_stages: int, num_microbatches: int) -> np.ndarray:
    """In-flight microbatches per stage under 1F1B.

    Stage ``i`` (0-based) holds activations of ``p - i`` microbatches at
    its peak, capped by the number of microbatches itself.
    """
    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("stage and microbatch counts must be positive")
    counts = num_stages - np.arange(num_stages)
    return np.minimum(counts, num_microbatches)


def activation_kept_mask(
    recompute: np.ndarray, stage_id: np.ndarray
) -> np.ndarray:
    """Fraction (0/1) of each op's saved activation actually kept.

    Non-recomputed ops keep their full saved activation.  A maximal run
    of recomputed ops inside one stage keeps only its *first* op's
    input (the checkpoint the segment restarts from); the rest keep
    nothing until backward regenerates them.
    """
    if recompute.shape != stage_id.shape:
        raise ValueError("recompute and stage_id must have the same shape")
    prev_rc = np.concatenate([[False], recompute[:-1]])
    same_stage = np.concatenate(
        [[False], stage_id[1:] == stage_id[:-1]]
    )
    segment_start = recompute & ~(prev_rc & same_stage)
    return (~recompute | segment_start).astype(np.float64)


def allocator_reserve(
    transient_bytes: np.ndarray,
    stage_starts: np.ndarray,
    *,
    safety_factor: float = RESERVE_SAFETY_FACTOR,
) -> np.ndarray:
    """Per-stage allocator reserve: the largest transient op footprint.

    ``stage_starts`` are the first op indices of each (contiguous)
    stage.  Mirrors the paper's over-estimation rule for the PyTorch
    caching allocator; ``safety_factor`` exists for the ablation that
    shows what under-reserving costs.
    """
    if len(transient_bytes) == 0:
        raise ValueError("transient_bytes must be non-empty")
    if safety_factor <= 0:
        raise ValueError("safety_factor must be positive")
    peaks = np.maximum.reduceat(transient_bytes, stage_starts)
    blocks = np.ceil(peaks / ALLOCATOR_BLOCK_BYTES) * ALLOCATOR_BLOCK_BYTES
    return blocks * safety_factor


def stage_allocator_reserve(
    transient_bytes: np.ndarray,
    *,
    safety_factor: float = RESERVE_SAFETY_FACTOR,
) -> float:
    """Allocator reserve of a single stage (scalar form).

    Same rule as :func:`allocator_reserve` applied to one stage's
    transient footprints; used by the per-stage costing path.
    """
    if len(transient_bytes) == 0:
        raise ValueError("transient_bytes must be non-empty")
    if safety_factor <= 0:
        raise ValueError("safety_factor must be positive")
    peak = transient_bytes.max()
    blocks = np.ceil(peak / ALLOCATOR_BLOCK_BYTES) * ALLOCATOR_BLOCK_BYTES
    return float(blocks * safety_factor)


def stage_peak_memory(
    weight_bytes: float,
    optimizer_bytes: float,
    activation_bytes_mb: float,
    in_flight: int,
    reserved_bytes: float,
) -> float:
    """Eq. 1 with the allocator reserve term."""
    return (
        weight_bytes
        + optimizer_bytes
        + activation_bytes_mb * in_flight
        + reserved_bytes
    )
