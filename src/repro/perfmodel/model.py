"""The profiling-based performance model (§3.3).

``PerfModel`` composes the profiled per-op linear time models and
collective coefficients into per-stage resource predictions and the
Eq. 2 iteration time, entirely with vectorized numpy gathers.

Estimation is structured in two layers:

1. :meth:`PerfModel._cost_stage` prices one pipeline stage in
   isolation — compute, tensor-parallel collectives, in-stage
   resharding, dp gradient sync, and memory.  Every one of those terms
   is *stage-count invariant*, so the resulting :class:`StageCost` is
   memoized in a bounded LRU keyed by ``(stage.digest(),
   microbatch_size)``.  Reconfiguration primitives touch one or two
   stages, so after the first estimate of a configuration family a new
   candidate re-costs only its dirty stages instead of the whole op
   chain.
2. A cheap assembly step combines the cached stage costs with the
   stage-count-dependent parts: pipeline p2p boundary transfers, 1F1B
   in-flight counts, the allocator view of peak memory, and the Eq. 2
   warmup/steady/cooldown totals.

Whole-config estimates are additionally memoized by configuration
identity (``ParallelConfig.cache_key``) in a second LRU; the miss counter (``num_estimates``) is the
"explored configurations" metric of Exp#4.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..parallel.stage import StageConfig
from ..profiling.database import ProfileDatabase, ProfiledGraph
from ..telemetry import DEBUG, CounterGroup, get_bus
from ..telemetry.events import (
    PERFMODEL_ESTIMATE,
    PERFMODEL_ESTIMATE_BATCH,
    PERFMODEL_FIRST_FEASIBLE,
)
from .memory import (
    activation_kept_mask,
    in_flight_counts,
    stage_allocator_reserve,
)
from .report import (
    LazyStages,
    PerfReport,
    StageCost,
    StageReport,
    lazy_perf_report,
)
from .timing import stage_totals


def _log2_int(values: np.ndarray) -> np.ndarray:
    """Exact log2 of power-of-two int arrays (via the float exponent).

    ``frexp`` writes a power of two ``2**k`` as ``0.5 * 2**(k+1)``, so
    the binary exponent minus one is the exact integer log — no loop,
    no float ``log2`` rounding hazard.
    """
    return np.frexp(values.astype(np.float64))[1] - 1


class _PendingReport:
    """Placeholder occupying a config-cache slot during a batch.

    :meth:`PerfModel.estimate_batch` must mutate the LRU in exactly the
    order a sequential loop of :meth:`PerfModel.estimate` would — a
    miss early in the batch can evict an entry that a config later in
    the batch would otherwise have hit.  Phase 1 therefore *reserves*
    each miss's slot immediately (evicting at the sequential position)
    and phase 3 replaces the placeholder with the assembled report.
    ``slot`` is the miss's index into the batch's miss list, so repeat
    occurrences within the batch resolve to the same report.
    Placeholders never outlive the ``estimate_batch`` call.
    """

    __slots__ = ("slot",)

    def __init__(self, slot: int) -> None:
        self.slot = slot


class PerfModel:
    """Performance oracle bound to one (graph, cluster, database).

    Args:
        graph: the model under planning.
        cluster: the hardware.
        database: a profile database covering the graph's operators.
        cache_size: whole-config estimates kept in the LRU.
        stage_cache_size: per-stage costs kept in the LRU (0 disables
            stage-level memoization; every estimate then re-costs all
            stages, which is the reference path the equivalence tests
            compare against).
        reserve_safety_factor: override for the allocator over-reserve.
    """

    def __init__(
        self,
        graph: OpGraph,
        cluster: ClusterSpec,
        database: ProfileDatabase,
        *,
        cache_size: int = 500_000,
        stage_cache_size: int = 200_000,
        reserve_safety_factor: float = None,
    ) -> None:
        from .memory import RESERVE_SAFETY_FACTOR

        self.graph = graph
        self.cluster = cluster
        self.database = database
        self.profiled = ProfiledGraph(graph, database)
        self.memory_limit = float(cluster.device.memory_bytes)
        # Heterogeneous clusters: per-node compute scale relative to
        # the reference device the database was profiled on, and
        # per-node memory capacity.  ``None`` keeps the homogeneous
        # fast path bit-identical to the pre-hetero model.
        if cluster.is_heterogeneous:
            reference = cluster.device.sustained_flops(graph.precision)
            self._node_scale = np.array([
                reference / spec.sustained_flops(graph.precision)
                for spec in cluster.node_devices
            ])
            self._node_mem = np.array([
                float(spec.memory_bytes) for spec in cluster.node_devices
            ])
        else:
            self._node_scale = None
            self._node_mem = None
        self.reserve_safety_factor = (
            RESERVE_SAFETY_FACTOR
            if reserve_safety_factor is None
            else reserve_safety_factor
        )
        self._elem = graph.elem_bytes
        self._cache: "OrderedDict[str, PerfReport]" = OrderedDict()
        self._cache_size = cache_size
        self._stage_cache: "OrderedDict[Tuple[bytes, int], StageCost]" = (
            OrderedDict()
        )
        self._stage_cache_size = stage_cache_size
        # Telemetry counters replace the former bare-int attributes;
        # the individual Counter objects are hoisted to slots-backed
        # locals because ``inc`` sits on the estimator hot path.
        self.counters = CounterGroup(
            "perfmodel",
            ("estimates", "config_hits", "stage_costs", "stage_hits"),
        )
        self._c_estimates = self.counters["estimates"]
        self._c_config_hits = self.counters["config_hits"]
        self._c_stage_costs = self.counters["stage_costs"]
        self._c_stage_hits = self.counters["stage_hits"]
        # num_estimates value at the first non-OOM report, or None —
        # the "estimates until a feasible plan" metric of the elastic
        # re-planning experiment.
        self.first_feasible_estimate: Optional[int] = None

        ar = database.collective("allreduce")
        ag = database.collective("allgather")
        self._ar_lat = ar.latency
        self._ar_ibw = ar.inv_bandwidth
        self._ag_lat = ag.latency
        self._ag_ibw = ag.inv_bandwidth
        self._p2p_intra = database.collective("p2p_intra")
        self._p2p_inter = database.collective("p2p_inter")
        # Pipeline p2p always moves data between exactly two ranks, so
        # only the group-size-2 coefficients are ever used; hoist them
        # to scalars for the vectorized boundary pricing.  Single-GPU
        # clusters may not profile level 1 — they also never build a
        # multi-stage pipeline, so zeros are never read.
        self._p2p_lat = np.array([
            kind.latency[1] if len(kind.latency) > 1 else 0.0
            for kind in (self._p2p_intra, self._p2p_inter)
        ])
        self._p2p_ibw = np.array([
            kind.inv_bandwidth[1] if len(kind.inv_bandwidth) > 1 else 0.0
            for kind in (self._p2p_intra, self._p2p_inter)
        ])

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def num_estimates(self) -> int:
        """Unique configurations costed (config-cache misses)."""
        return self._c_estimates.value

    @property
    def num_stage_costs(self) -> int:
        """Stage-cache misses."""
        return self._c_stage_costs.value

    @property
    def num_stage_hits(self) -> int:
        """Stage-cache hits."""
        return self._c_stage_hits.value

    def emit_counters(self, bus=None) -> None:
        """Publish a ``perfmodel.counters`` snapshot on the bus."""
        self.counters.emit_to(bus if bus is not None else get_bus())

    def estimate(self, config: ParallelConfig) -> PerfReport:
        """Predict the performance of ``config`` (memoized)."""
        key = config.cache_key()
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self._c_config_hits.value += 1
            return cached
        report = self._estimate_uncached(config)
        if len(self._cache) >= self._cache_size:
            self._cache.popitem(last=False)
        self._cache[key] = report
        self._c_estimates.value += 1
        bus = get_bus()
        if self.first_feasible_estimate is None and not report.is_oom:
            self.first_feasible_estimate = self._c_estimates.value
            if bus.active:
                bus.emit(
                    PERFMODEL_FIRST_FEASIBLE,
                    source="perfmodel",
                    level=DEBUG,
                    estimates=self.first_feasible_estimate,
                )
        if bus.active:
            bus.emit(
                PERFMODEL_ESTIMATE,
                source="perfmodel",
                level=DEBUG,
                oom=report.is_oom,
                iteration_time=report.iteration_time,
            )
        return report

    def estimate_batch(
        self, configs: Sequence[ParallelConfig]
    ) -> List[PerfReport]:
        """Predict the performance of many candidates at once.

        Semantically a loop of :meth:`estimate` — same caches, same
        counters, same ``num_estimates`` accounting, and bit-identical
        reports — but cache misses are assembled together by
        :meth:`_assemble_batch` as padded ``[batch, stage]`` array ops,
        and telemetry is one aggregated ``perfmodel.estimate_batch``
        event per call instead of one event per costed config.

        ``first_feasible_estimate`` advances exactly as the sequential
        loop would: the counter value at the first non-OOM *miss* in
        batch order.  Eviction fidelity holds too: each miss reserves
        its LRU slot in phase 1 with a :class:`_PendingReport`, so an
        insertion mid-batch evicts (and can force a later config to
        re-miss) at exactly the point the sequential loop would.
        """
        reports: List[Optional[PerfReport]] = [None] * len(configs)
        miss_indices: List[int] = []
        miss_keys: List[bytes] = []
        duplicates: List[Tuple[int, int]] = []
        cache = self._cache
        for i, config in enumerate(configs):
            key = config.cache_key()
            cached = cache.get(key)
            if cached is not None:
                cache.move_to_end(key)
                self._c_config_hits.value += 1
                if isinstance(cached, _PendingReport):
                    # Repeat within one batch: sequentially the second
                    # occurrence would hit the entry the first inserted.
                    duplicates.append((i, cached.slot))
                else:
                    reports[i] = cached
                continue
            if len(cache) >= self._cache_size:
                cache.popitem(last=False)
            cache[key] = _PendingReport(len(miss_indices))
            miss_indices.append(i)
            miss_keys.append(key)

        first_feasible_now = False
        oom_count = 0
        if miss_indices:
            miss_configs = [configs[i] for i in miss_indices]
            try:
                # Inlined hit path of _cost_stage (same cache, counters,
                # and LRU recency updates): the per-call overhead is
                # visible at batch sizes in the thousands.
                stage_cache = self._stage_cache
                stage_hits = self._c_stage_hits
                cost_stage = self._cost_stage
                costs_per_config: List[List[StageCost]] = []
                for config in miss_configs:
                    mbs = config.microbatch_size
                    costs = []
                    for stage in config.stages:
                        cache_key = (stage.digest(), mbs)
                        cached_cost = stage_cache.get(cache_key)
                        if cached_cost is not None:
                            stage_cache.move_to_end(cache_key)
                            stage_hits.value += 1
                            costs.append(cached_cost)
                        else:
                            costs.append(cost_stage(stage, mbs))
                    costs_per_config.append(costs)
                limits_per_config = None
                if self._node_scale is not None:
                    # Heterogeneous: apply placement-dependent compute
                    # scales to the (placement-free) cached stage costs
                    # and collect each config's per-stage memory limits.
                    limits_per_config = []
                    scaled_per_config = []
                    for config, costs in zip(
                        miss_configs, costs_per_config
                    ):
                        scales, limits = self._stage_factors(
                            [s.num_devices for s in config.stages]
                        )
                        limits_per_config.append(limits)
                        scaled_per_config.append([
                            cost if scale == 1.0 else cost.scaled(scale)
                            for cost, scale in zip(costs, scales)
                        ])
                    costs_per_config = scaled_per_config
                miss_reports, oom_flags = self._assemble_batch(
                    miss_configs, costs_per_config, limits_per_config
                )
            except BaseException:
                # Never leak placeholders into the cache where a later
                # estimate() could return one as a report.
                for key in miss_keys:
                    if isinstance(cache.get(key), _PendingReport):
                        del cache[key]
                raise
            oom_count = int(np.count_nonzero(oom_flags))
            for key, report, oom in zip(miss_keys, miss_reports, oom_flags):
                # The reserved slot may be gone (evicted mid-batch) —
                # the sequential loop would have lost the entry too.
                # Replacing a still-present value preserves LRU order.
                if key in cache:
                    cache[key] = report
                self._c_estimates.value += 1
                if self.first_feasible_estimate is None and not oom:
                    self.first_feasible_estimate = self._c_estimates.value
                    first_feasible_now = True
            for i, report in zip(miss_indices, miss_reports):
                reports[i] = report
            for i, slot in duplicates:
                reports[i] = miss_reports[slot]

        bus = get_bus()
        if bus.active and configs:
            if first_feasible_now:
                bus.emit(
                    PERFMODEL_FIRST_FEASIBLE,
                    source="perfmodel",
                    level=DEBUG,
                    estimates=self.first_feasible_estimate,
                )
            bus.emit(
                PERFMODEL_ESTIMATE_BATCH,
                source="perfmodel",
                level=DEBUG,
                batch=len(configs),
                hits=len(configs) - len(miss_indices),
                misses=len(miss_indices),
                oom=oom_count,
            )
        return reports

    def estimate_fresh(self, config: ParallelConfig) -> PerfReport:
        """Re-cost every stage from scratch, bypassing both caches.

        Reference path for the incremental-vs-full equivalence tests:
        the result must be bit-identical to :meth:`estimate` no matter
        what the caches contain.
        """
        mbs = config.microbatch_size
        costs = [
            self._cost_stage_uncached(stage, mbs)
            for stage in config.stages
        ]
        return self._assemble(config, costs)

    def iteration_time(self, config: ParallelConfig) -> float:
        """Shortcut: predicted seconds per training iteration."""
        return self.estimate(config).iteration_time

    def cache_info(self) -> dict:
        """Sizes and hit/miss counters of both memo layers."""
        return {
            "config_cache_len": len(self._cache),
            "config_cache_size": self._cache_size,
            "stage_cache_len": len(self._stage_cache),
            "stage_cache_size": self._stage_cache_size,
            "num_estimates": self.num_estimates,
            "num_stage_costs": self.num_stage_costs,
            "num_stage_hits": self.num_stage_hits,
        }

    #: Objective offset separating every OOM config from feasible ones.
    OOM_PENALTY = 1e9

    def objective(self, config: ParallelConfig) -> float:
        """Search objective (lower is better).

        Feasible configurations score their iteration time.  OOM
        configurations score a large penalty plus their relative memory
        overflow, so the search still measures *progress* toward
        feasibility (the paper's "an infeasible configuration becomes
        feasible" notion of better).
        """
        return self.objective_from_report(self.estimate(config))

    def objective_from_report(self, report: PerfReport) -> float:
        """The :meth:`objective` scoring rule for an existing report.

        Split out so batch callers can score the reports
        :meth:`estimate_batch` returns without a second cache lookup.
        """
        if not report.is_oom:
            return report.iteration_time
        limits = report.stage_limits
        if limits is None:
            overflow = sum(
                max(0.0, m - report.memory_limit)
                for m in report.peak_memories
            )
            return self.OOM_PENALTY * (1.0 + overflow / report.memory_limit)
        overflow = sum(
            max(0.0, m - limit)
            for m, limit in zip(report.peak_memories, limits)
        )
        return self.OOM_PENALTY * (1.0 + overflow / min(limits))

    def objective_batch(
        self, configs: Sequence[ParallelConfig]
    ) -> List[float]:
        """Search objectives for many candidates (one batched estimate)."""
        return [
            self.objective_from_report(report)
            for report in self.estimate_batch(configs)
        ]

    # ------------------------------------------------------------------
    # per-stage costing (stage-count invariant, memoized)
    # ------------------------------------------------------------------
    def _cost_stage(self, stage: StageConfig, mbs: int) -> StageCost:
        """Memoized per-stage cost, keyed by stage identity + mbs."""
        if self._stage_cache_size <= 0:
            return self._cost_stage_uncached(stage, mbs)
        key = (stage.digest(), mbs)
        cached = self._stage_cache.get(key)
        if cached is not None:
            self._stage_cache.move_to_end(key)
            self._c_stage_hits.value += 1
            return cached
        cost = self._cost_stage_uncached(stage, mbs)
        if len(self._stage_cache) >= self._stage_cache_size:
            self._stage_cache.popitem(last=False)
        self._stage_cache[key] = cost
        self._c_stage_costs.value += 1
        return cost

    def _cost_stage_uncached(self, stage: StageConfig, mbs: int) -> StageCost:
        graph, ga, pg = self.graph, self.graph.arrays, self.profiled
        elem = self._elem
        idx = np.arange(stage.start, stage.end)
        tp, dp, tp_dim, rc = stage.tp, stage.dp, stage.tp_dim, stage.recompute
        etp = np.minimum(tp, ga.max_tp[idx])
        tp_lv = _log2_int(tp)
        etp_lv = _log2_int(etp)
        samples = mbs / dp.astype(np.float64)

        # --- per-op compute times (profiled linear models) -------------
        fwd = pg.fwd_fixed[idx, tp_lv, tp_dim] + samples * pg.fwd_slope[
            idx, tp_lv, tp_dim
        ]
        bwd = pg.bwd_fixed[idx, tp_lv, tp_dim] + samples * pg.bwd_slope[
            idx, tp_lv, tp_dim
        ]
        rc_extra = np.where(rc, fwd, 0.0)

        # --- tensor-parallel collectives per microbatch ----------------
        comm_mask = etp > 1
        fwd_bytes = ga.fwd_comm_numel[idx, tp_dim] * samples * elem
        bwd_bytes = ga.bwd_comm_numel[idx, tp_dim] * samples * elem
        tp_fwd_comm = np.where(
            comm_mask & (fwd_bytes > 0),
            self._ar_lat[etp_lv] + fwd_bytes * self._ar_ibw[etp_lv],
            0.0,
        )
        tp_bwd_comm = np.where(
            comm_mask & (bwd_bytes > 0),
            self._ar_lat[etp_lv] + bwd_bytes * self._ar_ibw[etp_lv],
            0.0,
        )
        # Recomputation repeats the forward collectives too.
        rc_comm = np.where(rc, tp_fwd_comm, 0.0)

        # --- in-stage resharding (flexible tp/dp combinations, §4.2) ---
        # One-way cost; assembly charges it once forward, once backward.
        reshard = 0.0
        if stage.num_ops > 1:
            change = (tp[:-1] != tp[1:]) | (dp[:-1] != dp[1:])
            group_lv = _log2_int(tp[:-1] * dp[:-1])
            resh_bytes = ga.out_numel[idx[:-1]] * samples[:-1] * elem
            reshard = float(
                np.where(
                    change,
                    self._ag_lat[group_lv] + resh_bytes * self._ag_ibw[group_lv],
                    0.0,
                ).sum()
            )

        # --- data-parallel gradient sync per iteration -----------------
        # One allreduce per distinct dp degree present in the stage
        # (ops sharing a degree share a process group).  Bucket grad
        # bytes by log-level instead of looping over np.unique.
        grad_bytes = ga.params[idx] * elem / etp
        dp_lv = _log2_int(dp)
        counts = np.bincount(dp_lv)
        sums = np.bincount(dp_lv, weights=grad_bytes)
        levels = np.nonzero(counts[1:])[0] + 1
        dp_sync = float(
            np.sum(self._ar_lat[levels] + sums[levels] * self._ar_ibw[levels])
        )

        # --- memory ----------------------------------------------------
        kept = activation_kept_mask(
            rc, np.zeros(stage.num_ops, dtype=np.int64)
        )
        act_bytes = ga.saved_numel[idx] * samples / etp * elem * kept
        weight_bytes = ga.params[idx] * elem / etp
        optimizer_bytes = (
            ga.params[idx] * float(graph.optimizer_bytes_per_param) / etp
        )
        transient = (
            (ga.saved_numel[idx] + ga.out_numel[idx]) * samples / etp * elem
        )
        reserve = stage_allocator_reserve(
            transient, safety_factor=self.reserve_safety_factor
        )
        egress = float(
            ga.out_numel[stage.end - 1] * mbs / float(dp[-1]) * elem
        )

        return StageCost(
            fwd_time=float(fwd.sum()),
            bwd_time=float(bwd.sum()),
            recompute_time=float((rc_extra + rc_comm).sum()),
            tp_fwd_comm_time=float(tp_fwd_comm.sum()),
            tp_bwd_comm_time=float(tp_bwd_comm.sum()),
            reshard_time=reshard,
            dp_sync_time=dp_sync,
            weight_bytes=float(weight_bytes.sum()),
            optimizer_bytes=float(optimizer_bytes.sum()),
            activation_bytes=float(act_bytes.sum()),
            reserved_bytes=reserve,
            egress_bytes=egress,
        )

    # ------------------------------------------------------------------
    # assembly (stage-count dependent, cheap)
    # ------------------------------------------------------------------
    def _estimate_uncached(self, config: ParallelConfig) -> PerfReport:
        mbs = config.microbatch_size
        costs = [self._cost_stage(stage, mbs) for stage in config.stages]
        return self._assemble(config, costs)

    def _stage_factors(self, device_counts: Sequence[int]):
        """Hetero placement factors, or ``None`` when homogeneous.

        Stage costs are memoized placement-free (on the reference
        device); the per-device reality enters here, at assembly, where
        the contiguous device spans are known.  Returns per-stage
        ``(compute_scales, memory_limits)``: a stage's compute stretches
        by the slowest device it occupies and its memory budget is the
        smallest capacity in its span.
        """
        if self._node_scale is None:
            return None
        gpn = self.cluster.gpus_per_node
        max_node = self.cluster.num_nodes - 1
        scales: List[float] = []
        limits: List[float] = []
        first = 0
        for count in device_counts:
            lo = min(first // gpn, max_node)
            hi = min((first + count - 1) // gpn, max_node)
            scales.append(float(self._node_scale[lo:hi + 1].max()))
            limits.append(float(self._node_mem[lo:hi + 1].min()))
            first += count
        return scales, tuple(limits)

    def _assemble(
        self, config: ParallelConfig, costs: List[StageCost]
    ) -> PerfReport:
        stage_limits = None
        factors = self._stage_factors(
            [s.num_devices for s in config.stages]
        )
        if factors is not None:
            scales, stage_limits = factors
            costs = [
                cost if scale == 1.0 else cost.scaled(scale)
                for cost, scale in zip(costs, scales)
            ]
        num_stages = config.num_stages
        num_mb = config.num_microbatches(self.graph.global_batch_size)

        # --- pipeline p2p per microbatch (vectorized boundary loop) ----
        p2p_fwd_in = np.zeros(num_stages)
        p2p_bwd_in = np.zeros(num_stages)
        if num_stages > 1:
            devs = np.array(
                [s.num_devices for s in config.stages], dtype=np.int64
            )
            boundary_dev = np.clip(
                np.cumsum(devs)[:-1] - 1, 0, self.cluster.num_gpus - 2
            )
            gpn = self.cluster.gpus_per_node
            inter = (boundary_dev // gpn) != ((boundary_dev + 1) // gpn)
            kind = inter.astype(np.int64)  # 0 -> intra, 1 -> inter
            egress = np.array([c.egress_bytes for c in costs[:-1]])
            transfer = np.where(
                egress > 0,
                self._p2p_lat[kind] + egress * self._p2p_ibw[kind],
                0.0,
            )
            p2p_fwd_in[1:] = transfer
            p2p_bwd_in[:-1] = transfer

        in_flight = in_flight_counts(num_stages, num_mb)

        stage_reports = []
        for i, cost in enumerate(costs):
            stage_reports.append(
                StageReport(
                    fwd_time_mb=cost.fwd_time,
                    bwd_time_mb=cost.bwd_time,
                    recompute_time_mb=cost.recompute_time,
                    tp_comm_time_mb=cost.tp_fwd_comm_time
                    + cost.tp_bwd_comm_time,
                    reshard_time_mb=cost.reshard_time * 2.0,
                    p2p_time_mb=float(p2p_fwd_in[i] + p2p_bwd_in[i]),
                    dp_sync_time=cost.dp_sync_time,
                    weight_bytes=cost.weight_bytes,
                    optimizer_bytes=cost.optimizer_bytes,
                    activation_bytes_mb=cost.activation_bytes,
                    in_flight=int(in_flight[i]),
                    reserved_bytes=cost.reserved_bytes,
                )
            )

        fwd_total = (
            np.array(
                [c.fwd_time + c.tp_fwd_comm_time + c.reshard_time
                 for c in costs]
            )
            + p2p_fwd_in
        )
        bwd_total = (
            np.array(
                [c.bwd_time + c.recompute_time + c.tp_bwd_comm_time
                 + c.reshard_time for c in costs]
            )
            + p2p_bwd_in
        )
        dp_sync = np.array([c.dp_sync_time for c in costs])
        totals = stage_totals(fwd_total, bwd_total, num_mb, dp_sync)
        return PerfReport(
            stages=tuple(stage_reports),
            num_microbatches=num_mb,
            iteration_time=float(totals.max()),
            memory_limit=self.memory_limit,
            stage_limits=stage_limits,
        )

    def _assemble_batch(
        self,
        configs: Sequence[ParallelConfig],
        costs_per_config: Sequence[List[StageCost]],
        limits_per_config: Optional[Sequence[Tuple[float, ...]]] = None,
    ) -> Tuple[List[PerfReport], np.ndarray]:
        """Assemble many configurations' reports in one set of array ops.

        Stage costs are gathered into padded ``[batch, stage, column]``
        float64 tensors (see ``STAGE_COST_COLUMNS``); the Eq. 1 peak
        memories, pipeline p2p boundary transfers, and Eq. 2 totals are
        then evaluated for the whole batch at once.  Every expression
        mirrors :meth:`_assemble`'s operand association order on the
        same float64 values, so the returned reports are bit-identical
        to the scalar path; slots past a configuration's own stage
        count are masked out of every reduction.  Returns the reports
        plus a per-config OOM flag vector (used for first-feasible
        tracking without re-deriving it from report properties).
        """
        num_configs = len(configs)
        counts = np.array(
            [config.num_stages for config in configs], dtype=np.int64
        )
        max_stages = int(counts.max())
        stage_pos = np.arange(max_stages)
        valid = stage_pos[None, :] < counts[:, None]

        # Gather every stage's precomputed cost row into one flat
        # [total_stages, column] block, then scatter through the valid
        # mask: boolean fancy indexing walks the padded tensor in
        # C order, which is exactly the (config, stage) order the flat
        # lists were built in.
        flat_rows: List[np.ndarray] = []
        flat_devs: List[int] = []
        for config, costs in zip(configs, costs_per_config):
            for cost in costs:
                flat_rows.append(cost.row)
            for stage in config.stages:
                flat_devs.append(stage.num_devices)
        rows = np.zeros((num_configs, max_stages, 12), dtype=np.float64)
        devs = np.zeros((num_configs, max_stages), dtype=np.int64)
        rows[valid] = np.concatenate(flat_rows).reshape(len(flat_rows), 12)
        devs[valid] = flat_devs
        (
            fwd, bwd, recompute, tp_fwd, tp_bwd, reshard, dp_sync,
            weight, optimizer, activation, reserved, egress,
        ) = np.moveaxis(rows, 2, 0)

        batch_size = self.graph.global_batch_size
        num_mb = np.array(
            [config.num_microbatches(batch_size) for config in configs],
            dtype=np.int64,
        )

        # --- pipeline p2p per microbatch (vectorized over the batch) ---
        p2p_fwd_in = np.zeros((num_configs, max_stages))
        p2p_bwd_in = np.zeros((num_configs, max_stages))
        if max_stages > 1:
            boundary_dev = np.clip(
                np.cumsum(devs, axis=1)[:, :-1] - 1,
                0,
                self.cluster.num_gpus - 2,
            )
            gpn = self.cluster.gpus_per_node
            inter = (boundary_dev // gpn) != ((boundary_dev + 1) // gpn)
            kind = inter.astype(np.int64)  # 0 -> intra, 1 -> inter
            boundary = stage_pos[None, :-1] < counts[:, None] - 1
            out_bytes = egress[:, :-1]
            transfer = np.where(
                boundary & (out_bytes > 0),
                self._p2p_lat[kind] + out_bytes * self._p2p_ibw[kind],
                0.0,
            )
            p2p_fwd_in[:, 1:] = transfer
            p2p_bwd_in[:, :-1] = transfer

        in_flight = np.minimum(
            counts[:, None] - stage_pos[None, :], num_mb[:, None]
        )

        # --- Eq. 2 totals: same association order as the scalar path ---
        fwd_total = ((fwd + tp_fwd) + reshard) + p2p_fwd_in
        bwd_total = (((bwd + recompute) + tp_bwd) + reshard) + p2p_bwd_in
        pair = fwd_total + bwd_total
        prefix = np.zeros((num_configs, max_stages))
        prefix[:, 1:] = np.cumsum(pair, axis=1)[:, :-1]
        totals = (prefix + num_mb[:, None] * pair) + dp_sync
        iteration_times = np.where(valid, totals, -np.inf).max(axis=1)

        # --- Eq. 1 peak memory feasibility ----------------------------
        peaks = (weight + optimizer) + activation * in_flight + reserved
        if limits_per_config is None:
            oom_flags = np.any(
                valid & (peaks > self.memory_limit), axis=1
            )
        else:
            limit_arr = np.full(
                (num_configs, max_stages), np.inf, dtype=np.float64
            )
            limit_arr[valid] = [
                limit
                for limits in limits_per_config
                for limit in limits
            ]
            oom_flags = np.any(valid & (peaks > limit_arr), axis=1)

        tp_comm = tp_fwd + tp_bwd
        reshard_rt = reshard * 2.0
        p2p_time = p2p_fwd_in + p2p_bwd_in
        # One bulk [batch, stage, field] conversion covering the ten
        # leading float fields of StageReport in declaration order; the
        # int-typed in_flight and trailing reserved_bytes convert
        # separately so in_flight stays a Python int like the scalar
        # path produces.
        planes = np.stack(
            (
                fwd, bwd, recompute, tp_comm, reshard_rt, p2p_time,
                dp_sync, weight, optimizer, activation,
            ),
            axis=2,
        ).tolist()
        in_flight_l = in_flight.tolist()
        reserved_l = reserved.tolist()
        peaks_l = peaks.tolist()
        iteration_l = iteration_times.tolist()
        num_mb_l = num_mb.tolist()
        counts_l = counts.tolist()
        oom_l = oom_flags.tolist()

        # Reports come out stage-lazy: most batch-estimated candidates
        # only ever answer objective queries (iteration time + the peak
        # memories precomputed above), and the search discards them
        # without reading per-stage detail.  LazyStages materializes
        # identical StageReport tuples for the survivors on demand.
        memory_limit = self.memory_limit
        reports: List[PerfReport] = []
        for b in range(num_configs):
            n = counts_l[b]
            payload = LazyStages(
                planes[b][:n],
                in_flight_l[b][:n],
                reserved_l[b][:n],
                peaks_l[b][:n],
                oom_l[b],
            )
            reports.append(
                lazy_perf_report(
                    payload,
                    num_mb_l[b],
                    iteration_l[b],
                    memory_limit,
                    None
                    if limits_per_config is None
                    else limits_per_config[b],
                )
            )
        return reports, oom_flags

    # ------------------------------------------------------------------
    def _p2p_kind(self, boundary_device: int):
        device = max(0, min(boundary_device, self.cluster.num_gpus - 2))
        if self.cluster.node_of(device) == self.cluster.node_of(device + 1):
            return self._p2p_intra
        return self._p2p_inter


def build_perf_model(
    graph: OpGraph,
    cluster: ClusterSpec,
    *,
    database: Optional[ProfileDatabase] = None,
    seed: int = 0,
) -> PerfModel:
    """Profile (if needed) and construct a :class:`PerfModel`."""
    if database is None:
        from ..profiling.profiler import SimulatedProfiler

        database = SimulatedProfiler(cluster, seed=seed).profile(graph)
    return PerfModel(graph, cluster, database)
