"""The profiling-based performance model (§3.3).

``PerfModel`` composes the profiled per-op linear time models and
collective coefficients into per-stage resource predictions and the
Eq. 2 iteration time, entirely with vectorized numpy gathers — one
estimate costs microseconds even for 1K-layer models, which is what
makes iterating over thousands of candidate configurations cheap.

Estimates are memoized by configuration signature; the miss counter
(`num_estimates`) is the "explored configurations" metric of Exp#4.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..profiling.database import ProfileDatabase, ProfiledGraph
from .memory import activation_kept_mask, allocator_reserve, in_flight_counts
from .report import PerfReport, StageReport
from .timing import stage_totals


def _log2_int(values: np.ndarray) -> np.ndarray:
    """Exact log2 of power-of-two int arrays."""
    result = np.zeros_like(values)
    v = values.copy()
    while np.any(v > 1):
        mask = v > 1
        v[mask] >>= 1
        result[mask] += 1
    return result


class PerfModel:
    """Performance oracle bound to one (graph, cluster, database).

    Args:
        graph: the model under planning.
        cluster: the hardware.
        database: a profile database covering the graph's operators.
        cache_size: memoized estimates kept before the cache resets.
    """

    def __init__(
        self,
        graph: OpGraph,
        cluster: ClusterSpec,
        database: ProfileDatabase,
        *,
        cache_size: int = 500_000,
        reserve_safety_factor: float = None,
    ) -> None:
        from .memory import RESERVE_SAFETY_FACTOR

        self.graph = graph
        self.cluster = cluster
        self.database = database
        self.profiled = ProfiledGraph(graph, database)
        self.memory_limit = float(cluster.device.memory_bytes)
        self.reserve_safety_factor = (
            RESERVE_SAFETY_FACTOR
            if reserve_safety_factor is None
            else reserve_safety_factor
        )
        self._elem = graph.elem_bytes
        self._cache: Dict[str, PerfReport] = {}
        self._cache_size = cache_size
        self.num_estimates = 0  # unique configurations costed

        ar = database.collective("allreduce")
        ag = database.collective("allgather")
        self._ar_lat = ar.latency
        self._ar_ibw = ar.inv_bandwidth
        self._ag_lat = ag.latency
        self._ag_ibw = ag.inv_bandwidth
        self._p2p_intra = database.collective("p2p_intra")
        self._p2p_inter = database.collective("p2p_inter")

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def estimate(self, config: ParallelConfig) -> PerfReport:
        """Predict the performance of ``config`` (memoized)."""
        key = config.signature()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        report = self._estimate_uncached(config)
        if len(self._cache) >= self._cache_size:
            self._cache.clear()
        self._cache[key] = report
        self.num_estimates += 1
        return report

    def iteration_time(self, config: ParallelConfig) -> float:
        """Shortcut: predicted seconds per training iteration."""
        return self.estimate(config).iteration_time

    #: Objective offset separating every OOM config from feasible ones.
    OOM_PENALTY = 1e9

    def objective(self, config: ParallelConfig) -> float:
        """Search objective (lower is better).

        Feasible configurations score their iteration time.  OOM
        configurations score a large penalty plus their relative memory
        overflow, so the search still measures *progress* toward
        feasibility (the paper's "an infeasible configuration becomes
        feasible" notion of better).
        """
        report = self.estimate(config)
        if not report.is_oom:
            return report.iteration_time
        overflow = sum(
            max(0.0, m - report.memory_limit) for m in report.peak_memories
        )
        return self.OOM_PENALTY * (1.0 + overflow / report.memory_limit)

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def _estimate_uncached(self, config: ParallelConfig) -> PerfReport:
        graph, ga, pg = self.graph, self.graph.arrays, self.profiled
        elem = self._elem
        num_stages = config.num_stages
        mbs = config.microbatch_size
        num_mb = config.num_microbatches(graph.global_batch_size)

        tp, dp, tp_dim, rc, stage_id = config.gather_arrays()
        n = tp.shape[0]
        idx = np.arange(n)
        etp = np.minimum(tp, ga.max_tp)
        tp_lv = _log2_int(tp)
        etp_lv = _log2_int(etp)
        samples = mbs / dp.astype(np.float64)

        # --- per-op compute times (profiled linear models) -------------
        fwd = pg.fwd_fixed[idx, tp_lv, tp_dim] + samples * pg.fwd_slope[
            idx, tp_lv, tp_dim
        ]
        bwd = pg.bwd_fixed[idx, tp_lv, tp_dim] + samples * pg.bwd_slope[
            idx, tp_lv, tp_dim
        ]
        rc_extra = np.where(rc, fwd, 0.0)

        # --- tensor-parallel collectives per microbatch -----------------
        comm_mask = etp > 1
        fwd_bytes = ga.fwd_comm_numel[idx, tp_dim] * samples * elem
        bwd_bytes = ga.bwd_comm_numel[idx, tp_dim] * samples * elem
        tp_fwd_comm = np.where(
            comm_mask & (fwd_bytes > 0),
            self._ar_lat[etp_lv] + fwd_bytes * self._ar_ibw[etp_lv],
            0.0,
        )
        tp_bwd_comm = np.where(
            comm_mask & (bwd_bytes > 0),
            self._ar_lat[etp_lv] + bwd_bytes * self._ar_ibw[etp_lv],
            0.0,
        )
        # Recomputation repeats the forward collectives too.
        rc_comm = np.where(rc, tp_fwd_comm, 0.0)

        # --- in-stage resharding (flexible tp/dp combinations, §4.2) ---
        layout_change = (tp[:-1] != tp[1:]) | (dp[:-1] != dp[1:])
        same_stage = stage_id[:-1] == stage_id[1:]
        resh_mask = layout_change & same_stage
        group = tp * dp  # stage device count, per op
        group_lv = _log2_int(group)
        resh_bytes = ga.out_numel[:-1] * samples[:-1] * elem
        resh_time = np.where(
            resh_mask,
            self._ag_lat[group_lv[:-1]] + resh_bytes * self._ag_ibw[group_lv[:-1]],
            0.0,
        )

        # --- aggregate per stage ---------------------------------------
        def per_stage(values: np.ndarray) -> np.ndarray:
            return np.bincount(stage_id, weights=values, minlength=num_stages)

        stage_fwd = per_stage(fwd)
        stage_bwd = per_stage(bwd)
        stage_rc = per_stage(rc_extra + rc_comm)
        stage_tp_comm = per_stage(tp_fwd_comm + tp_bwd_comm)
        stage_resh = np.bincount(
            stage_id[:-1], weights=resh_time, minlength=num_stages
        ) * 2.0  # forward reshard + mirrored gradient reshard

        # --- pipeline p2p per microbatch --------------------------------
        p2p_fwd_in = np.zeros(num_stages)
        p2p_bwd_in = np.zeros(num_stages)
        for i in range(num_stages - 1):
            last = config.stages[i].end - 1
            boundary_bytes = (
                ga.out_numel[last] * mbs / float(dp[last]) * elem
            )
            boundary_device = config.stage_first_device(i + 1) - 1
            kind = self._p2p_kind(boundary_device)
            transfer = kind.time(boundary_bytes, 2)
            p2p_fwd_in[i + 1] = transfer
            p2p_bwd_in[i] = transfer

        # --- data-parallel gradient sync per iteration -------------------
        dp_sync = np.zeros(num_stages)
        grad_bytes = ga.params * elem / etp
        for i, stage in enumerate(config.stages):
            sl = slice(stage.start, stage.end)
            stage_dp = dp[sl]
            for degree in np.unique(stage_dp):
                if degree <= 1:
                    continue
                lv = int(degree).bit_length() - 1
                total = float(grad_bytes[sl][stage_dp == degree].sum())
                dp_sync[i] += self._ar_lat[lv] + total * self._ar_ibw[lv]

        # --- memory -------------------------------------------------------
        kept = activation_kept_mask(rc, stage_id)
        act_bytes = ga.saved_numel * samples / etp * elem * kept
        weight_bytes = ga.params * elem / etp
        optimizer_bytes = (
            ga.params * float(graph.optimizer_bytes_per_param) / etp
        )
        transient = (ga.saved_numel + ga.out_numel) * samples / etp * elem
        stage_starts = np.array(
            [s.start for s in config.stages], dtype=np.int64
        )
        reserve = allocator_reserve(
            transient, stage_starts,
            safety_factor=self.reserve_safety_factor,
        )
        stage_act = per_stage(act_bytes)
        stage_weights = per_stage(weight_bytes)
        stage_opt = per_stage(optimizer_bytes)
        in_flight = in_flight_counts(num_stages, num_mb)

        # --- assemble -----------------------------------------------------
        stage_reports = []
        for i in range(num_stages):
            stage_reports.append(
                StageReport(
                    fwd_time_mb=float(stage_fwd[i]),
                    bwd_time_mb=float(stage_bwd[i]),
                    recompute_time_mb=float(stage_rc[i]),
                    tp_comm_time_mb=float(stage_tp_comm[i]),
                    reshard_time_mb=float(stage_resh[i]),
                    p2p_time_mb=float(p2p_fwd_in[i] + p2p_bwd_in[i]),
                    dp_sync_time=float(dp_sync[i]),
                    weight_bytes=float(stage_weights[i]),
                    optimizer_bytes=float(stage_opt[i]),
                    activation_bytes_mb=float(stage_act[i]),
                    in_flight=int(in_flight[i]),
                    reserved_bytes=float(reserve[i]),
                )
            )

        fwd_total = (
            stage_fwd
            + per_stage(tp_fwd_comm)
            + stage_resh / 2.0
            + p2p_fwd_in
        )
        bwd_total = (
            stage_bwd
            + stage_rc
            + per_stage(tp_bwd_comm)
            + stage_resh / 2.0
            + p2p_bwd_in
        )
        totals = stage_totals(fwd_total, bwd_total, num_mb, dp_sync)
        return PerfReport(
            stages=tuple(stage_reports),
            num_microbatches=num_mb,
            iteration_time=float(totals.max()),
            memory_limit=self.memory_limit,
        )

    # ------------------------------------------------------------------
    def _p2p_kind(self, boundary_device: int):
        device = max(0, min(boundary_device, self.cluster.num_gpus - 2))
        if self.cluster.node_of(device) == self.cluster.node_of(device + 1):
            return self._p2p_intra
        return self._p2p_inter


def build_perf_model(
    graph: OpGraph,
    cluster: ClusterSpec,
    *,
    database: Optional[ProfileDatabase] = None,
    seed: int = 0,
) -> PerfModel:
    """Profile (if needed) and construct a :class:`PerfModel`."""
    if database is None:
        from ..profiling.profiler import SimulatedProfiler

        database = SimulatedProfiler(cluster, seed=seed).profile(graph)
    return PerfModel(graph, cluster, database)
