"""Iteration-time formulas (Eq. 2 of the paper).

Under 1F1B, a stage's iteration time decomposes into warmup (the first
microbatch's forward through the preceding stages), steady state
(N forward+backward pairs), and cooldown (the preceding stages'
backward drain)::

    T_stage_i = T_warmup_i + T_steady_i + T_cooldown_i

and the model's iteration time is the slowest stage's total.  For a
homogeneous pipeline this reduces to the classic
``(p - 1) * (f + b) + N * (f + b)`` makespan.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def stage_totals(
    fwd_times: Sequence[float],
    bwd_times: Sequence[float],
    num_microbatches: int,
    dp_sync_times: Sequence[float] = None,
) -> np.ndarray:
    """Per-stage ``warmup + steady + cooldown (+ dp sync)`` times.

    ``fwd_times`` / ``bwd_times`` are per-microbatch stage times that
    already include the stage's communication.
    """
    f = np.asarray(fwd_times, dtype=np.float64)
    b = np.asarray(bwd_times, dtype=np.float64)
    if f.shape != b.shape:
        raise ValueError("fwd and bwd time arrays must match")
    if num_microbatches < 1:
        raise ValueError("num_microbatches must be positive")
    prefix = np.concatenate([[0.0], np.cumsum(f + b)[:-1]])
    totals = prefix + num_microbatches * (f + b)
    if dp_sync_times is not None:
        sync = np.asarray(dp_sync_times, dtype=np.float64)
        if sync.shape != f.shape:
            raise ValueError("dp_sync_times must match stage count")
        totals = totals + sync
    return totals


def iteration_time_1f1b(
    fwd_times: Sequence[float],
    bwd_times: Sequence[float],
    num_microbatches: int,
    dp_sync_times: Sequence[float] = None,
) -> float:
    """Predicted iteration time: the slowest stage's Eq. 2 total."""
    return float(
        stage_totals(fwd_times, bwd_times, num_microbatches, dp_sync_times).max()
    )
