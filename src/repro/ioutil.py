"""Atomic JSON artifact writes shared by every persistence site.

Every JSON artifact this repository leaves on disk — plan-cache
entries, request journals, search checkpoints, fleet state, tournament
reports, benchmark payloads — goes through :func:`write_json_atomic`:
serialize to a temp file in the destination directory, ``fsync`` is
deliberately skipped (these are resumable caches, not databases), then
``os.replace`` onto the final name.  A crash mid-write therefore leaves
either the previous complete file or a stray ``.tmp``-suffixed orphan,
never a torn artifact — readers still tolerate torn files defensively
(quarantine, skip-as-miss), but the writer no longer produces them.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union


def write_json_atomic(
    path: Union[str, Path],
    payload: object,
    *,
    indent: int = 2,
    sort_keys: bool = False,
) -> Path:
    """Atomically serialize ``payload`` as JSON at ``path``.

    The temp file lives in the destination directory so the final
    ``os.replace`` stays on one filesystem (rename atomicity).  The
    parent directory is created when missing.  On any failure the temp
    file is removed and the previous ``path`` contents are untouched.
    Returns ``path`` as a :class:`~pathlib.Path`.
    """
    path = Path(path)
    directory = path.parent
    directory.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
            handle.write("\n")
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path
