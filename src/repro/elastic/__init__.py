"""Elastic training under churn: seeded timelines + rebalancing.

The paper's cheap search makes *continuous* re-planning affordable;
this package exercises that claim.  :mod:`~repro.elastic.timeline`
defines seeded, replayable cluster-membership churn, and
:mod:`~repro.elastic.controller` drives a plan through it — deciding
per event batch whether the estimated throughput loss justifies a
bounded warm re-search, and always holding a servable plan.
"""

from .controller import (
    ControllerPolicy,
    ControllerRun,
    Decision,
    ElasticController,
)
from .timeline import (
    CHURN_FORMAT_VERSION,
    EVENT_KINDS,
    ChurnEvent,
    ChurnTimeline,
    random_churn_timeline,
)

__all__ = [
    "CHURN_FORMAT_VERSION",
    "EVENT_KINDS",
    "ChurnEvent",
    "ChurnTimeline",
    "ControllerPolicy",
    "ControllerRun",
    "Decision",
    "ElasticController",
    "random_churn_timeline",
]
