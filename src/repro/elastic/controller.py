"""Continuous rebalancing under churn: the elastic controller.

:class:`ElasticController` consumes a :class:`ChurnTimeline` against a
(possibly heterogeneous) cluster and keeps a *servable plan* alive the
whole way through.  Per debounced event batch it

1. folds the events into its membership state (preempted nodes,
   straggling devices, degraded link scopes),
2. derives the *planner view* — the surviving cluster snapped to the
   power-of-two invariants, links degraded, and stragglers folded into
   per-node device specs so the heterogeneous performance model prices
   slow nodes honestly,
3. decides whether to re-plan at all (hysteresis: forced when the
   current plan no longer fits the cluster shape; otherwise only when
   the estimated throughput loss crosses a threshold and a cooldown
   window has elapsed), and
4. decides how: a warm search seeded from the adapted surviving top-k
   plans under a bounded iteration budget, falling down a ladder of
   cheaper answers — best adapted survivor, full-recompute safe
   variant, balanced restart — rather than ever raising.

Every decision is recorded as a JSON-able :class:`Decision` and
emitted as ``elastic.*`` telemetry.  All control inputs are virtual
(timeline time, iteration budgets): a run is bit-reproducible from
``(seed, timeline)``, which ``ControllerRun.replay_digest`` asserts.
An optional wall-clock :class:`~repro.core.budget.Deadline` can bound
replan latency for live deployments at the cost of that guarantee.
"""

from __future__ import annotations

import hashlib
import json
import time as _time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.topology import ClusterSpec
from ..core.budget import Deadline, SearchBudget
from ..core.search import AcesoSearch, AcesoSearchOptions
from ..faults.inject import (
    NoSurvivorsError,
    _surviving_nodes,
    adapt_config,
    degrade_cluster,
    memory_safe_variant,
    shrink_cluster_checked,
)
from ..faults.plan import FaultPlan, LinkDegradation, StragglerSlowdown
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..parallel.initializer import balanced_config
from ..perfmodel.model import PerfModel
from ..profiling.profiler import SimulatedProfiler
from ..runtime.executor import Executor
from ..telemetry import INFO, WARNING, get_bus
from ..telemetry.events import (
    ELASTIC_CLUSTER_SHRUNK,
    ELASTIC_DECISION,
    ELASTIC_EVENT,
    ELASTIC_FALLBACK,
    ELASTIC_REPLAN_BEGIN,
    ELASTIC_REPLAN_END,
    ELASTIC_RUN_BEGIN,
    ELASTIC_RUN_END,
)
from .timeline import ChurnEvent, ChurnTimeline


@dataclass(frozen=True)
class ControllerPolicy:
    """Hysteresis and budget knobs of the elastic controller.

    ``loss_threshold`` / ``cooldown_seconds`` / ``debounce_seconds``
    operate on *virtual* (timeline) time and model-estimated loss, so
    they never make decisions depend on the wall clock.

    ``deadline_seconds``, when set, bounds each replan's wall-clock
    latency via an anytime :class:`Deadline` — useful live, but a
    tripped deadline makes the run depend on machine speed, so replay
    tests leave it ``None``.
    """

    #: Re-plan when the current plan's estimated throughput fell by at
    #: least this fraction since adoption.
    loss_threshold: float = 0.05
    #: Minimum virtual seconds between voluntary (non-forced) replans.
    cooldown_seconds: float = 10.0
    #: Events closer together than this collapse into one decision.
    debounce_seconds: float = 1.0
    #: Survivor plans carried between replans (warm-start seeds).
    top_k: int = 5
    #: Search iterations per replan (the warm budget).
    replan_iterations: int = 6
    #: Optional wall-clock bound per replan (anytime search).
    deadline_seconds: Optional[float] = None
    #: Measure adopted plans on the runtime executor (ground truth
    #: throughput per decision; skip for planner-only runs).
    measure: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.loss_threshold < 1.0:
            raise ValueError("loss_threshold must be in (0, 1)")
        if self.cooldown_seconds < 0 or self.debounce_seconds < 0:
            raise ValueError("hysteresis windows must be non-negative")
        if self.top_k < 1 or self.replan_iterations < 1:
            raise ValueError("top_k and replan_iterations must be >= 1")


@dataclass
class Decision:
    """One controller decision for a debounced batch of churn events."""

    index: int
    time: float
    events: List[dict]
    action: str  # "keep" | "replan" | "fallback" | "halt"
    reason: str
    cluster_gpus: int
    estimated_loss: float
    objective_before: float
    objective_after: float
    plan_signature: str
    feasible: bool
    num_estimates: int
    fallback_rung: Optional[str] = None
    throughput: float = 0.0
    #: Informational wall-clock cost; never a control input, and
    #: excluded from the replay fingerprint.
    replan_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "time": self.time,
            "events": list(self.events),
            "action": self.action,
            "reason": self.reason,
            "cluster_gpus": self.cluster_gpus,
            "estimated_loss": self.estimated_loss,
            "objective_before": self.objective_before,
            "objective_after": self.objective_after,
            "plan_signature": self.plan_signature,
            "feasible": self.feasible,
            "num_estimates": self.num_estimates,
            "fallback_rung": self.fallback_rung,
            "throughput": self.throughput,
            "replan_seconds": self.replan_seconds,
        }

    def replay_fingerprint(self) -> dict:
        """The decision minus wall-clock fields (bit-reproducible)."""
        data = self.to_dict()
        del data["replan_seconds"]
        return data


@dataclass
class ControllerRun:
    """Full record of one elastic run over a churn timeline."""

    seed: int
    decisions: List[Decision]
    initial_signature: str
    initial_objective: float
    final_config: ParallelConfig
    final_feasible: bool

    @property
    def num_replans(self) -> int:
        return sum(
            1
            for d in self.decisions
            if d.action in ("replan", "fallback")
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "initial_signature": self.initial_signature,
            "initial_objective": self.initial_objective,
            "final_signature": self.final_config.signature(),
            "final_feasible": self.final_feasible,
            "num_replans": self.num_replans,
            "decisions": [d.to_dict() for d in self.decisions],
        }

    def replay_fingerprint(self) -> dict:
        data = self.to_dict()
        data["decisions"] = [
            d.replay_fingerprint() for d in self.decisions
        ]
        return data

    def replay_digest(self) -> str:
        """SHA-256 over the wall-clock-free run record.  Two runs of
        the same ``(seed, timeline)`` produce the same digest."""
        blob = json.dumps(self.replay_fingerprint(), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class _MembershipState:
    """Mutable view of what the timeline has done to the cluster."""

    preempted: set = field(default_factory=set)
    stragglers: Dict[int, float] = field(default_factory=dict)
    link_factors: Dict[str, float] = field(default_factory=dict)

    def apply(self, event: ChurnEvent) -> None:
        if event.kind == "node_preempt":
            self.preempted.add(event.node_id)
        elif event.kind == "node_join":
            self.preempted.discard(event.node_id)
        elif event.kind == "straggler_on":
            self.stragglers[event.device_id] = event.factor
        elif event.kind == "straggler_off":
            self.stragglers.pop(event.device_id, None)
        elif event.kind == "link_degrade":
            self.link_factors[event.scope] = event.factor
        elif event.kind == "link_repair":
            self.link_factors.pop(event.scope, None)


@dataclass
class _ClusterView:
    """The three coherent projections of the membership state.

    ``executor_cluster`` keeps nominal links — the executor applies
    ``fault_view``'s link degradations and stragglers itself — while
    ``planner_cluster`` bakes both into the hardware description the
    performance model prices, so neither path double-counts.
    """

    effective: ClusterSpec       # survivors, power-of-two snapped
    planner: ClusterSpec         # + degraded links, stragglers folded
    fault_view: FaultPlan        # stragglers/links in shrunk device ids
    kept_nodes: Tuple[int, ...]  # base-cluster ids of surviving nodes


class ElasticController:
    """Drive a plan through a churn timeline without ever dropping it."""

    def __init__(
        self,
        graph: OpGraph,
        cluster: ClusterSpec,
        *,
        policy: Optional[ControllerPolicy] = None,
        seed: int = 0,
        initial_survivors: Optional[
            Sequence[Tuple[float, ParallelConfig]]
        ] = None,
    ) -> None:
        self.graph = graph
        self.cluster = cluster
        self.policy = policy or ControllerPolicy()
        self.seed = seed
        self._models: Dict[tuple, PerfModel] = {}
        self._initial_survivors = (
            list(initial_survivors) if initial_survivors else None
        )

    # ------------------------------------------------------------------
    # cluster projection
    # ------------------------------------------------------------------
    def _project(self, state: _MembershipState) -> _ClusterView:
        base = self.cluster
        gpn = base.gpus_per_node
        # A timeline may reference nodes this cluster doesn't have
        # (e.g. replayed against a smaller deployment); events about
        # hardware that doesn't exist here are inert, not fatal.
        failed = {
            d
            for node in state.preempted
            if node < base.num_nodes
            for d in range(node * gpn, (node + 1) * gpn)
        }
        effective, _ = shrink_cluster_checked(base, sorted(failed))
        kept = _surviving_nodes(base, failed, effective.num_nodes)

        # Remap base-cluster device ids onto the shrunk cluster; a
        # straggler on a dropped node (or beyond a collapsed node's
        # snapped width) no longer exists.
        new_gpn = effective.gpus_per_node
        remapped: Dict[int, float] = {}
        for device, factor in state.stragglers.items():
            node, offset = device // gpn, device % gpn
            if node in kept and offset < new_gpn:
                remapped[kept.index(node) * new_gpn + offset] = factor

        fault_view = FaultPlan(
            seed=self.seed,
            stragglers=tuple(
                StragglerSlowdown(device, factor)
                for device, factor in sorted(remapped.items())
            ),
            link_degradations=tuple(
                LinkDegradation(scope, factor)
                for scope, factor in sorted(state.link_factors.items())
            ),
        )

        planner = degrade_cluster(
            effective,
            FaultPlan(
                link_degradations=fault_view.link_degradations
            ),
        )
        if remapped:
            # Fold stragglers into per-node device specs: the hetero
            # performance model then prices the slow node and the
            # search migrates layers off it — the same mechanism that
            # handles genuinely mixed hardware.
            specs = list(
                planner.node_devices
                or (planner.device,) * planner.num_nodes
            )
            for position in range(planner.num_nodes):
                span = range(
                    position * new_gpn, (position + 1) * new_gpn
                )
                slow = max(
                    (remapped[d] for d in span if d in remapped),
                    default=1.0,
                )
                if slow > 1.0:
                    spec = specs[position]
                    specs[position] = replace(
                        spec,
                        name=f"{spec.name}~x{slow:.3f}",
                        efficiency=spec.efficiency / slow,
                    )
            planner = replace(planner, node_devices=tuple(specs))
        return _ClusterView(
            effective=effective,
            planner=planner,
            fault_view=fault_view,
            kept_nodes=kept,
        )

    def _model_for(self, planner: ClusterSpec) -> PerfModel:
        """Performance model (and profile DB) per planner view,
        cached by the hardware signature the view actually prices."""
        devices = planner.node_devices or (planner.device,)
        key = (
            planner.num_nodes,
            planner.gpus_per_node,
            tuple(
                (d.name, d.memory_bytes, round(d.efficiency, 9))
                for d in devices
            ),
            round(planner.intra_node.bandwidth, 3),
            round(planner.inter_node.bandwidth, 3),
        )
        model = self._models.get(key)
        if model is None:
            database = SimulatedProfiler(
                planner, seed=self.seed
            ).profile(self.graph)
            model = PerfModel(self.graph, planner, database)
            self._models[key] = model
        return model

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _initial_plan(
        self,
    ) -> Tuple[ParallelConfig, float, List[Tuple[float, ParallelConfig]]]:
        model = self._model_for(self.cluster)
        if self._initial_survivors:
            best_obj, best = min(
                self._initial_survivors, key=lambda pair: pair[0]
            )
            return best, best_obj, list(self._initial_survivors)
        options = AcesoSearchOptions(
            seed=self.seed, top_k=self.policy.top_k
        )
        init = balanced_config(
            self.graph, self.cluster, min(2, self.cluster.num_gpus)
        )
        result = AcesoSearch(
            self.graph, self.cluster, model, options=options
        ).run(
            init,
            SearchBudget(
                max_iterations=self.policy.replan_iterations
            ),
        )
        return (
            result.best_config,
            result.best_objective,
            list(result.top_configs),
        )

    def _warm_candidates(
        self,
        cluster: ClusterSpec,
        survivors: Sequence[Tuple[float, ParallelConfig]],
        current: ParallelConfig,
    ) -> List[ParallelConfig]:
        candidates: List[ParallelConfig] = []
        seen = set()
        pool = sorted(survivors, key=lambda pair: pair[0])
        for _, config in pool + [(0.0, current)]:
            adapted = adapt_config(config, self.graph, cluster)
            if adapted is None:
                continue
            for variant in (adapted, memory_safe_variant(adapted)):
                signature = variant.signature()
                if signature not in seen:
                    seen.add(signature)
                    candidates.append(variant)
        return candidates

    def _replan(
        self,
        view: _ClusterView,
        model: PerfModel,
        survivors: List[Tuple[float, ParallelConfig]],
        current: ParallelConfig,
    ) -> Tuple[ParallelConfig, float, bool, Optional[str], int]:
        """Warm replan with a fallback ladder; never raises.

        Returns ``(config, objective, feasible, fallback_rung,
        estimates_spent)``.  ``fallback_rung`` is ``None`` when the
        warm search itself produced a feasible plan.
        """
        policy = self.policy
        estimates_before = model.num_estimates
        bus = get_bus()
        candidates = self._warm_candidates(
            view.planner, survivors, current
        )
        best_candidate: Optional[ParallelConfig] = None
        best_candidate_obj = float("inf")
        feasible_candidate: Optional[ParallelConfig] = None
        feasible_candidate_obj = float("inf")
        if candidates:
            reports = model.estimate_batch(candidates)
            for candidate, report in zip(candidates, reports):
                objective = model.objective_from_report(report)
                if objective < best_candidate_obj:
                    best_candidate = candidate
                    best_candidate_obj = objective
                if not report.is_oom and (
                    objective < feasible_candidate_obj
                ):
                    feasible_candidate = candidate
                    feasible_candidate_obj = objective

        init = best_candidate or balanced_config(
            self.graph, view.planner, min(2, view.planner.num_gpus)
        )
        deadline = (
            Deadline(policy.deadline_seconds)
            if policy.deadline_seconds is not None
            else None
        )
        try:
            result = AcesoSearch(
                self.graph,
                view.planner,
                model,
                options=AcesoSearchOptions(
                    seed=self.seed, top_k=policy.top_k
                ),
            ).run(
                init,
                SearchBudget(
                    max_iterations=policy.replan_iterations
                ),
                deadline=deadline,
            )
        except Exception as error:  # ladder below, never crash
            if bus.active:
                bus.emit(
                    ELASTIC_FALLBACK,
                    source="elastic",
                    level=WARNING,
                    rung="search_error",
                    error=repr(error),
                )
            result = None

        spent = model.num_estimates - estimates_before
        if result is not None and result.is_feasible:
            survivors[:] = list(result.top_configs)
            return (
                result.best_config,
                result.best_objective,
                True,
                None,
                spent,
            )

        # Fallback ladder: cheapest servable answer wins.
        if feasible_candidate is not None:
            rung = "adapted_survivor"
            chosen, objective = (
                feasible_candidate,
                feasible_candidate_obj,
            )
            feasible = True
        elif result is not None:
            rung = "infeasible_search_best"
            chosen, objective = (
                result.best_config,
                result.best_objective,
            )
            feasible = False
        elif best_candidate is not None:
            rung = "infeasible_adapted"
            chosen, objective = best_candidate, best_candidate_obj
            feasible = False
        else:
            rung = "balanced_restart"
            chosen = balanced_config(
                self.graph, view.planner, min(2, view.planner.num_gpus)
            )
            report = model.estimate(chosen)
            objective = model.objective_from_report(report)
            feasible = not report.is_oom
        if bus.active:
            bus.emit(
                ELASTIC_FALLBACK,
                source="elastic",
                level=WARNING,
                rung=rung,
                feasible=feasible,
            )
        survivors[:] = [(objective, chosen)]
        return chosen, objective, feasible, rung, spent

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _batches(
        self, timeline: ChurnTimeline
    ) -> List[List[ChurnEvent]]:
        """Debounce: events separated by at most the debounce window
        coalesce into one decision (bursts trigger one replan)."""
        batches: List[List[ChurnEvent]] = []
        for event in timeline.events:
            if (
                batches
                and event.time - batches[-1][-1].time
                <= self.policy.debounce_seconds
            ):
                batches[-1].append(event)
            else:
                batches.append([event])
        return batches

    def _measure(
        self, view: _ClusterView, config: ParallelConfig
    ) -> float:
        """Ground-truth throughput of ``config`` under the fault view
        (samples/s; 0.0 when the plan cannot run at all)."""
        if not self.policy.measure:
            return 0.0
        if config.total_devices != view.effective.num_gpus:
            return 0.0
        try:
            result = Executor(
                self.graph, view.effective, seed=self.seed
            ).run(config, view.fault_view)
        except Exception:
            return 0.0
        return result.throughput(self.graph.global_batch_size)

    def run(self, timeline: ChurnTimeline) -> ControllerRun:
        """Replay ``timeline``, returning the full decision record.

        Never raises on churn the cluster can absorb; if every node is
        preempted the controller records a ``halt`` decision (the last
        plan stays adopted, throughput 0) and keeps consuming events so
        a later ``node_join`` resumes service.
        """
        policy = self.policy
        bus = get_bus()
        if bus.active:
            bus.emit(
                ELASTIC_RUN_BEGIN,
                source="elastic",
                level=INFO,
                seed=self.seed,
                num_events=len(timeline.events),
                horizon=timeline.horizon,
            )
        state = _MembershipState()
        current, current_obj, survivors = self._initial_plan()
        initial_signature = current.signature()
        initial_objective = current_obj
        adopted_obj = current_obj  # objective at adoption time
        feasible = True
        last_replan_time = float("-inf")
        last_gpus = self.cluster.num_gpus
        decisions: List[Decision] = []

        for index, batch in enumerate(self._batches(timeline)):
            now = batch[-1].time
            for event in batch:
                state.apply(event)
                if bus.active:
                    # ``kind`` is TelemetryBus.emit's reserved
                    # event-kind parameter; rename the churn kind.
                    payload = event.to_dict()
                    payload["churn_kind"] = payload.pop("kind")
                    bus.emit(
                        ELASTIC_EVENT,
                        source="elastic",
                        level=INFO,
                        **payload,
                    )
            started = _time.monotonic()
            try:
                view = self._project(state)
            except NoSurvivorsError:
                # Every node preempted: nothing servable.  Record the
                # halt and keep going — a later join resumes service.
                decisions.append(Decision(
                    index=index,
                    time=now,
                    events=[e.to_dict() for e in batch],
                    action="halt",
                    reason="no_survivors",
                    cluster_gpus=0,
                    estimated_loss=1.0,
                    objective_before=float("inf"),
                    objective_after=float("inf"),
                    plan_signature=current.signature(),
                    feasible=False,
                    num_estimates=0,
                    throughput=0.0,
                    replan_seconds=_time.monotonic() - started,
                ))
                feasible = False
                if bus.active:
                    bus.emit(
                        ELASTIC_DECISION,
                        source="elastic",
                        level=WARNING,
                        action="halt",
                        reason="no_survivors",
                        time=now,
                    )
                continue

            if view.effective.num_gpus != last_gpus and bus.active:
                bus.emit(
                    ELASTIC_CLUSTER_SHRUNK,
                    source="elastic",
                    level=WARNING,
                    gpus=view.effective.num_gpus,
                    previous=last_gpus,
                )
            last_gpus = view.effective.num_gpus

            model = self._model_for(view.planner)
            estimates_before = model.num_estimates

            # -- decide WHETHER ---------------------------------------
            # Coming out of a halt always replans: the pre-halt plan
            # was adopted for a cluster that no longer exists, even if
            # the rejoined cluster happens to match its shape.
            resuming = not feasible and decisions and (
                decisions[-1].action == "halt"
            )
            forced = resuming or (
                current.total_devices != view.effective.num_gpus
            )
            loss = 0.0
            current_on_new = float("inf")
            if not forced:
                report = model.estimate(current)
                current_on_new = model.objective_from_report(report)
                if report.is_oom or current_on_new == float("inf"):
                    forced = True
                    loss = 1.0
                elif current_on_new > adopted_obj > 0:
                    # objective ~ iteration time; throughput ∝ 1/time
                    loss = 1.0 - adopted_obj / current_on_new

            in_cooldown = (
                now - last_replan_time < policy.cooldown_seconds
            )
            if forced:
                if resuming:
                    reason = "resume"
                elif current.total_devices != view.effective.num_gpus:
                    reason = "shape_mismatch"
                else:
                    reason = "plan_infeasible"
                action = "replan"
            elif loss >= policy.loss_threshold and not in_cooldown:
                action, reason = "replan", "loss_threshold"
            elif loss >= policy.loss_threshold:
                action, reason = "keep", "cooldown"
            else:
                action, reason = "keep", "below_threshold"

            # -- decide HOW -------------------------------------------
            rung: Optional[str] = None
            if action == "replan":
                if bus.active:
                    bus.emit(
                        ELASTIC_REPLAN_BEGIN,
                        source="elastic",
                        level=INFO,
                        reason=reason,
                        time=now,
                        gpus=view.effective.num_gpus,
                    )
                current, current_obj, feasible, rung, _ = (
                    self._replan(view, model, survivors, current)
                )
                adopted_obj = current_obj
                last_replan_time = now
                if rung is not None:
                    action = "fallback"
                if bus.active:
                    bus.emit(
                        ELASTIC_REPLAN_END,
                        source="elastic",
                        level=INFO if feasible else WARNING,
                        objective=current_obj,
                        feasible=feasible,
                        fallback=rung or "",
                    )
            else:
                current_obj = (
                    current_on_new
                    if current_on_new != float("inf")
                    else current_obj
                )

            throughput = self._measure(view, current)
            decisions.append(Decision(
                index=index,
                time=now,
                events=[e.to_dict() for e in batch],
                action=action,
                reason=reason,
                cluster_gpus=view.effective.num_gpus,
                estimated_loss=round(loss, 9),
                objective_before=current_on_new,
                objective_after=current_obj,
                plan_signature=current.signature(),
                feasible=feasible,
                num_estimates=model.num_estimates - estimates_before,
                fallback_rung=rung,
                throughput=round(throughput, 9),
                replan_seconds=_time.monotonic() - started,
            ))
            if bus.active:
                bus.emit(
                    ELASTIC_DECISION,
                    source="elastic",
                    level=INFO,
                    action=action,
                    reason=reason,
                    time=now,
                    objective=current_obj,
                    feasible=feasible,
                    loss=loss,
                )

        if bus.active:
            bus.emit(
                ELASTIC_RUN_END,
                source="elastic",
                level=INFO,
                decisions=len(decisions),
                replans=sum(
                    1
                    for d in decisions
                    if d.action in ("replan", "fallback")
                ),
                final_feasible=feasible,
            )
        return ControllerRun(
            seed=self.seed,
            decisions=decisions,
            initial_signature=initial_signature,
            initial_objective=initial_objective,
            final_config=current,
            final_feasible=feasible,
        )
