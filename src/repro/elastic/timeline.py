"""Seeded churn timelines: typed cluster-membership events over time.

A :class:`ChurnTimeline` is the elastic controller's input: a time-
ordered sequence of membership events — node preemption and rejoin,
straggler onset and recovery, link degradation and repair — plus the
seed every downstream consumer derives determinism from.  Timelines
round-trip through JSON (``save``/``load``) so a run can be replayed
bit-exactly from a file, and :func:`random_churn_timeline` samples
plausible SWARM-style churn from a seed alone.

The timeline is pure data; :mod:`repro.elastic.controller` interprets
it against a cluster.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..faults.plan import LINK_SCOPES

#: Format marker so future layout changes stay loadable.
CHURN_FORMAT_VERSION = 1

#: Event kinds a timeline may contain, with their required payload.
EVENT_KINDS = (
    "node_preempt",    # node_id
    "node_join",       # node_id
    "straggler_on",    # device_id, factor (>= 1)
    "straggler_off",   # device_id
    "link_degrade",    # scope, factor in (0, 1)
    "link_repair",     # scope
)

_NODE_KINDS = frozenset(("node_preempt", "node_join"))
_DEVICE_KINDS = frozenset(("straggler_on", "straggler_off"))
_LINK_KINDS = frozenset(("link_degrade", "link_repair"))


@dataclass(frozen=True)
class ChurnEvent:
    """One typed membership event at a point in virtual time.

    Exactly the payload fields its ``kind`` requires are set; the rest
    stay ``None`` and are omitted from the JSON form.
    """

    time: float
    kind: str
    node_id: Optional[int] = None
    device_id: Optional[int] = None
    factor: Optional[float] = None
    scope: Optional[str] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown churn event kind {self.kind!r}; "
                f"choose from {EVENT_KINDS}"
            )
        if self.kind in _NODE_KINDS:
            if self.node_id is None or self.node_id < 0:
                raise ValueError(
                    f"{self.kind} requires a non-negative node_id"
                )
        if self.kind in _DEVICE_KINDS:
            if self.device_id is None or self.device_id < 0:
                raise ValueError(
                    f"{self.kind} requires a non-negative device_id"
                )
        if self.kind == "straggler_on":
            if self.factor is None or self.factor < 1.0:
                raise ValueError("straggler_on requires factor >= 1.0")
        if self.kind in _LINK_KINDS:
            if self.scope not in LINK_SCOPES:
                raise ValueError(
                    f"{self.kind} requires scope from {LINK_SCOPES}"
                )
        if self.kind == "link_degrade":
            if self.factor is None or not 0.0 < self.factor < 1.0:
                raise ValueError(
                    "link_degrade requires factor in (0, 1)"
                )

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"time": self.time, "kind": self.kind}
        for field in ("node_id", "device_id", "factor", "scope"):
            value = getattr(self, field)
            if value is not None:
                data[field] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChurnEvent":
        unknown = set(data) - {
            "time", "kind", "node_id", "device_id", "factor", "scope"
        }
        if unknown:
            raise ValueError(
                f"unknown churn event fields: {sorted(unknown)}"
            )
        return cls(
            time=float(data["time"]),
            kind=str(data["kind"]),
            node_id=(
                int(data["node_id"]) if "node_id" in data else None
            ),
            device_id=(
                int(data["device_id"]) if "device_id" in data else None
            ),
            factor=(
                float(data["factor"]) if "factor" in data else None
            ),
            scope=str(data["scope"]) if "scope" in data else None,
        )


@dataclass(frozen=True)
class ChurnTimeline:
    """A seeded, time-ordered sequence of churn events.

    The ``(seed, events)`` pair fully determines every downstream
    decision of a deterministic controller run, which is what the
    replay-equivalence tests assert.
    """

    seed: int = 0
    events: Tuple[ChurnEvent, ...] = ()
    #: Cluster size the timeline was sampled against, when known.  A
    #: timeline only *mentions* the nodes it touches; without this the
    #: lint cannot distinguish "every node preempted" from "every node
    #: the timeline happens to mention preempted".
    num_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        times = [event.time for event in self.events]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("churn events must be time-ordered")
        if self.num_nodes is not None and self.num_nodes < 1:
            raise ValueError("num_nodes must be positive when given")

    @property
    def is_empty(self) -> bool:
        return not self.events

    @property
    def horizon(self) -> float:
        """Virtual time of the last event (0.0 when empty)."""
        return self.events[-1].time if self.events else 0.0

    def rng_for(self, key: str) -> np.random.Generator:
        """Seeded generator bound to this timeline and a caller key."""
        return np.random.default_rng(
            (self.seed, zlib.crc32(key.encode("utf-8")))
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "format_version": CHURN_FORMAT_VERSION,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }
        if self.num_nodes is not None:
            data["num_nodes"] = self.num_nodes
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ChurnTimeline":
        version = data.get("format_version")
        if version != CHURN_FORMAT_VERSION:
            raise ValueError(
                f"unsupported churn timeline format version: "
                f"{version!r} (expected {CHURN_FORMAT_VERSION})"
            )
        return cls(
            seed=int(data.get("seed", 0)),
            events=tuple(
                ChurnEvent.from_dict(event)
                for event in data.get("events", [])
            ),
            num_nodes=(
                int(data["num_nodes"])
                if data.get("num_nodes") is not None
                else None
            ),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChurnTimeline":
        return cls.from_dict(json.loads(Path(path).read_text()))


def random_churn_timeline(
    num_nodes: int,
    gpus_per_node: int = 8,
    *,
    seed: int = 0,
    num_events: int = 8,
    horizon_seconds: float = 60.0,
    max_straggler_factor: float = 2.5,
) -> ChurnTimeline:
    """Sample a plausible churn timeline for an elastic cluster.

    Events arrive with exponential gaps over ``horizon_seconds`` and
    stay *state-consistent*: a node rejoin names a currently preempted
    node, a straggler recovery names a current straggler, a link repair
    names a degraded scope — and at least one node stays up at all
    times.  The draw is fully determined by ``seed``.
    """
    if num_nodes < 1 or gpus_per_node < 1:
        raise ValueError("cluster dimensions must be positive")
    if num_events < 0:
        raise ValueError("num_events must be non-negative")
    if horizon_seconds <= 0:
        raise ValueError("horizon_seconds must be positive")
    rng = np.random.default_rng(
        (seed, zlib.crc32(b"elastic.churn_timeline"))
    )
    num_gpus = num_nodes * gpus_per_node

    preempted: set = set()
    stragglers: set = set()
    degraded: set = set()
    #: kind -> relative draw weight when the kind is applicable.
    weights = {
        "node_preempt": 2.0,
        "node_join": 2.0,
        "straggler_on": 1.5,
        "straggler_off": 1.5,
        "link_degrade": 1.0,
        "link_repair": 1.0,
    }

    events = []
    time = 0.0
    for _ in range(num_events):
        time += float(
            rng.exponential(horizon_seconds / max(1, num_events))
        )
        allowed = []
        if len(preempted) < num_nodes - 1:
            allowed.append("node_preempt")
        if preempted:
            allowed.append("node_join")
        if len(stragglers) < num_gpus:
            allowed.append("straggler_on")
        if stragglers:
            allowed.append("straggler_off")
        if len(degraded) < len(LINK_SCOPES):
            allowed.append("link_degrade")
        if degraded:
            allowed.append("link_repair")
        probs = np.array([weights[kind] for kind in allowed])
        kind = str(rng.choice(allowed, p=probs / probs.sum()))

        if kind == "node_preempt":
            up = sorted(set(range(num_nodes)) - preempted)
            node = int(rng.choice(up))
            preempted.add(node)
            events.append(ChurnEvent(time, kind, node_id=node))
        elif kind == "node_join":
            node = int(rng.choice(sorted(preempted)))
            preempted.discard(node)
            events.append(ChurnEvent(time, kind, node_id=node))
        elif kind == "straggler_on":
            healthy = sorted(set(range(num_gpus)) - stragglers)
            device = int(rng.choice(healthy))
            stragglers.add(device)
            factor = float(rng.uniform(1.2, max_straggler_factor))
            events.append(
                ChurnEvent(time, kind, device_id=device, factor=factor)
            )
        elif kind == "straggler_off":
            device = int(rng.choice(sorted(stragglers)))
            stragglers.discard(device)
            events.append(ChurnEvent(time, kind, device_id=device))
        elif kind == "link_degrade":
            scope = str(
                rng.choice(sorted(set(LINK_SCOPES) - degraded))
            )
            degraded.add(scope)
            factor = float(rng.uniform(0.3, 0.9))
            events.append(
                ChurnEvent(time, kind, scope=scope, factor=factor)
            )
        else:  # link_repair
            scope = str(rng.choice(sorted(degraded)))
            degraded.discard(scope)
            events.append(ChurnEvent(time, kind, scope=scope))
    return ChurnTimeline(
        seed=seed, events=tuple(events), num_nodes=num_nodes
    )
