"""Memory timelines: activation residency over the 1F1B schedule.

Eq. 1 charges ``act * (p - i)`` per stage; this module *derives* that
bound by replaying the schedule step by step, exposing the full
occupancy curve (useful for debugging plans and for validating the
in-flight model against the actual task order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..perfmodel.memory import activation_kept_mask
from .schedule import FORWARD, stage_schedule


@dataclass(frozen=True)
class StageMemoryTimeline:
    """Activation bytes held by one stage after each schedule step."""

    stage: int
    steps: List[str]
    held_bytes: List[float]
    static_bytes: float

    @property
    def peak_bytes(self) -> float:
        """Peak total (static + activation) bytes along the timeline."""
        dynamic = max(self.held_bytes) if self.held_bytes else 0.0
        return self.static_bytes + dynamic

    @property
    def peak_step(self) -> int:
        """Index of the first step reaching the activation peak."""
        if not self.held_bytes:
            return 0
        return int(np.argmax(self.held_bytes))


def stage_memory_timeline(
    graph: OpGraph,
    config: ParallelConfig,
    stage_index: int,
) -> StageMemoryTimeline:
    """Replay one stage's 1F1B schedule, tracking activation residency.

    Forward tasks acquire the stage's per-microbatch kept-activation
    bytes; backward tasks release them.  Static bytes (weights +
    optimizer state) are reported separately.
    """
    if not 0 <= stage_index < config.num_stages:
        raise IndexError(f"stage {stage_index} out of range")
    arrays = graph.arrays
    elem = graph.elem_bytes
    tp, dp, _, rc, stage_id = config.gather_arrays()
    etp = np.minimum(tp, arrays.max_tp)
    samples = config.microbatch_size / dp.astype(np.float64)
    kept = activation_kept_mask(rc, stage_id)
    act_per_op = arrays.saved_numel * samples / etp * elem * kept
    stage = config.stages[stage_index]
    sl = slice(stage.start, stage.end)
    act_per_microbatch = float(act_per_op[sl].sum())
    static = float(
        (arrays.params[sl] * elem / etp[sl]).sum()
        + (arrays.params[sl] * graph.optimizer_bytes_per_param / etp[sl]).sum()
    )

    num_microbatches = config.num_microbatches(graph.global_batch_size)
    held = 0.0
    steps = []
    held_bytes = []
    for task in stage_schedule(stage_index, config.num_stages,
                               num_microbatches):
        if task.direction == FORWARD:
            held += act_per_microbatch
        else:
            held -= act_per_microbatch
        steps.append(f"{task.direction}{task.microbatch}")
        held_bytes.append(held)
    return StageMemoryTimeline(
        stage=stage_index,
        steps=steps,
        held_bytes=held_bytes,
        static_bytes=static,
    )


def all_stage_timelines(
    graph: OpGraph, config: ParallelConfig
) -> List[StageMemoryTimeline]:
    """Timelines for every stage of a configuration."""
    return [
        stage_memory_timeline(graph, config, i)
        for i in range(config.num_stages)
    ]
