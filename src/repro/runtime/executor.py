"""Ground-truth configuration executor.

``Executor.run`` is this reproduction's substitute for launching a
training job on the V100 cluster: it derives per-stage task durations
from the *true* cost functions (no profiling fit), perturbs them with
seeded execution noise and a systematic framework overhead, resolves
the 1F1B dependency graph with the discrete-event simulator, and
measures memory with the caching-allocator model.  The performance
model never sees any of this, which is what gives the prediction-
accuracy experiments (Exp#8/9) their meaning.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..cluster.collectives import CollectiveCostModel
from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..perfmodel.memory import activation_kept_mask
from ..telemetry import DEBUG, WARNING, get_bus
from ..telemetry.events import (
    FAULTS_DEVICE_FAILURE,
    FAULTS_STRAGGLER,
    FAULTS_TRANSIENT_OOM,
    RUNTIME_RUN,
    RUNTIME_TASK,
)
from .allocator import replay_transients
from .schedule import max_in_flight
from .simulator import TaskRecord, simulate_pipeline

#: Real runs carry scheduling/launch overheads the analytic model
#: ignores; the paper's model under-predicts slightly for the same
#: reason.
FRAMEWORK_OVERHEAD = 0.03

#: Frameworks reuse and release activation buffers (in-place ops,
#: shared views) that a per-op sum counts twice.  The planner — like
#: the paper's — conservatively sums per-op saved tensors, so actual
#: live activation bytes land below the predicted figure by roughly
#: this factor.
ACTIVATION_SHARING = 0.88


@dataclass(frozen=True)
class ExecutionResult:
    """Measurements from one simulated deployment.

    The fault-related fields default to a healthy run: ``completed``
    flips to False when a :class:`~repro.faults.FaultPlan` device
    failure halts the iteration (``failure_time`` / ``failed_device``
    then say when and where), and ``degraded`` marks measurements taken
    under stragglers, link degradation, or allocator stalls.
    """

    iteration_time: float
    stage_peak_memory: List[float]
    stage_busy: List[float]
    bubble_fraction: float
    oom: bool
    memory_limit: float
    completed: bool = True
    degraded: bool = False
    failure_time: Optional[float] = None
    failed_device: Optional[int] = None
    tasks_completed: int = 0
    tasks_total: int = 0
    #: Per-task timeline (populated when the run recorded a trace);
    #: feed to :func:`repro.telemetry.chrome_trace_from_tasks`.
    tasks: Tuple[TaskRecord, ...] = ()

    @property
    def max_memory(self) -> float:
        return max(self.stage_peak_memory)

    def throughput(self, global_batch_size: int) -> float:
        """Samples per second (0 when the run OOMs or never finishes)."""
        if self.oom or not self.completed or self.iteration_time <= 0:
            return 0.0
        return global_batch_size / self.iteration_time


class Executor:
    """Deploy-and-measure oracle for parallel configurations."""

    def __init__(
        self,
        graph: OpGraph,
        cluster: ClusterSpec,
        *,
        seed: int = 0,
        noise: float = 0.02,
        schedule_style: str = None,
    ) -> None:
        from .schedule import ONE_F_ONE_B, SCHEDULE_STYLES

        if noise < 0:
            raise ValueError("noise must be non-negative")
        style = schedule_style or ONE_F_ONE_B
        if style not in SCHEDULE_STYLES:
            raise ValueError(
                f"unknown schedule style {style!r}; "
                f"choose from {SCHEDULE_STYLES}"
            )
        self.graph = graph
        self.cluster = cluster
        self.seed = seed
        self.noise = noise
        self.schedule_style = style
        self.collectives = CollectiveCostModel(cluster)

    # ------------------------------------------------------------------
    def run(
        self,
        config: ParallelConfig,
        fault_plan=None,
        *,
        record_trace: Optional[bool] = None,
    ) -> ExecutionResult:
        """Execute one training iteration of ``config``.

        ``fault_plan`` (a :class:`repro.faults.FaultPlan`) injects
        deterministic deployment faults: straggler devices slow their
        stage, link degradations stretch every transfer priced on the
        affected link class, transient allocator OOMs stall individual
        tasks, and a device failure halts the iteration mid-flight.

        ``record_trace`` keeps the per-task 1F1B timeline on the
        result (and emits it as ``runtime.task`` telemetry events);
        the default records exactly when the telemetry bus has sinks
        attached, so plain runs pay nothing.
        """
        from ..profiling import cost

        bus = get_bus()
        if record_trace is None:
            record_trace = bus.active
        graph, cluster = self.graph, self.cluster
        plan = fault_plan
        if plan is not None and plan.is_empty:
            plan = None
        collectives = self.collectives
        degraded = False
        if plan is not None:
            from ..faults.inject import degrade_cluster

            faulty_cluster = degrade_cluster(cluster, plan)
            if faulty_cluster is not cluster:
                collectives = CollectiveCostModel(faulty_cluster)
                degraded = True
        elem = graph.elem_bytes
        device = cluster.device
        num_stages = config.num_stages
        num_mb = config.num_microbatches(graph.global_batch_size)
        tp, dp, tp_dim, rc, stage_id = config.gather_arrays()
        arrays = graph.arrays
        etp = np.minimum(tp, arrays.max_tp)
        samples = config.microbatch_size / dp.astype(np.float64)

        fwd_op = np.empty(graph.num_ops)
        bwd_op = np.empty(graph.num_ops)
        for i, op in enumerate(graph.ops):
            fwd_op[i] = cost.op_fwd_time(
                op, device, graph.precision, samples[i], int(tp[i]),
                int(tp_dim[i]),
            )
            bwd_op[i] = cost.op_bwd_time(
                op, device, graph.precision, samples[i], int(tp[i]),
                int(tp_dim[i]),
            )

        # True collective costs for tp groups, resharding, dp sync.
        tp_fwd_comm = np.zeros(graph.num_ops)
        tp_bwd_comm = np.zeros(graph.num_ops)
        for i in range(graph.num_ops):
            if etp[i] <= 1:
                continue
            group = int(etp[i])
            fwd_bytes = arrays.fwd_comm_numel[i, tp_dim[i]] * samples[i] * elem
            bwd_bytes = arrays.bwd_comm_numel[i, tp_dim[i]] * samples[i] * elem
            if fwd_bytes > 0:
                tp_fwd_comm[i] = collectives.allreduce_time(
                    fwd_bytes, group
                )
            if bwd_bytes > 0:
                tp_bwd_comm[i] = collectives.allreduce_time(
                    bwd_bytes, group
                )
        reshard = np.zeros(graph.num_ops)
        for i in range(graph.num_ops - 1):
            if stage_id[i] != stage_id[i + 1]:
                continue
            if tp[i] == tp[i + 1] and dp[i] == dp[i + 1]:
                continue
            group = int(tp[i] * dp[i])
            bytes_moved = arrays.out_numel[i] * samples[i] * elem
            reshard[i] = collectives.allgather_time(bytes_moved, group)

        rc_extra = np.where(rc, fwd_op + tp_fwd_comm, 0.0)

        def per_stage(values: np.ndarray) -> np.ndarray:
            return np.bincount(stage_id, weights=values, minlength=num_stages)

        stage_fwd = per_stage(fwd_op + tp_fwd_comm + reshard)
        stage_bwd = per_stage(bwd_op + tp_bwd_comm + reshard + rc_extra)

        if cluster.is_heterogeneous:
            # A stage's compute runs at the pace of the slowest device
            # it occupies; op costs above were priced on the reference
            # device (the same roofline shared with the profiler).
            hetero_scale = np.array([
                cluster.span_compute_scale(
                    config.stage_first_device(i),
                    stage.num_devices,
                    graph.precision,
                )
                for i, stage in enumerate(config.stages)
            ])
            stage_fwd = stage_fwd * hetero_scale
            stage_bwd = stage_bwd * hetero_scale

        p2p = np.zeros(max(0, num_stages - 1))
        for i in range(num_stages - 1):
            last = config.stages[i].end - 1
            bytes_moved = arrays.out_numel[last] * config.microbatch_size / float(
                dp[last]
            ) * elem
            boundary = config.stage_first_device(i + 1) - 1
            p2p[i] = collectives.p2p_time_between_stages(
                bytes_moved, boundary
            )

        grad_bytes = arrays.params * elem / etp
        dp_sync = np.zeros(num_stages)
        for i, stage in enumerate(config.stages):
            sl = slice(stage.start, stage.end)
            stage_dp = dp[sl]
            for degree in np.unique(stage_dp):
                if degree <= 1:
                    continue
                total = float(grad_bytes[sl][stage_dp == degree].sum())
                dp_sync[i] += collectives.allreduce_time(
                    total, int(degree)
                )

        rng = np.random.default_rng(
            (self.seed, zlib.crc32(config.signature().encode()))
        )
        overhead = 1.0 + FRAMEWORK_OVERHEAD
        fwd_matrix = (
            stage_fwd[:, None]
            * overhead
            * rng.lognormal(0.0, self.noise, size=(num_stages, num_mb))
        )
        bwd_matrix = (
            stage_bwd[:, None]
            * overhead
            * rng.lognormal(0.0, self.noise, size=(num_stages, num_mb))
        )

        halt_at = None
        failed_device = None
        if plan is not None:
            straggle = self._straggler_factors(config, plan)
            if straggle is not None:
                fwd_matrix *= straggle[:, None]
                bwd_matrix *= straggle[:, None]
                degraded = True
                if bus.active:
                    for stage, factor in enumerate(straggle):
                        if factor > 1.0:
                            bus.emit(
                                FAULTS_STRAGGLER,
                                source="faults",
                                level=WARNING,
                                stage=stage,
                                factor=float(factor),
                            )
            oom_hit = self._apply_transient_ooms(
                config, plan, fwd_matrix, bwd_matrix
            )
            degraded |= oom_hit
            if oom_hit and bus.active:
                bus.emit(
                    FAULTS_TRANSIENT_OOM,
                    source="faults",
                    level=WARNING,
                    stages=sorted(
                        {
                            spec.stage
                            for spec in plan.transient_ooms
                            if spec.stage < config.num_stages
                        }
                    ),
                )
            failure = plan.first_failure(config.total_devices)
            if failure is not None:
                halt_at = failure.time
                failed_device = failure.device_id
                if bus.active:
                    bus.emit(
                        FAULTS_DEVICE_FAILURE,
                        source="faults",
                        level=WARNING,
                        device=failure.device_id,
                        time=failure.time,
                    )

        sim = simulate_pipeline(
            fwd_matrix,
            bwd_matrix,
            num_mb,
            p2p_times=p2p,
            dp_sync_times=dp_sync * overhead,
            style=self.schedule_style,
            halt_at=halt_at,
            record_tasks=record_trace,
        )
        if bus.active:
            for task in sim.tasks:
                bus.emit(
                    RUNTIME_TASK,
                    source="runtime",
                    level=DEBUG,
                    stage=task.stage,
                    microbatch=task.microbatch,
                    direction=task.direction,
                    start=task.start,
                    end=task.end,
                )
            bus.emit(
                RUNTIME_RUN,
                source="runtime",
                level=WARNING if sim.halted else DEBUG,
                makespan=sim.makespan,
                num_stages=num_stages,
                num_microbatches=num_mb,
                halted=sim.halted,
                degraded=degraded,
                tasks_completed=sim.tasks_completed,
                tasks_total=sim.tasks_total,
            )

        memory = self._measure_memory(
            config, samples, etp, rc, stage_id, num_mb, rng
        )
        if cluster.is_heterogeneous:
            stage_limits = [
                cluster.span_memory_limit(
                    config.stage_first_device(i), stage.num_devices
                )
                for i, stage in enumerate(config.stages)
            ]
            oom = any(m > lim for m, lim in zip(memory, stage_limits))
            limit = float(min(stage_limits))
        else:
            limit = float(cluster.device.memory_bytes)
            oom = any(m > limit for m in memory)
        return ExecutionResult(
            iteration_time=sim.makespan,
            stage_peak_memory=memory,
            stage_busy=sim.stage_busy,
            bubble_fraction=sim.bubble_fraction,
            oom=oom,
            memory_limit=limit,
            completed=not sim.halted,
            degraded=degraded,
            failure_time=sim.makespan if sim.halted else None,
            failed_device=failed_device if sim.halted else None,
            tasks_completed=sim.tasks_completed,
            tasks_total=sim.tasks_total,
            tasks=sim.tasks,
        )

    # ------------------------------------------------------------------
    def _straggler_factors(self, config: ParallelConfig, plan):
        """Per-stage slowdown: a stage runs at its slowest device."""
        if not plan.stragglers:
            return None
        factors = np.ones(config.num_stages)
        for i, stage in enumerate(config.stages):
            first = config.stage_first_device(i)
            factors[i] = max(
                plan.straggler_factor(device)
                for device in range(first, first + stage.num_devices)
            )
        return factors if factors.max() > 1.0 else None

    def _apply_transient_ooms(
        self,
        config: ParallelConfig,
        plan,
        fwd_matrix: np.ndarray,
        bwd_matrix: np.ndarray,
    ) -> bool:
        """Add seeded allocator-retry stalls in place; True if any hit."""
        if not plan.transient_ooms:
            return False
        oom_rng = plan.rng_for(config.signature())
        hit = False
        for spec in plan.transient_ooms:
            if spec.stage >= config.num_stages:
                continue
            num_mb = fwd_matrix.shape[1]
            fwd_stall = oom_rng.random(num_mb) < spec.probability
            bwd_stall = oom_rng.random(num_mb) < spec.probability
            fwd_matrix[spec.stage] += fwd_stall * spec.stall_seconds
            bwd_matrix[spec.stage] += bwd_stall * spec.stall_seconds
            hit = hit or bool(fwd_stall.any() or bwd_stall.any())
        return hit

    # ------------------------------------------------------------------
    def _measure_memory(
        self,
        config: ParallelConfig,
        samples: np.ndarray,
        etp: np.ndarray,
        rc: np.ndarray,
        stage_id: np.ndarray,
        num_mb: int,
        rng: np.random.Generator,
    ) -> List[float]:
        graph = self.graph
        arrays = graph.arrays
        elem = graph.elem_bytes
        num_stages = config.num_stages
        kept = activation_kept_mask(rc, stage_id)
        act = arrays.saved_numel * samples / etp * elem * kept
        weights = arrays.params * elem / etp
        optimizer = arrays.params * float(graph.optimizer_bytes_per_param) / etp
        transient = (arrays.saved_numel + arrays.out_numel) * samples / etp * elem

        peaks = []
        for i, stage in enumerate(config.stages):
            sl = slice(stage.start, stage.end)
            in_flight = max_in_flight(
                i, num_stages, num_mb, self.schedule_style
            )
            reserved = replay_transients(transient[sl])
            frag = 1.0 + abs(rng.normal(0.0, 0.05))
            sharing = ACTIVATION_SHARING * rng.lognormal(0.0, 0.02)
            peak = (
                float(weights[sl].sum())
                + float(optimizer[sl].sum())
                + float(act[sl].sum()) * in_flight * sharing
                + reserved * frag
            )
            peaks.append(peak)
        return peaks
