"""Ground-truth runtime: 1F1B schedule, event simulator, executor."""

from .allocator import BLOCK_BYTES, CachingAllocator, replay_transients
from .memory_trace import (
    StageMemoryTimeline,
    all_stage_timelines,
    stage_memory_timeline,
)
from .executor import FRAMEWORK_OVERHEAD, ExecutionResult, Executor
from .schedule import (
    BACKWARD,
    FORWARD,
    GPIPE,
    ONE_F_ONE_B,
    SCHEDULE_STYLES,
    Task,
    full_schedule,
    max_in_flight,
    stage_schedule,
)
from .simulator import SimulationResult, TaskRecord, simulate_pipeline

__all__ = [
    "BACKWARD",
    "StageMemoryTimeline",
    "all_stage_timelines",
    "stage_memory_timeline",
    "BLOCK_BYTES",
    "CachingAllocator",
    "ExecutionResult",
    "Executor",
    "FORWARD",
    "GPIPE",
    "ONE_F_ONE_B",
    "SCHEDULE_STYLES",
    "FRAMEWORK_OVERHEAD",
    "SimulationResult",
    "Task",
    "TaskRecord",
    "full_schedule",
    "max_in_flight",
    "replay_transients",
    "simulate_pipeline",
    "stage_schedule",
]
