"""PyTorch-style caching-allocator model.

The paper observes that the dominant source of "extra" memory beyond
Eq. 1 is the framework's caching allocator: freed blocks are retained
for reuse, so the *reserved* pool exceeds the live bytes.  This module
simulates that behaviour: allocations round up to a block granularity,
frees return blocks to a size-bucketed cache, and a new allocation only
grows the pool when no cached block is large enough.  The executor
replays one steady-state microbatch's transient allocations through it
to obtain the ground-truth reserved overhead.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

#: PyTorch's large-block granularity.
BLOCK_BYTES = 2 * 1024 * 1024
#: A cached block only satisfies a request within this size ratio
#: (mirrors the allocator's split/waste behaviour: a tiny request will
#: not consume a huge cached block without splitting loss).
REUSE_RATIO = 4.0


class CachingAllocator:
    """Minimal reserved-pool simulation.

    Tracks ``reserved_bytes`` (the high-water pool size the framework
    holds from the device) and ``live_bytes`` (currently allocated).
    """

    def __init__(
        self,
        *,
        block_bytes: int = BLOCK_BYTES,
        reuse_ratio: float = REUSE_RATIO,
    ) -> None:
        if block_bytes < 1:
            raise ValueError("block_bytes must be positive")
        if reuse_ratio < 1.0:
            raise ValueError("reuse_ratio must be >= 1")
        self.block_bytes = block_bytes
        self.reuse_ratio = reuse_ratio
        self.reserved_bytes = 0
        self.live_bytes = 0
        self._free_blocks: List[int] = []  # cached block sizes
        self._handles: Dict[int, int] = {}  # handle -> block size
        self._next_handle = 0

    def _rounded(self, num_bytes: float) -> int:
        blocks = max(1, -(-int(num_bytes) // self.block_bytes))
        return blocks * self.block_bytes

    def malloc(self, num_bytes: float) -> int:
        """Allocate; returns a handle for :meth:`free`."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        size = self._rounded(num_bytes)
        best = None
        for i, block in enumerate(self._free_blocks):
            if size <= block <= size * self.reuse_ratio:
                if best is None or block < self._free_blocks[best]:
                    best = i
        if best is not None:
            size = self._free_blocks.pop(best)
        else:
            self.reserved_bytes += size
        self.live_bytes += size
        handle = self._next_handle
        self._next_handle += 1
        self._handles[handle] = size
        return handle

    def free(self, handle: int) -> None:
        """Release an allocation back to the block cache."""
        try:
            size = self._handles.pop(handle)
        except KeyError:
            raise KeyError(f"unknown or double-freed handle {handle}") from None
        self.live_bytes -= size
        self._free_blocks.append(size)


def replay_transients(sizes: Iterable[float]) -> int:
    """Reserved bytes after a malloc/free replay of op transients.

    Models one steady-state microbatch: each op allocates its transient
    workspace, the *previous* op's transient is freed one step later
    (outputs stay alive as the next op's input).
    """
    allocator = CachingAllocator()
    previous = None
    for size in sizes:
        handle = allocator.malloc(size)
        if previous is not None:
            allocator.free(previous)
        previous = handle
    return allocator.reserved_bytes
