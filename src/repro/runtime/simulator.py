"""Discrete-event simulation of a 1F1B pipeline.

Plays the role of *real execution* in this reproduction: given
per-stage, per-microbatch task durations and inter-stage transfer
times, it resolves the actual dependency graph of the 1F1B schedule —
including bubbles the analytic Eq. 2 only approximates — and returns
the makespan plus per-stage busy times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .schedule import FORWARD, ONE_F_ONE_B, full_schedule


@dataclass(frozen=True)
class TaskRecord:
    """One executed pipeline task: where, what, and when.

    The raw material of the Chrome-trace export
    (:func:`repro.telemetry.chrome_trace_from_tasks`): ``stage`` is the
    device track, ``direction`` is ``"fwd"`` or ``"bwd"``, and
    ``start``/``end`` are simulator seconds.
    """

    stage: int
    microbatch: int
    direction: str
    start: float
    end: float


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated training iteration.

    ``halted`` marks a run cut short by a fault (``halt_at``); then
    ``makespan`` is the halt time and ``tasks_completed`` counts the
    pipeline tasks that finished before the cut.  ``tasks`` holds the
    per-task timeline when the simulation ran with
    ``record_tasks=True`` (empty otherwise).
    """

    makespan: float
    stage_finish: List[float]
    stage_busy: List[float]
    halted: bool = False
    tasks_completed: int = 0
    tasks_total: int = 0
    tasks: Tuple[TaskRecord, ...] = ()

    @property
    def num_stages(self) -> int:
        return len(self.stage_finish)

    @property
    def bubble_fraction(self) -> float:
        """Average fraction of the makespan stages spent idle."""
        if self.makespan <= 0:
            return 0.0
        idle = sum(self.makespan - busy for busy in self.stage_busy)
        return idle / (self.makespan * self.num_stages)


def _as_matrix(values, num_stages: int, num_microbatches: int) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 1:
        if arr.shape != (num_stages,):
            raise ValueError(
                f"expected {num_stages} per-stage durations, got {arr.shape}"
            )
        return np.repeat(arr[:, None], num_microbatches, axis=1)
    if arr.shape != (num_stages, num_microbatches):
        raise ValueError(
            f"expected shape ({num_stages}, {num_microbatches}), "
            f"got {arr.shape}"
        )
    return arr


def simulate_pipeline(
    fwd_times,
    bwd_times,
    num_microbatches: int,
    *,
    p2p_times: Optional[Sequence[float]] = None,
    dp_sync_times: Optional[Sequence[float]] = None,
    style: str = ONE_F_ONE_B,
    halt_at: Optional[float] = None,
    record_tasks: bool = False,
) -> SimulationResult:
    """Execute a pipeline schedule's dependency graph.

    Args:
        fwd_times / bwd_times: per-stage scalars or ``(stages,
            microbatches)`` matrices of task durations.
        num_microbatches: microbatches per iteration.
        p2p_times: transfer time between stage ``i`` and ``i+1``
            (length ``stages - 1``); applied to both activation sends
            and gradient sends across that boundary.
        dp_sync_times: per-stage gradient all-reduce appended after the
            stage's last backward.
        style: schedule style (``"1f1b"`` or ``"gpipe"``).
        halt_at: simulated time at which the cluster faults; no task may
            *start* at or past this instant.  Tasks blocked behind a
            halted stage never run either, so a single device failure
            stalls the whole pipeline the way a real NCCL job does.
        record_tasks: keep a :class:`TaskRecord` per executed task so
            the run can be exported as a Chrome trace timeline.
    """
    if halt_at is not None and halt_at < 0:
        raise ValueError("halt_at must be non-negative")
    fwd = np.atleast_1d(np.asarray(fwd_times, dtype=np.float64))
    num_stages = fwd.shape[0]
    fwd = _as_matrix(fwd_times, num_stages, num_microbatches)
    bwd = _as_matrix(bwd_times, num_stages, num_microbatches)
    if p2p_times is None:
        p2p = np.zeros(max(0, num_stages - 1))
    else:
        p2p = np.asarray(p2p_times, dtype=np.float64)
        if p2p.shape != (num_stages - 1,):
            raise ValueError(
                f"expected {num_stages - 1} p2p times, got {p2p.shape}"
            )

    schedules = full_schedule(num_stages, num_microbatches, style)
    pointers = [0] * num_stages
    clocks = [0.0] * num_stages
    busy = [0.0] * num_stages
    unset = -1.0
    f_end = np.full((num_stages, num_microbatches), unset)
    b_end = np.full((num_stages, num_microbatches), unset)

    tasks_total = sum(len(s) for s in schedules)
    remaining = tasks_total
    halted = False
    records: List[TaskRecord] = []
    while remaining:
        progressed = False
        for stage in range(num_stages):
            while pointers[stage] < len(schedules[stage]):
                task = schedules[stage][pointers[stage]]
                m = task.microbatch
                if task.direction == FORWARD:
                    if stage > 0:
                        dep = f_end[stage - 1, m]
                        if dep < 0:
                            break
                        ready = dep + p2p[stage - 1]
                    else:
                        ready = 0.0
                    duration = fwd[stage, m]
                else:
                    if stage < num_stages - 1:
                        dep = b_end[stage + 1, m]
                        if dep < 0:
                            break
                        ready = dep + p2p[stage]
                    else:
                        ready = 0.0
                    duration = bwd[stage, m]
                start = max(clocks[stage], ready)
                if halt_at is not None and (
                    start >= halt_at or start + duration > halt_at
                ):
                    # The task would still be in flight at the fault:
                    # its work is lost with the failed device.
                    halted = True
                    break
                end = start + duration
                clocks[stage] = end
                busy[stage] += duration
                if task.direction == FORWARD:
                    f_end[stage, m] = end
                else:
                    b_end[stage, m] = end
                if record_tasks:
                    records.append(TaskRecord(
                        stage=stage,
                        microbatch=m,
                        direction=(
                            "fwd" if task.direction == FORWARD else "bwd"
                        ),
                        start=float(start),
                        end=float(end),
                    ))
                pointers[stage] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            if halted:
                # A halted stage starves its neighbours; everything
                # still pending at this point is lost to the fault.
                break
            raise RuntimeError("pipeline simulation deadlocked")

    if halted:
        # The job stops at the fault: the clock freezes at the halt
        # time; completed work (clocks/busy) all predates it.
        return SimulationResult(
            makespan=float(halt_at),
            stage_finish=[float(c) for c in clocks],
            stage_busy=[float(b) for b in busy],
            halted=True,
            tasks_completed=tasks_total - remaining,
            tasks_total=tasks_total,
            tasks=tuple(records),
        )

    if dp_sync_times is not None:
        sync = np.asarray(dp_sync_times, dtype=np.float64)
        if sync.shape != (num_stages,):
            raise ValueError("dp_sync_times must have one entry per stage")
        for stage in range(num_stages):
            clocks[stage] += sync[stage]
            busy[stage] += sync[stage]

    return SimulationResult(
        makespan=float(max(clocks)),
        stage_finish=[float(c) for c in clocks],
        stage_busy=[float(b) for b in busy],
        halted=False,
        tasks_completed=tasks_total,
        tasks_total=tasks_total,
        tasks=tuple(records),
    )
