"""1F1B pipeline schedule generation.

The runtime executes the one-forward-one-backward schedule of
PipeDream-Flush/Megatron-LM: stage ``i`` of ``p`` warms up with
``p - i - 1`` forwards, then alternates forward/backward in the steady
state, then drains the remaining backwards.  The same schedule underlies
the performance model's Eq. 1 (in-flight microbatch counts) and Eq. 2
(warmup/steady/cooldown), so the simulator and the model agree on
structure and differ only in fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

FORWARD = "F"
BACKWARD = "B"

#: Supported pipeline schedule styles.  Aceso plans for 1F1B (the
#: paper's setting, Eq. 1/2); GPipe is provided as the classic
#: comparison point — all forwards, then all backwards, holding every
#: microbatch's activations at once.
ONE_F_ONE_B = "1f1b"
GPIPE = "gpipe"
SCHEDULE_STYLES = (ONE_F_ONE_B, GPIPE)


@dataclass(frozen=True)
class Task:
    """One unit of pipeline work: a microbatch pass through a stage."""

    stage: int
    microbatch: int
    direction: str  # FORWARD or BACKWARD

    def __post_init__(self) -> None:
        if self.direction not in (FORWARD, BACKWARD):
            raise ValueError(f"bad direction {self.direction!r}")


def stage_schedule(
    stage: int,
    num_stages: int,
    num_microbatches: int,
    style: str = ONE_F_ONE_B,
) -> List[Task]:
    """The task order executed by one stage under ``style``.

    >>> [f"{t.direction}{t.microbatch}" for t in stage_schedule(0, 2, 3)]
    ['F0', 'F1', 'B0', 'F2', 'B1', 'B2']
    >>> [f"{t.direction}{t.microbatch}"
    ...  for t in stage_schedule(0, 2, 2, style="gpipe")]
    ['F0', 'F1', 'B1', 'B0']
    """
    if not 0 <= stage < num_stages:
        raise ValueError(f"stage {stage} out of range [0, {num_stages})")
    if num_microbatches < 1:
        raise ValueError("num_microbatches must be positive")
    if style == ONE_F_ONE_B:
        warmup = min(num_stages - stage - 1, num_microbatches)
        tasks = [Task(stage, m, FORWARD) for m in range(warmup)]
        steady = num_microbatches - warmup
        for m in range(steady):
            tasks.append(Task(stage, warmup + m, FORWARD))
            tasks.append(Task(stage, m, BACKWARD))
        for m in range(steady, num_microbatches):
            tasks.append(Task(stage, m, BACKWARD))
        return tasks
    if style == GPIPE:
        tasks = [Task(stage, m, FORWARD) for m in range(num_microbatches)]
        tasks += [
            Task(stage, m, BACKWARD)
            for m in reversed(range(num_microbatches))
        ]
        return tasks
    raise ValueError(
        f"unknown schedule style {style!r}; choose from {SCHEDULE_STYLES}"
    )


def full_schedule(
    num_stages: int,
    num_microbatches: int,
    style: str = ONE_F_ONE_B,
) -> List[List[Task]]:
    """Per-stage schedules for the whole pipeline."""
    return [
        stage_schedule(stage, num_stages, num_microbatches, style)
        for stage in range(num_stages)
    ]


def max_in_flight(
    stage: int,
    num_stages: int,
    num_microbatches: int,
    style: str = ONE_F_ONE_B,
) -> int:
    """Peak microbatches whose activations stage ``stage`` holds.

    Derived by replaying the schedule; under 1F1B it equals
    ``min(p - i, N)`` — the quantity Eq. 1 multiplies the
    per-microbatch activation size by.  Under GPipe it is ``N``.
    """
    held = 0
    peak = 0
    for task in stage_schedule(stage, num_stages, num_microbatches, style):
        if task.direction == FORWARD:
            held += 1
            peak = max(peak, held)
        else:
            held -= 1
    return peak
