"""repro — a full reproduction of *Aceso: Efficient Parallel DNN
Training through Iterative Bottleneck Alleviation* (EuroSys 2024).

Quickstart::

    from repro import build_model, paper_cluster, build_perf_model
    from repro import search_all_stage_counts, Executor

    graph = build_model("gpt3-1.3b")
    cluster = paper_cluster(4)
    perf_model = build_perf_model(graph, cluster)
    search = search_all_stage_counts(
        graph, cluster, perf_model,
        budget_per_count={"max_iterations": 25},
    )
    best = search.best.best_config
    measured = Executor(graph, cluster).run(best)
    print(best.describe(), measured.iteration_time)

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.ir` — model IR + GPT-3 / T5 / Wide-ResNet builders
- :mod:`repro.cluster` — device/topology/collective hardware model
- :mod:`repro.profiling` — profile database + simulated profiler
- :mod:`repro.parallel` — configuration representation + validation
- :mod:`repro.perfmodel` — the §3.3 performance model
- :mod:`repro.core` — the Aceso search (primitives, heuristics,
  multi-hop, fine-tuning)
- :mod:`repro.baselines` — Megatron-LM grid / Alpa-style / DP / random
- :mod:`repro.runtime` — ground-truth 1F1B executor
- :mod:`repro.numrt` — numpy training runtime (semantics checks)
- :mod:`repro.faults` — deterministic fault injection + elastic replan
- :mod:`repro.analysis` — metrics + cross-system comparison
"""

from .analysis import ComparisonResult, compare_systems, tflops_per_gpu
from .cluster import ClusterSpec, DeviceSpec, paper_cluster, single_node
from .core import (
    AcesoSearch,
    AcesoSearchOptions,
    SearchBudget,
    SearchFailedError,
    SearchResult,
    search_all_stage_counts,
)
from .faults import FaultPlan, elastic_replan, random_fault_plan, shrink_cluster
from .ir import OpGraph, OpSpec
from .ir.models import available_models, build_model
from .parallel import (
    ConfigError,
    ParallelConfig,
    StageConfig,
    balanced_config,
    validate_config,
)
from .perfmodel import PerfModel, PerfReport, build_perf_model
from .profiling import ProfileDatabase, SimulatedProfiler
from .runtime import ExecutionResult, Executor

__version__ = "1.0.0"

__all__ = [
    "AcesoSearch",
    "AcesoSearchOptions",
    "ClusterSpec",
    "ComparisonResult",
    "ConfigError",
    "DeviceSpec",
    "ExecutionResult",
    "Executor",
    "FaultPlan",
    "OpGraph",
    "OpSpec",
    "ParallelConfig",
    "PerfModel",
    "PerfReport",
    "ProfileDatabase",
    "SearchBudget",
    "SearchFailedError",
    "SearchResult",
    "SimulatedProfiler",
    "StageConfig",
    "available_models",
    "balanced_config",
    "build_model",
    "build_perf_model",
    "compare_systems",
    "elastic_replan",
    "paper_cluster",
    "random_fault_plan",
    "search_all_stage_counts",
    "shrink_cluster",
    "single_node",
    "tflops_per_gpu",
    "validate_config",
]
