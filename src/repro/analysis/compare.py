"""End-to-end system comparison: the Exp#1/2 workhorse.

``compare_systems`` runs all three planners (Megatron grid, Alpa-style
solver, Aceso) on one (model, cluster) setting, deploys each winner on
the ground-truth executor, and reports throughput, TFLOPS, and search
cost — one column group of Figure 7/8 per call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..baselines.alpa import AlpaCompilationError, AlpaOptions, alpa_search
from ..baselines.megatron import megatron_grid_search
from ..cluster.topology import ClusterSpec, paper_cluster
from ..core.search import AcesoSearchOptions, search_all_stage_counts
from ..ir.graph import OpGraph
from ..ir.models.registry import build_model
from ..parallel.config import ParallelConfig
from ..perfmodel.model import PerfModel, build_perf_model
from ..profiling.database import ProfileDatabase
from ..runtime.executor import Executor
from .metrics import tflops_per_gpu


@dataclass
class SystemOutcome:
    """One system's result on one setting."""

    name: str
    config: Optional[ParallelConfig]
    predicted_time: float
    actual_time: float
    throughput: float
    tflops: float
    search_seconds: float
    oom: bool
    failed: bool = False
    failure_reason: str = ""


@dataclass
class ComparisonResult:
    """All systems on one (model, cluster) setting."""

    model_name: str
    num_gpus: int
    outcomes: Dict[str, SystemOutcome] = field(default_factory=dict)

    def throughput(self, system: str) -> float:
        return self.outcomes[system].throughput

    def speedup(self, system: str, baseline: str) -> float:
        base = self.outcomes[baseline].throughput
        if base <= 0:
            return float("inf")
        return self.outcomes[system].throughput / base


def evaluate_config(
    name: str,
    config: Optional[ParallelConfig],
    graph: OpGraph,
    perf_model: PerfModel,
    executor: Executor,
    search_seconds: float,
    num_gpus: int,
) -> SystemOutcome:
    """Deploy one system's chosen config on the executor."""
    if config is None:
        return SystemOutcome(
            name=name,
            config=None,
            predicted_time=float("inf"),
            actual_time=float("inf"),
            throughput=0.0,
            tflops=0.0,
            search_seconds=search_seconds,
            oom=True,
            failed=True,
            failure_reason="no feasible configuration found",
        )
    report = perf_model.estimate(config)
    run = executor.run(config)
    throughput = run.throughput(graph.global_batch_size)
    return SystemOutcome(
        name=name,
        config=config,
        predicted_time=report.iteration_time,
        actual_time=run.iteration_time,
        throughput=throughput,
        tflops=tflops_per_gpu(graph, throughput, num_gpus),
        search_seconds=search_seconds,
        oom=run.oom,
    )


def compare_systems(
    model_name: str,
    num_gpus: int,
    *,
    cluster: Optional[ClusterSpec] = None,
    database: Optional[ProfileDatabase] = None,
    aceso_iterations: int = 30,
    aceso_options: Optional[AcesoSearchOptions] = None,
    alpa_options: Optional[AlpaOptions] = None,
    pick_top_k: int = 5,
    seed: int = 0,
    systems: Optional[List[str]] = None,
) -> ComparisonResult:
    """Run Megatron-LM, Alpa, and Aceso on one setting.

    Aceso's top-``pick_top_k`` candidates are re-evaluated on the
    executor and the fastest kept — the paper's §5.1 protocol for
    absorbing performance-model error.
    """
    graph = build_model(model_name)
    cluster = cluster or paper_cluster(num_gpus)
    perf_model = build_perf_model(
        graph, cluster, database=database, seed=seed
    )
    executor = Executor(graph, cluster, seed=seed)
    wanted = systems or ["megatron", "alpa", "aceso"]
    result = ComparisonResult(model_name=model_name, num_gpus=num_gpus)

    if "megatron" in wanted:
        grid = megatron_grid_search(graph, cluster, perf_model)
        result.outcomes["megatron"] = evaluate_config(
            "megatron", grid.best_config, graph, perf_model, executor,
            search_seconds=0.0, num_gpus=num_gpus,
        )

    if "alpa" in wanted:
        try:
            alpa = alpa_search(
                graph, cluster, perf_model, options=alpa_options
            )
            result.outcomes["alpa"] = evaluate_config(
                "alpa", alpa.best_config, graph, perf_model, executor,
                search_seconds=alpa.simulated_search_seconds,
                num_gpus=num_gpus,
            )
        except AlpaCompilationError as error:
            result.outcomes["alpa"] = SystemOutcome(
                name="alpa",
                config=None,
                predicted_time=float("inf"),
                actual_time=float("inf"),
                throughput=0.0,
                tflops=0.0,
                search_seconds=float("inf"),
                oom=False,
                failed=True,
                failure_reason=str(error),
            )

    if "aceso" in wanted:
        multi = search_all_stage_counts(
            graph,
            cluster,
            perf_model,
            options=aceso_options,
            budget_per_count={"max_iterations": aceso_iterations},
        )
        best_config = None
        best_time = float("inf")
        for _, candidate in multi.top_configs(pick_top_k):
            run = executor.run(candidate)
            if not run.oom and run.iteration_time < best_time:
                best_time = run.iteration_time
                best_config = candidate
        if best_config is None:
            best_config = multi.best.best_config
        result.outcomes["aceso"] = evaluate_config(
            "aceso", best_config, graph, perf_model, executor,
            search_seconds=multi.parallel_seconds, num_gpus=num_gpus,
        )
    return result
