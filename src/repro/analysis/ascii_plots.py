"""Terminal plotting for the figure-regeneration benches.

The paper's figures are line/bar charts; the bench harness regenerates
their *data* and renders it as ASCII so a text log carries the whole
picture.  No external plotting dependency, deterministic output.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def ascii_line_plot(
    series: Dict[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 12,
    title: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more y-series (shared implicit x) as ASCII art.

    Series are drawn with distinct markers in legend order; the y-axis
    is annotated with min/max.  Intended for convergence curves.
    """
    if not series:
        raise ValueError("need at least one series")
    markers = "*o+x#@%&"
    all_values = [v for ys in series.values() for v in ys if v is not None]
    if not all_values:
        raise ValueError("series contain no values")
    lo, hi = min(all_values), max(all_values)
    span = hi - lo or 1.0
    longest = max(len(ys) for ys in series.values())
    if longest < 2:
        raise ValueError("series need at least two points")

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for i, value in enumerate(ys):
            if value is None:
                continue
            x = round(i * (width - 1) / (longest - 1))
            y = round((value - lo) / span * (height - 1))
            grid[height - 1 - y][x] = marker

    lines = []
    if title:
        lines.append(title)
    label_width = max(len(f"{hi:.3g}"), len(f"{lo:.3g}"), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{hi:.3g}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{lo:.3g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * label_width + "   " + legend)
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal bar chart (for Figure 7-style grouped throughput)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("need at least one bar")
    peak = max(values)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(value / peak * width))
        lines.append(
            f"{str(label).rjust(label_width)} |{bar} {fmt.format(value)}"
        )
    return "\n".join(lines)


def downsample(xs: Sequence[float], ys: Sequence[float], points: int):
    """Thin a long curve to ~``points`` entries, keeping endpoints."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    if points < 2:
        raise ValueError("points must be >= 2")
    if len(xs) <= points:
        return list(xs), list(ys)
    step = (len(xs) - 1) / (points - 1)
    indices = sorted({round(i * step) for i in range(points)})
    return [xs[i] for i in indices], [ys[i] for i in indices]
