"""Throughput and accuracy metrics used by the evaluation harness."""

from __future__ import annotations

from typing import List, Sequence

from ..ir.graph import OpGraph


def tflops_per_gpu(
    graph: OpGraph, throughput: float, num_gpus: int
) -> float:
    """Effective TFLOPS per GPU (the paper's Appendix A metric).

    Uses the model's forward+backward FLOPs — recomputation FLOPs are
    *excluded* ("effective TFLOPS"), exactly as the paper computes it.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be positive")
    if throughput < 0:
        raise ValueError("throughput must be non-negative")
    return (
        graph.total_train_flops_per_sample * throughput / num_gpus / 1e12
    )


def speedup(candidate: float, baseline: float) -> float:
    """``candidate / baseline`` with zero-baseline protection."""
    if baseline <= 0:
        return float("inf") if candidate > 0 else 1.0
    return candidate / baseline


def normalize(values: Sequence[float]) -> List[float]:
    """Scale a series so its maximum is 1.0 (Fig. 7's normalization)."""
    peak = max(values)
    if peak <= 0:
        return [0.0 for _ in values]
    return [v / peak for v in values]


def mean_abs_pct_error(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Average |predicted - actual| / actual, in percent."""
    if len(predicted) != len(actual):
        raise ValueError("series length mismatch")
    if not predicted:
        raise ValueError("empty series")
    total = 0.0
    for p, a in zip(predicted, actual):
        if a == 0:
            raise ValueError("actual value of zero")
        total += abs(p - a) / abs(a)
    return 100.0 * total / len(predicted)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (for aggregating speedups)."""
    if not values:
        raise ValueError("empty series")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= v
    return product ** (1.0 / len(values))
