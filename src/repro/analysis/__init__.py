"""Evaluation metrics and cross-system comparison harness."""

from .ascii_plots import ascii_bar_chart, ascii_line_plot, downsample
from .compare import (
    ComparisonResult,
    SystemOutcome,
    compare_systems,
    evaluate_config,
)
from .metrics import (
    geometric_mean,
    mean_abs_pct_error,
    normalize,
    speedup,
    tflops_per_gpu,
)

__all__ = [
    "ComparisonResult",
    "ascii_bar_chart",
    "ascii_line_plot",
    "downsample",
    "SystemOutcome",
    "compare_systems",
    "evaluate_config",
    "geometric_mean",
    "mean_abs_pct_error",
    "normalize",
    "speedup",
    "tflops_per_gpu",
]
