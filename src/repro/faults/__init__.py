"""Fault layer: deterministic injection, degraded execution, re-planning.

``FaultPlan`` describes deployment faults (device failure, stragglers,
link degradation, transient allocator OOM); the runtime executor
consumes it to produce degraded ground-truth measurements; and
``elastic_replan`` quantifies the paper's "cheap search enables fast
reconfiguration" argument by warm-starting a new search from the
surviving top-k plans after device loss.
"""

from .inject import (
    NoSurvivorsError,
    adapt_config,
    degrade_cluster,
    memory_safe_variant,
    shrink_cluster,
    shrink_cluster_checked,
)
from .plan import (
    FAULT_FORMAT_VERSION,
    LINK_SCOPES,
    DeviceFailure,
    FaultPlan,
    LinkDegradation,
    StragglerSlowdown,
    TransientOOM,
    random_fault_plan,
)
from .replan import ReplanComparison, ReplanOutcome, elastic_replan

__all__ = [
    "FAULT_FORMAT_VERSION",
    "LINK_SCOPES",
    "DeviceFailure",
    "FaultPlan",
    "LinkDegradation",
    "NoSurvivorsError",
    "ReplanComparison",
    "ReplanOutcome",
    "StragglerSlowdown",
    "TransientOOM",
    "adapt_config",
    "degrade_cluster",
    "elastic_replan",
    "memory_safe_variant",
    "random_fault_plan",
    "shrink_cluster",
    "shrink_cluster_checked",
]
