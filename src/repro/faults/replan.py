"""Elastic re-planning after device loss (the paper's §1 motivation).

Aceso argues that a cheap search enables *re*-search whenever cluster
resources change.  This module runs that experiment end-to-end: given
the top-k configurations found on the old cluster and the shrunken
surviving cluster, it

* **warm-starts** one search from the adapted survivors
  (:func:`repro.faults.inject.adapt_config`), versus
* **cold-restarts** the full per-stage-count driver from balanced
  initial configurations,

and reports, for each strategy, the estimates spent until the first
feasible configuration, the total estimates, the wall-clock
time-to-new-plan, and the objective reached — the numbers quoted in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..cluster.topology import ClusterSpec
from ..core.budget import SearchBudget
from ..core.search import (
    AcesoSearch,
    AcesoSearchOptions,
    default_stage_counts,
    search_all_stage_counts,
)
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..parallel.initializer import balanced_config
from ..perfmodel.model import PerfModel
from ..profiling.profiler import SimulatedProfiler
from .inject import adapt_config, memory_safe_variant


@dataclass
class ReplanOutcome:
    """One re-planning strategy's cost and result."""

    strategy: str  # "warm" or "cold"
    best_config: ParallelConfig
    best_objective: float
    feasible: bool
    num_estimates: int
    estimates_to_feasible: Optional[int]
    wall_seconds: float


@dataclass
class ReplanComparison:
    """Warm-start vs. cold-restart on the surviving cluster."""

    warm: ReplanOutcome
    cold: ReplanOutcome

    @property
    def estimate_savings(self) -> float:
        """Fraction of cold-restart estimates the warm start avoided."""
        if self.cold.num_estimates <= 0:
            return 0.0
        return 1.0 - self.warm.num_estimates / self.cold.num_estimates


def _warm_replan(
    graph: OpGraph,
    cluster: ClusterSpec,
    survivors: Sequence[Tuple[float, ParallelConfig]],
    perf_model: PerfModel,
    options: Optional[AcesoSearchOptions],
    budget_kwargs: dict,
) -> ReplanOutcome:
    started = time.monotonic()
    adapted: List[ParallelConfig] = []
    seen = set()
    # Prior objective order: the old cluster's best plans first.  Each
    # adapted survivor is chased by its full-recompute variant — the
    # plain adaptation keeps the prior plan's speed but often overshoots
    # the smaller cluster's memory, while the safe variant is nearly
    # always feasible immediately.
    for _, config in sorted(survivors, key=lambda pair: pair[0]):
        candidate = adapt_config(config, graph, cluster)
        if candidate is None:
            continue
        for variant in (candidate, memory_safe_variant(candidate)):
            signature = variant.signature()
            if signature not in seen:
                seen.add(signature)
                adapted.append(variant)

    init: Optional[ParallelConfig] = None
    init_objective = float("inf")
    # One batched estimate over every adapted survivor; batch order is
    # the prior objective order, so ``first_feasible_estimate`` lands on
    # the same survivor a sequential scan would have found.
    reports = perf_model.estimate_batch(adapted)
    for candidate, report in zip(adapted, reports):
        objective = perf_model.objective_from_report(report)
        if objective < init_objective:
            init, init_objective = candidate, objective
    if init is None:
        # No survivor could be adapted — degrade to a balanced start on
        # the new cluster (still one search, not a full cold restart).
        init = balanced_config(
            graph, cluster, min(2, cluster.num_gpus)
        )

    search = AcesoSearch(graph, cluster, perf_model, options=options)
    result = search.run(init, SearchBudget(**budget_kwargs))
    return ReplanOutcome(
        strategy="warm",
        best_config=result.best_config,
        best_objective=result.best_objective,
        feasible=result.is_feasible,
        num_estimates=perf_model.num_estimates,
        # The model tracks the first non-OOM report it ever costed,
        # whether that was an adapted survivor or a search candidate.
        estimates_to_feasible=perf_model.first_feasible_estimate,
        wall_seconds=time.monotonic() - started,
    )


def _cold_replan(
    graph: OpGraph,
    cluster: ClusterSpec,
    perf_model: PerfModel,
    options: Optional[AcesoSearchOptions],
    budget_kwargs: dict,
    stage_counts: Optional[Sequence[int]],
) -> ReplanOutcome:
    started = time.monotonic()
    counts = (
        list(stage_counts)
        if stage_counts is not None
        else default_stage_counts(graph, cluster)
    )
    multi = search_all_stage_counts(
        graph,
        cluster,
        perf_model,
        stage_counts=counts,
        options=options,
        budget_per_count=dict(budget_kwargs),
    )
    best = multi.best
    return ReplanOutcome(
        strategy="cold",
        best_config=best.best_config,
        best_objective=best.best_objective,
        feasible=best.is_feasible,
        num_estimates=perf_model.num_estimates,
        estimates_to_feasible=perf_model.first_feasible_estimate,
        wall_seconds=time.monotonic() - started,
    )


def elastic_replan(
    graph: OpGraph,
    cluster: ClusterSpec,
    survivors: Sequence[Tuple[float, ParallelConfig]],
    *,
    database=None,
    seed: int = 0,
    options: Optional[AcesoSearchOptions] = None,
    budget_per_count: Optional[dict] = None,
    stage_counts: Optional[Sequence[int]] = None,
) -> ReplanComparison:
    """Warm-start vs. cold-restart re-planning on ``cluster``.

    Args:
        graph: the model being trained.
        cluster: the *surviving* cluster (already shrunk).
        survivors: ``(objective, config)`` pairs from the old cluster's
            search (e.g. ``MultiStageSearchResult.top_configs()``).
        database: profile database for ``cluster``; profiled fresh with
            ``seed`` when omitted.
        options / budget_per_count: forwarded to both strategies so the
            comparison is apples-to-apples per search run.
        stage_counts: cold-restart stage counts (default powers of two).
    """
    if database is None:
        database = SimulatedProfiler(cluster, seed=seed).profile(graph)
    budget_kwargs = dict(budget_per_count or {"max_iterations": 15})
    SearchBudget.validate_kwargs(budget_kwargs)
    warm = _warm_replan(
        graph,
        cluster,
        survivors,
        PerfModel(graph, cluster, database),
        options,
        budget_kwargs,
    )
    cold = _cold_replan(
        graph,
        cluster,
        PerfModel(graph, cluster, database),
        options,
        budget_kwargs,
        stage_counts,
    )
    return ReplanComparison(warm=warm, cold=cold)
