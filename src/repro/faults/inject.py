"""Interpret a :class:`FaultPlan` against cluster and configuration.

Three translations live here:

* ``degrade_cluster`` — apply link-bandwidth degradations, producing the
  hardware the executor *actually* runs on;
* ``shrink_cluster`` — the surviving cluster after device failures
  (snapped to the largest power-of-two allocation the planner's
  power-of-two invariants can use);
* ``adapt_config`` — rescale a searched plan onto a smaller surviving
  cluster, preserving its stage structure, per-op tensor degrees, and
  recompute decisions.  This is the warm-start seed of elastic
  re-planning: the adapted survivors of ``top_configs`` are usually one
  estimate away from feasibility, where a cold restart re-discovers
  everything.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from ..cluster.topology import ClusterSpec, LinkSpec
from ..ir.graph import OpGraph
from ..lint.diagnostics import Diagnostic
from ..lint.diagnostics import WARNING as LINT_WARNING
from ..parallel.config import ParallelConfig
from ..parallel.validation import ConfigError, validate_config
from ..telemetry import WARNING, get_bus
from ..telemetry.events import (
    FAULTS_CLUSTER_SHRUNK,
    FAULTS_LINK_DEGRADATION,
)
from .plan import FaultPlan


def _degrade_link(link: LinkSpec, factor: float) -> LinkSpec:
    if factor >= 1.0:
        return link
    return LinkSpec(
        bandwidth=link.bandwidth * factor, latency=link.latency
    )


def degrade_cluster(cluster: ClusterSpec, plan: FaultPlan) -> ClusterSpec:
    """Cluster with the plan's link degradations applied."""
    intra = plan.bandwidth_factor("intra")
    inter = plan.bandwidth_factor("inter")
    if intra >= 1.0 and inter >= 1.0:
        return cluster
    bus = get_bus()
    if bus.active:
        for scope, factor in (("intra", intra), ("inter", inter)):
            if factor < 1.0:
                bus.emit(
                    FAULTS_LINK_DEGRADATION,
                    source="faults",
                    level=WARNING,
                    scope=scope,
                    factor=float(factor),
                )
    return replace(
        cluster,
        intra_node=_degrade_link(cluster.intra_node, intra),
        inter_node=_degrade_link(cluster.inter_node, inter),
    )


def _largest_power_of_two_at_most(value: int) -> int:
    power = 1
    while power * 2 <= value:
        power *= 2
    return power


class NoSurvivorsError(ValueError):
    """Every device failed; no usable cluster remains.

    Carries the structured ``ACE221`` diagnostic so service-layer
    callers can report the condition without string-matching.
    """

    def __init__(self, message: str, diagnostic: Diagnostic) -> None:
        super().__init__(message)
        self.diagnostic = diagnostic


def _surviving_nodes(
    cluster: ClusterSpec, failed: set, count: int
) -> Tuple[int, ...]:
    """The ``count`` healthiest nodes (fewest failures, then by id)."""
    losses = [0] * cluster.num_nodes
    for device in failed:
        losses[device // cluster.gpus_per_node] += 1
    ranked = sorted(
        range(cluster.num_nodes), key=lambda n: (losses[n], n)
    )
    return tuple(sorted(ranked[:count]))


def shrink_cluster_checked(
    cluster: ClusterSpec, failed_devices: Sequence[int]
) -> Tuple[ClusterSpec, List[Diagnostic]]:
    """The usable cluster after losing ``failed_devices``, plus
    structured diagnostics about what the snap cost.

    The planner's device splits are power-of-two, so the surviving
    allocation snaps down to the largest power of two not exceeding the
    healthy device count, keeping the original link specs.  Multi-node
    shapes keep full nodes (the paper's testbed rule); anything at or
    below one node collapses to a single node.  Heterogeneous clusters
    keep the healthiest nodes' device specs.

    When the snap idles healthy survivors (their count is not a power
    of two) an ``ACE220`` warning diagnostic says exactly how many were
    dropped; all devices failing raises :class:`NoSurvivorsError`
    carrying an ``ACE221`` diagnostic.
    """
    failed = {d for d in failed_devices if 0 <= d < cluster.num_gpus}
    survivors = cluster.num_gpus - len(failed)
    if survivors < 1:
        diagnostic = Diagnostic(
            "ACE221",
            f"all {cluster.num_gpus} devices failed; no usable "
            f"cluster remains",
            attrs={"num_gpus": cluster.num_gpus, "failed": len(failed)},
            hint="replace failed hardware before re-planning",
        )
        raise NoSurvivorsError(
            "no devices survive the fault plan", diagnostic
        )
    size = _largest_power_of_two_at_most(survivors)
    diagnostics: List[Diagnostic] = []
    if size < survivors:
        diagnostics.append(Diagnostic(
            "ACE220",
            f"{survivors} devices survive but the planner's "
            f"power-of-two invariants can only use {size}; "
            f"{survivors - size} healthy device(s) left idle",
            severity=LINT_WARNING,
            attrs={
                "survivors": survivors,
                "snapped": size,
                "dropped": survivors - size,
            },
            hint="restore failed devices to a power-of-two total to "
            "reclaim the idle survivors",
        ))
    hetero = cluster.node_devices is not None
    if size <= cluster.gpus_per_node:
        keep = _surviving_nodes(cluster, failed, 1) if hetero else ()
        shrunk = replace(
            cluster,
            num_nodes=1,
            gpus_per_node=size,
            node_devices=(
                (cluster.node_devices[keep[0]],) if hetero else None
            ),
        )
    elif size % cluster.gpus_per_node:
        # Power-of-two sizes above one node are multiples of a
        # power-of-two node width; a non-multiple means the original
        # width wasn't a power of two — fall back to one full node.
        keep = _surviving_nodes(cluster, failed, 1) if hetero else ()
        shrunk = replace(
            cluster,
            num_nodes=1,
            node_devices=(
                (cluster.node_devices[keep[0]],) if hetero else None
            ),
        )
    else:
        new_nodes = size // cluster.gpus_per_node
        keep = (
            _surviving_nodes(cluster, failed, new_nodes)
            if hetero
            else ()
        )
        shrunk = replace(
            cluster,
            num_nodes=new_nodes,
            node_devices=(
                tuple(cluster.node_devices[n] for n in keep)
                if hetero
                else None
            ),
        )
    bus = get_bus()
    if bus.active:
        bus.emit(
            FAULTS_CLUSTER_SHRUNK,
            source="faults",
            level=WARNING,
            failed=len(failed),
            survivors=survivors,
            usable=size,
            dropped=survivors - size,
        )
    return shrunk, diagnostics


def shrink_cluster(
    cluster: ClusterSpec, failed_devices: Sequence[int]
) -> ClusterSpec:
    """:func:`shrink_cluster_checked` without the diagnostics."""
    return shrink_cluster_checked(cluster, failed_devices)[0]


def memory_safe_variant(config: ParallelConfig) -> ParallelConfig:
    """Full-recompute copy of ``config``.

    Same stage partition, device counts, and per-op degrees, but every
    op recomputes — the memory floor of the plan's structure.  Warm
    re-planning pairs each adapted survivor with its safe variant: a
    survivor that fit a bigger cluster often overshoots the smaller
    one's memory, while its safe variant is nearly always feasible and
    keeps the searched structure as a starting point.
    """
    stages = []
    for stage in config.stages:
        clone = stage.clone()
        clone.recompute[:] = True
        stages.append(clone)
    return ParallelConfig(
        stages=stages, microbatch_size=config.microbatch_size
    )


def adapt_config(
    config: ParallelConfig,
    graph: OpGraph,
    cluster: ClusterSpec,
) -> Optional[ParallelConfig]:
    """Rescale ``config`` onto ``cluster``; ``None`` when impossible.

    Shrinking by a factor ``r`` divides every stage's device count by
    ``r`` (clamping per-op tensor degrees that no longer fit; data
    degrees follow).  Growing multiplies instead.  The result keeps the
    stage partition, microbatch size, partition dimensions, and
    recompute flags of the original plan and is fully validated before
    being returned.
    """
    old_total = config.total_devices
    new_total = cluster.num_gpus
    if old_total == new_total:
        adapted = config
    elif old_total > new_total:
        if old_total % new_total:
            return None
        ratio = old_total // new_total
        if any(stage.num_devices < ratio for stage in config.stages):
            return None  # a stage would drop below one device
        adapted = ParallelConfig(
            stages=[
                stage.with_devices(stage.num_devices // ratio)
                for stage in config.stages
            ],
            microbatch_size=config.microbatch_size,
        )
    else:
        if new_total % old_total:
            return None
        ratio = new_total // old_total
        adapted = ParallelConfig(
            stages=[
                stage.with_devices(stage.num_devices * ratio)
                for stage in config.stages
            ],
            microbatch_size=config.microbatch_size,
        )
    try:
        validate_config(adapted, graph, cluster)
    except ConfigError:
        return None
    return adapted
