"""Deterministic fault plans for the ground-truth runtime.

Real V100/IB clusters fail in structured ways the analytic planner never
sees: a GPU drops mid-iteration, one device runs hot and slow, an
oversubscribed IB link delivers a fraction of its nominal bandwidth, and
the caching allocator occasionally stalls a task on a cudaMalloc retry.
A :class:`FaultPlan` names those events explicitly, is seeded so every
injection is reproducible bit-for-bit, and round-trips through JSON so
a plan can be shipped to ``repro-estimate --fault-plan``.

The plan is pure data; :mod:`repro.faults.inject` and
:class:`repro.runtime.executor.Executor` interpret it.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Tuple, Union

import numpy as np

#: Format marker so future layout changes stay loadable.
FAULT_FORMAT_VERSION = 1

#: Link scopes a degradation may target.
LINK_SCOPES = ("intra", "inter")


@dataclass(frozen=True)
class DeviceFailure:
    """Device ``device_id`` becomes unusable ``time`` seconds in."""

    device_id: int
    time: float

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ValueError("device_id must be non-negative")
        if self.time < 0:
            raise ValueError("failure time must be non-negative")


@dataclass(frozen=True)
class StragglerSlowdown:
    """Device ``device_id`` runs compute ``factor``x slower."""

    device_id: int
    factor: float

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ValueError("device_id must be non-negative")
        if self.factor < 1.0:
            raise ValueError("straggler factor must be >= 1.0")


@dataclass(frozen=True)
class LinkDegradation:
    """A link class retains only ``factor`` of its nominal bandwidth."""

    scope: str  # "intra" (NVLink) or "inter" (IB)
    factor: float

    def __post_init__(self) -> None:
        if self.scope not in LINK_SCOPES:
            raise ValueError(
                f"unknown link scope {self.scope!r}; "
                f"choose from {LINK_SCOPES}"
            )
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("bandwidth factor must be in (0, 1]")


@dataclass(frozen=True)
class TransientOOM:
    """Allocator pressure on one stage.

    Each (microbatch, direction) task of ``stage`` independently stalls
    with ``probability`` for ``stall_seconds`` — the observable cost of
    a cache-flush-and-retry inside a framework allocator.
    """

    stage: int
    probability: float
    stall_seconds: float

    def __post_init__(self) -> None:
        if self.stage < 0:
            raise ValueError("stage must be non-negative")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of deployment faults.

    An empty plan (the default) injects nothing, so fault-aware code
    paths can treat ``FaultPlan()`` and ``None`` identically.
    """

    seed: int = 0
    device_failures: Tuple[DeviceFailure, ...] = ()
    stragglers: Tuple[StragglerSlowdown, ...] = ()
    link_degradations: Tuple[LinkDegradation, ...] = ()
    transient_ooms: Tuple[TransientOOM, ...] = ()

    def __post_init__(self) -> None:
        # Accept lists from callers / JSON and freeze them.
        for name in (
            "device_failures",
            "stragglers",
            "link_degradations",
            "transient_ooms",
        ):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not (
            self.device_failures
            or self.stragglers
            or self.link_degradations
            or self.transient_ooms
        )

    def first_failure(self, num_devices: int):
        """Earliest :class:`DeviceFailure` hitting the first
        ``num_devices`` devices (the span a config actually occupies),
        or ``None``."""
        hits = [
            f for f in self.device_failures if f.device_id < num_devices
        ]
        return min(hits, key=lambda f: (f.time, f.device_id)) if hits else None

    def failed_devices(self) -> Tuple[int, ...]:
        return tuple(sorted({f.device_id for f in self.device_failures}))

    def straggler_factor(self, device_id: int) -> float:
        """Compound slowdown for one device (1.0 when healthy)."""
        factor = 1.0
        for straggler in self.stragglers:
            if straggler.device_id == device_id:
                factor *= straggler.factor
        return factor

    def bandwidth_factor(self, scope: str) -> float:
        """Remaining bandwidth fraction for a link scope."""
        if scope not in LINK_SCOPES:
            raise ValueError(f"unknown link scope {scope!r}")
        factor = 1.0
        for degradation in self.link_degradations:
            if degradation.scope == scope:
                factor *= degradation.factor
        return factor

    def rng_for(self, key: str) -> np.random.Generator:
        """Seeded generator bound to this plan and a caller key.

        The same ``(seed, key)`` pair always yields the same stream, so
        stochastic faults (transient OOM) replay identically for one
        configuration while staying independent across configurations.
        """
        return np.random.default_rng(
            (self.seed, zlib.crc32(key.encode("utf-8")))
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format_version": FAULT_FORMAT_VERSION,
            "seed": self.seed,
            "device_failures": [asdict(f) for f in self.device_failures],
            "stragglers": [asdict(s) for s in self.stragglers],
            "link_degradations": [
                asdict(d) for d in self.link_degradations
            ],
            "transient_ooms": [asdict(t) for t in self.transient_ooms],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        version = data.get("format_version")
        if version != FAULT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported fault plan format version: {version!r} "
                f"(expected {FAULT_FORMAT_VERSION})"
            )
        return cls(
            seed=int(data.get("seed", 0)),
            device_failures=tuple(
                DeviceFailure(**f) for f in data.get("device_failures", [])
            ),
            stragglers=tuple(
                StragglerSlowdown(**s) for s in data.get("stragglers", [])
            ),
            link_degradations=tuple(
                LinkDegradation(**d)
                for d in data.get("link_degradations", [])
            ),
            transient_ooms=tuple(
                TransientOOM(**t) for t in data.get("transient_ooms", [])
            ),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))


def random_fault_plan(
    num_devices: int,
    *,
    seed: int = 0,
    failure_rate: float = 0.1,
    straggler_rate: float = 0.2,
    max_straggler_factor: float = 2.0,
    link_degradation_rate: float = 0.3,
    oom_rate: float = 0.1,
    horizon_seconds: float = 1.0,
) -> FaultPlan:
    """Sample a plausible fault plan for a cluster of ``num_devices``.

    Every rate is an independent Bernoulli per candidate (device or
    link class); the draw is fully determined by ``seed``.
    """
    if num_devices < 1:
        raise ValueError("num_devices must be positive")
    rng = np.random.default_rng(seed)
    failures = tuple(
        DeviceFailure(
            device_id=d, time=float(rng.uniform(0.0, horizon_seconds))
        )
        for d in range(num_devices)
        if rng.random() < failure_rate
    )
    stragglers = tuple(
        StragglerSlowdown(
            device_id=d,
            factor=float(rng.uniform(1.1, max_straggler_factor)),
        )
        for d in range(num_devices)
        if rng.random() < straggler_rate
    )
    degradations = tuple(
        LinkDegradation(scope=scope, factor=float(rng.uniform(0.3, 0.9)))
        for scope in LINK_SCOPES
        if rng.random() < link_degradation_rate
    )
    ooms = tuple(
        TransientOOM(
            stage=s,
            probability=float(rng.uniform(0.02, 0.2)),
            stall_seconds=float(rng.uniform(0.001, 0.01)),
        )
        for s in range(4)
        if rng.random() < oom_rate
    )
    return FaultPlan(
        seed=seed,
        device_failures=failures,
        stragglers=stragglers,
        link_degradations=degradations,
        transient_ooms=ooms,
    )
