"""Seeded chaos harness: kill replicas mid-traffic, lose nothing.

The fleet's resilience claims are only worth what a chaos run can
demonstrate, so this module makes the demonstration deterministic and
cheap enough for CI:

* :class:`ChaosEvent` schedules a ``kill`` or ``restart`` of a named
  replica *by request index*, not wall-clock — replaying the same
  event list over the same request list injects the same faults at the
  same points regardless of machine speed;
* :class:`InProcessReplica` hosts one :class:`PlannerDaemon` behind the
  :class:`LocalReplicaClient` transport; ``kill`` flips the killed
  flag (every subsequent call is a transport error, exactly what a
  crashed process looks like to the router) and drains the daemon,
  ``restart`` boots a fresh daemon on the same state directory so the
  journal re-admission and warm disk cache paths are exercised too;
* :func:`run_chaos` drives a request list through a
  :class:`FleetRouter` over N such replicas while applying the event
  schedule, then replays every unique request against a fresh
  single-daemon **oracle** and checks that each non-degraded fleet
  answer's plan digest is bit-identical to the oracle's.

The resulting :class:`ChaosReport` asserts the two invariants the
paper-scale deployment needs: **zero lost requests** (every submit got
a terminal response) and **digest equality** for every full answer.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..telemetry import WARNING, get_bus
from ..telemetry.events import FLEET_CHAOS_KILL, FLEET_CHAOS_RESTART
from .daemon import PlannerDaemon
from .fleet import FleetConfig, FleetRouter, LocalReplicaClient, ReplicaError
from .planner import PlanOutcome, plan_digest
from .protocol import (
    STATUS_REJECTED,
    STATUS_SERVED,
    PlanRequest,
    PlanResponse,
)

_EVENT_KINDS = frozenset(("kill", "restart"))


@dataclass(frozen=True)
class ChaosEvent:
    """Kill or restart ``replica`` just before request ``after_request``
    (0-based index into the replayed request list) is submitted."""

    after_request: int
    kind: str
    replica: str

    def __post_init__(self) -> None:
        if self.kind not in _EVENT_KINDS:
            raise ValueError(f"unknown chaos event kind: {self.kind!r}")
        if self.after_request < 0:
            raise ValueError("after_request must be >= 0")

    def to_json(self) -> dict:
        return {
            "after_request": self.after_request,
            "kind": self.kind,
            "replica": self.replica,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ChaosEvent":
        return cls(
            after_request=int(data["after_request"]),
            kind=str(data["kind"]),
            replica=str(data["replica"]),
        )


def seeded_schedule(
    *,
    seed: int,
    requests: int,
    replicas: Sequence[str],
    kills: int = 2,
) -> List[ChaosEvent]:
    """A reproducible kill/restart schedule: ``kills`` kill events at
    seeded request indices, each followed by a restart a few requests
    later (so the run also exercises rejoin + journal re-admission)."""
    rng = random.Random(f"chaos:{seed}")
    events: List[ChaosEvent] = []
    if requests < 2 or not replicas:
        return events
    for _ in range(kills):
        index = rng.randrange(1, requests)
        name = rng.choice(list(replicas))
        events.append(ChaosEvent(index, "kill", name))
        revive = index + rng.randrange(1, 4)
        if revive < requests:
            events.append(ChaosEvent(revive, "restart", name))
    events.sort(key=lambda e: (e.after_request, e.kind, e.replica))
    return events


def synthetic_planner(
    delay_seconds: float = 0.0,
) -> Callable[..., PlanOutcome]:
    """A deterministic stand-in planner: the plan is a pure function of
    the request, found after ``delay_seconds`` of pretend searching.

    Used by the fleet tests and the service benchmark so chaos replay
    and latency numbers measure the *service layers*, not the search.
    """

    def planner(
        request: PlanRequest, *, deadline=None, checkpoint_path=None
    ) -> PlanOutcome:
        if delay_seconds:
            time.sleep(delay_seconds)
        if deadline is not None:
            remaining = deadline.remaining()
            if deadline.cancelled or (
                remaining is not None and remaining <= 0
            ):
                # Anytime contract: out of time still yields a plan,
                # flagged partial.
                return PlanOutcome(
                    plan={"model": request.model, "cut": True},
                    objective=1.0,
                    partial=True,
                )
        rng = random.Random(
            f"{request.model}:{request.gpus}:{request.seed}"
        )
        stages = list(request.stage_counts or (min(4, request.gpus),))
        plan = {
            "model": request.model,
            "gpus": request.gpus,
            "stages": stages,
            "assignment": [
                rng.randrange(request.gpus) for _ in range(8)
            ],
        }
        return PlanOutcome(
            plan=plan,
            objective=round(rng.uniform(1.0, 2.0), 6),
            num_estimates=request.iterations,
        )

    return planner


class InProcessReplica:
    """One named replica: a daemon + local transport, kill/restartable.

    Implements the replica-client protocol itself (delegating to the
    live :class:`LocalReplicaClient`), so the router keeps one stable
    client object across restarts.
    """

    def __init__(
        self,
        name: str,
        *,
        state_dir: Optional[Path] = None,
        planner: Optional[Callable] = None,
        daemon_kwargs: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.state_dir = Path(state_dir) if state_dir else None
        self._planner = planner
        self._daemon_kwargs = dict(daemon_kwargs or {})
        self._client: Optional[LocalReplicaClient] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "InProcessReplica":
        daemon = PlannerDaemon(
            planner=self._planner,
            state_dir=self.state_dir,
            **self._daemon_kwargs,
        ).start()
        self._client = LocalReplicaClient(daemon)
        return self

    def kill(self) -> None:
        """Crash: every subsequent call is a transport error."""
        client = self._client
        if client is None:
            return
        client.killed = True
        # Quick drain so worker threads stop; journals stay on disk for
        # the restarted daemon to re-admit.
        client.daemon.drain(timeout=1.0)

    def restart(self) -> None:
        """Boot a fresh daemon on the same state directory (journal
        re-admission + warm disk cache) and rejoin the fleet."""
        self._client = None
        self.start()

    @property
    def alive(self) -> bool:
        return self._client is not None and not self._client.killed

    def _live(self) -> LocalReplicaClient:
        if self._client is None:
            raise ReplicaError(f"replica {self.name} is not running")
        return self._client

    # -- replica-client protocol ---------------------------------------
    def plan(self, payload: dict, timeout: float) -> PlanResponse:
        return self._live().plan(payload, timeout)

    def health(self) -> dict:
        return self._live().health()

    def ready(self) -> bool:
        return self._live().ready()

    def invalidate(self, *, gpus: Optional[int] = None) -> dict:
        return self._live().invalidate(gpus=gpus)

    def churn(self, event: dict) -> dict:
        return self._live().churn(event)

    def close(self) -> None:
        client = self._client
        self._client = None
        if client is not None:
            client.close()


@dataclass
class ChaosReport:
    """What a chaos run proved (or failed to prove)."""

    total: int
    lost: int
    by_status: Dict[str, int] = field(default_factory=dict)
    degraded: int = 0
    failovers: int = 0
    hedged: int = 0
    coalesced: int = 0
    digest_checked: int = 0
    digest_mismatches: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Zero lost requests, every answer terminal, all non-degraded
        plans bit-identical to the single-daemon oracle."""
        return self.lost == 0 and not self.digest_mismatches

    def to_json(self) -> dict:
        return {
            "total": self.total,
            "lost": self.lost,
            "by_status": dict(self.by_status),
            "degraded": self.degraded,
            "failovers": self.failovers,
            "hedged": self.hedged,
            "coalesced": self.coalesced,
            "digest_checked": self.digest_checked,
            "digest_mismatches": list(self.digest_mismatches),
            "events": list(self.events),
            "ok": self.ok,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ChaosReport":
        return cls(
            total=int(data["total"]),
            lost=int(data["lost"]),
            by_status=dict(data.get("by_status", {})),
            degraded=int(data.get("degraded", 0)),
            failovers=int(data.get("failovers", 0)),
            hedged=int(data.get("hedged", 0)),
            coalesced=int(data.get("coalesced", 0)),
            digest_checked=int(data.get("digest_checked", 0)),
            digest_mismatches=list(data.get("digest_mismatches", [])),
            events=list(data.get("events", [])),
        )


def run_chaos(
    requests: Sequence[PlanRequest],
    events: Sequence[ChaosEvent],
    *,
    replicas: int = 3,
    planner: Optional[Callable] = None,
    state_root: Optional[Path] = None,
    config: Optional[FleetConfig] = None,
    daemon_kwargs: Optional[dict] = None,
) -> ChaosReport:
    """Replay ``requests`` through a fleet while applying ``events``;
    compare every non-degraded full answer against a fresh
    single-daemon oracle.  Deterministic given deterministic inputs."""
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    state_root = Path(state_root) if state_root is not None else None
    names = [f"replica-{i}" for i in range(replicas)]
    bad = sorted(
        {e.replica for e in events} - set(names)
    )
    if bad:
        raise ValueError(f"chaos events name unknown replicas: {bad}")
    fleet_replicas: Dict[str, InProcessReplica] = {}
    for name in names:
        state_dir = state_root / name if state_root else None
        fleet_replicas[name] = InProcessReplica(
            name,
            state_dir=state_dir,
            planner=planner,
            daemon_kwargs=daemon_kwargs,
        ).start()
    router = FleetRouter(
        dict(fleet_replicas),
        config=config or FleetConfig(health_interval=0.1, retries=1),
        state_path=(
            state_root / "fleet.fleet.json" if state_root else None
        ),
    ).start()
    schedule: Dict[int, List[ChaosEvent]] = {}
    for event in events:
        schedule.setdefault(event.after_request, []).append(event)
    bus = get_bus()
    responses: List[Optional[PlanResponse]] = []
    try:
        for index, request in enumerate(requests):
            for event in schedule.get(index, ()):
                replica = fleet_replicas[event.replica]
                if event.kind == "kill":
                    replica.kill()
                    bus.emit(
                        FLEET_CHAOS_KILL,
                        source="chaos",
                        level=WARNING,
                        replica=event.replica,
                        after_request=index,
                    )
                else:
                    replica.restart()
                    bus.emit(
                        FLEET_CHAOS_RESTART,
                        source="chaos",
                        replica=event.replica,
                        after_request=index,
                    )
            try:
                responses.append(router.submit(request))
            except Exception:  # noqa: BLE001 - a lost request is data
                responses.append(None)
    finally:
        router.stop(close_replicas=True)
    # -- oracle comparison --------------------------------------------
    oracle_dir = state_root / "oracle" if state_root else None
    oracle = PlannerDaemon(
        planner=planner,
        state_dir=oracle_dir,
        **dict(daemon_kwargs or {}),
    ).start()
    oracle_digests: Dict[str, Optional[str]] = {}
    try:
        for request in requests:
            fingerprint = request.fingerprint()
            if fingerprint in oracle_digests:
                continue
            answer = oracle.submit(request, timeout=120.0)
            oracle_digests[fingerprint] = (
                plan_digest(answer.plan) if answer.ok else None
            )
    finally:
        oracle.stop()
    report = ChaosReport(
        total=len(responses),
        lost=sum(1 for r in responses if r is None),
        events=[e.to_json() for e in events],
    )
    for response in responses:
        if response is None:
            continue
        report.by_status[response.status] = (
            report.by_status.get(response.status, 0) + 1
        )
        report.failovers += response.failovers
        report.hedged += int(response.hedged)
        report.coalesced += int(response.coalesced)
        degraded = (
            response.stale
            or response.status not in (STATUS_SERVED,)
        )
        if degraded:
            report.degraded += int(
                response.stale or response.status != STATUS_REJECTED
            )
            continue
        expected = oracle_digests.get(response.fingerprint)
        if expected is None:
            continue
        report.digest_checked += 1
        got = plan_digest(response.plan)
        if got != expected:
            report.digest_mismatches.append({
                "fingerprint": response.fingerprint,
                "expected": expected,
                "got": got,
                "replica": response.replica,
            })
    return report
