"""Admission control: a bounded priority queue with backpressure.

"Millions of users" do not get to stack unbounded work on a subprocess
pool.  The controller holds at most ``max_pending`` queued requests;
one more is *rejected immediately* with a ``retry_after`` estimate
(429-style) instead of piling up — overload sheds load, it never
queues latency.  Within the bound, higher ``priority`` requests pop
first and equal priorities stay FIFO.

``retry_after`` is derived from the live state: an EMA of observed
service times times the queue depth ahead of the hypothetical retry,
divided by the worker count — i.e. "when a slot is plausibly free",
not a magic constant.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import List, Optional

from ..telemetry import WARNING, get_bus
from ..telemetry.events import (
    SERVICE_ADMISSION_ADMITTED,
    SERVICE_ADMISSION_REJECTED,
)


class QueueFullError(RuntimeError):
    """The admission queue is at capacity; retry after ``retry_after``."""

    def __init__(self, retry_after: float, depth: int) -> None:
        super().__init__(
            f"admission queue full ({depth} pending); "
            f"retry after {retry_after:.2f}s"
        )
        self.retry_after = retry_after
        self.depth = depth


class AdmissionController:
    """Thread-safe bounded priority queue feeding the worker pool."""

    def __init__(
        self,
        max_pending: int,
        *,
        workers: int = 1,
        initial_service_seconds: float = 1.0,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.max_pending = max_pending
        self.workers = workers
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._service_ema = initial_service_seconds
        self.admitted = 0
        self.rejected = 0

    # -- producer side -------------------------------------------------
    def submit(self, item, *, priority: int = 0):
        """Enqueue ``item`` or raise :class:`QueueFullError`."""
        with self._not_empty:
            if self._closed:
                raise RuntimeError("admission controller is closed")
            if len(self._heap) >= self.max_pending:
                self.rejected += 1
                retry_after = self._retry_after_locked()
                get_bus().emit(
                    SERVICE_ADMISSION_REJECTED,
                    source="service",
                    level=WARNING,
                    depth=len(self._heap),
                    max_pending=self.max_pending,
                    retry_after=retry_after,
                )
                raise QueueFullError(retry_after, len(self._heap))
            # heapq is a min-heap: negate priority so higher pops first;
            # the monotone sequence keeps equal priorities FIFO.
            heapq.heappush(
                self._heap, (-priority, next(self._seq), item)
            )
            self.admitted += 1
            get_bus().emit(
                SERVICE_ADMISSION_ADMITTED,
                source="service",
                depth=len(self._heap),
                priority=priority,
            )
            self._not_empty.notify()
            return item

    # -- consumer side -------------------------------------------------
    def next(self, timeout: Optional[float] = None):
        """Pop the highest-priority item; ``None`` on timeout/close."""
        with self._not_empty:
            deadline_hit = not self._not_empty.wait_for(
                lambda: self._heap or self._closed, timeout=timeout
            )
            if deadline_hit or (self._closed and not self._heap):
                return None
            _, _, item = heapq.heappop(self._heap)
            return item

    def note_service_seconds(self, seconds: float) -> None:
        """Feed one observed service time into the retry_after EMA."""
        with self._lock:
            self._service_ema = 0.8 * self._service_ema + 0.2 * max(
                seconds, 0.0
            )

    # -- introspection / lifecycle ------------------------------------
    def _retry_after_locked(self) -> float:
        backlog = len(self._heap) + 1  # the retry joins behind the queue
        return max(
            0.1, self._service_ema * backlog / max(self.workers, 1)
        )

    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def saturated(self) -> bool:
        with self._lock:
            return len(self._heap) >= self.max_pending

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._heap),
                "max_pending": self.max_pending,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "service_seconds_ema": self._service_ema,
            }

    def drain(self) -> list:
        """Remove and return everything still queued (drain/shutdown)."""
        with self._not_empty:
            items = [item for _, _, item in sorted(self._heap)]
            self._heap.clear()
            self._not_empty.notify_all()
            return items

    def close(self) -> None:
        """Stop accepting and wake every blocked consumer."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()
