"""Circuit breaker: stop re-forking into known-bad configurations.

A search that crashes its workers usually crashes them again — a model
too big for the profile database, a poisoned checkpoint, a config that
OOMs every attempt.  The breaker tracks *consecutive* failures per key
(the request fingerprint: model × cluster × budget) and, past the
threshold, **opens**: further requests for that key fail fast with the
last recorded error instead of burning another subprocess tree.  After
``reset_seconds`` it goes **half-open** and admits exactly one probe;
the probe's outcome closes the breaker (recovered) or re-opens it.

The daemon's ``/healthz`` reports ``degraded`` while any breaker is
open, and flips back to ``healthy`` when the probe closes it — exactly
the transition the chaos acceptance test asserts.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..telemetry import WARNING, get_bus
from ..telemetry.events import (
    SERVICE_BREAKER_CLOSE,
    SERVICE_BREAKER_OPEN,
    SERVICE_BREAKER_PROBE,
)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BreakerOpenError(RuntimeError):
    """The breaker is open for this key; fail fast."""

    def __init__(self, key: str, last_error: str, retry_after: float) -> None:
        super().__init__(
            f"circuit breaker open for {key} "
            f"(last error: {last_error}); retry after {retry_after:.2f}s"
        )
        self.key = key
        self.last_error = last_error
        self.retry_after = retry_after


@dataclass
class _BreakerState:
    consecutive_failures: int = 0
    state: str = CLOSED
    opened_at: float = 0.0
    probing: bool = False
    last_error: str = ""
    trips: int = 0
    attrs: dict = field(default_factory=dict)


class CircuitBreaker:
    """Per-key consecutive-failure breaker with half-open probes."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_seconds <= 0:
            raise ValueError("reset_seconds must be positive")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._states: Dict[str, _BreakerState] = {}

    def _state(self, key: str) -> _BreakerState:
        return self._states.setdefault(key, _BreakerState())

    def check(self, key: str) -> None:
        """Raise :class:`BreakerOpenError` unless ``key`` may proceed.

        An open breaker past its reset window converts to half-open and
        lets exactly one caller through as the probe; everyone else
        keeps failing fast until the probe reports back.
        """
        with self._lock:
            state = self._state(key)
            if state.state == CLOSED:
                return
            now = self._clock()
            if state.state == OPEN:
                elapsed = now - state.opened_at
                if elapsed < self.reset_seconds:
                    raise BreakerOpenError(
                        key, state.last_error,
                        self.reset_seconds - elapsed,
                    )
                state.state = HALF_OPEN
                state.probing = True
                get_bus().emit(
                    SERVICE_BREAKER_PROBE,
                    source="service",
                    key=key,
                    **state.attrs,
                )
                return
            # HALF_OPEN: only the in-flight probe may proceed.
            if state.probing:
                raise BreakerOpenError(
                    key, state.last_error, self.reset_seconds
                )
            state.probing = True
            return

    def record_success(self, key: str) -> None:
        with self._lock:
            state = self._state(key)
            was_open = state.state != CLOSED
            state.consecutive_failures = 0
            state.state = CLOSED
            state.probing = False
            if was_open:
                get_bus().emit(
                    SERVICE_BREAKER_CLOSE,
                    source="service",
                    key=key,
                    **state.attrs,
                )

    def record_failure(self, key: str, error: str, **attrs) -> None:
        with self._lock:
            state = self._state(key)
            state.consecutive_failures += 1
            state.last_error = error
            state.probing = False
            state.attrs = dict(attrs)
            should_open = (
                state.state == HALF_OPEN  # failed probe: straight back
                or state.consecutive_failures >= self.failure_threshold
            )
            if should_open and state.state != OPEN:
                state.state = OPEN
                state.opened_at = self._clock()
                state.trips += 1
                get_bus().emit(
                    SERVICE_BREAKER_OPEN,
                    source="service",
                    level=WARNING,
                    key=key,
                    consecutive_failures=state.consecutive_failures,
                    error=error,
                    **attrs,
                )

    # -- introspection -------------------------------------------------
    def state(self, key: str) -> str:
        with self._lock:
            return self._states.get(key, _BreakerState()).state

    def last_error(self, key: str) -> Optional[str]:
        with self._lock:
            state = self._states.get(key)
            return state.last_error if state else None

    @property
    def any_open(self) -> bool:
        with self._lock:
            return any(
                s.state != CLOSED for s in self._states.values()
            )

    def snapshot(self) -> dict:
        """Per-key state for ``/healthz``."""
        with self._lock:
            return {
                key: {
                    "state": s.state,
                    "consecutive_failures": s.consecutive_failures,
                    "trips": s.trips,
                    "last_error": s.last_error or None,
                }
                for key, s in self._states.items()
            }
