"""The planner service's wire protocol: requests, responses, fingerprints.

One request asks for a plan (model × cluster × search budget) and gets
exactly one terminal response:

- ``served``   — a complete plan from a full-budget search (or cache)
- ``partial``  — the best-so-far plan of a deadline-cut anytime search
- ``rejected`` — admission control shed the request (``retry_after``
  tells the client when to come back) or the circuit breaker is open
- ``failed``   — the search itself failed; ``error`` says why

Everything round-trips through plain JSON dicts so the HTTP layer, the
in-process daemon API, and the on-disk request journal (used by the
SIGTERM drain/re-admit cycle) all speak the same records.

The *fingerprint* is the plan cache key: a digest over exactly the
fields that determine the resulting plan (model, cluster size, stage
counts, budget, seed).  Deadline and priority are deliberately
excluded — they shape *when* and *whether* a search runs, never what
plan it finds — so an impatient request can be answered from a patient
request's cached plan.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Terminal response statuses (every request ends in exactly one).
STATUS_SERVED = "served"
STATUS_PARTIAL = "partial"
STATUS_REJECTED = "rejected"
STATUS_FAILED = "failed"
TERMINAL_STATUSES = frozenset(
    (STATUS_SERVED, STATUS_PARTIAL, STATUS_REJECTED, STATUS_FAILED)
)

#: Protocol marker so future layout changes stay parseable.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A request/response payload is malformed."""


@dataclass(frozen=True)
class PlanRequest:
    """One plan query.

    ``deadline_seconds`` bounds the search wall-clock (anytime: a plan
    is returned either way); ``priority`` orders the admission queue
    (higher first, FIFO within a priority).
    """

    model: str
    gpus: int = 8
    stage_counts: Optional[Tuple[int, ...]] = None
    iterations: int = 30
    seed: int = 0
    deadline_seconds: Optional[float] = None
    priority: int = 0
    strategy: str = "greedy"
    strategy_kwargs: Optional[dict] = None

    def __post_init__(self) -> None:
        if not self.model or not isinstance(self.model, str):
            raise ProtocolError("model must be a non-empty string")
        if self.gpus < 1:
            raise ProtocolError("gpus must be >= 1")
        if self.iterations < 1:
            raise ProtocolError("iterations must be >= 1")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ProtocolError("deadline_seconds must be positive")
        if not self.strategy or not isinstance(self.strategy, str):
            raise ProtocolError("strategy must be a non-empty string")
        if self.strategy_kwargs is not None and not isinstance(
            self.strategy_kwargs, dict
        ):
            raise ProtocolError("strategy_kwargs must be an object")
        if self.stage_counts is not None:
            counts = tuple(int(c) for c in self.stage_counts)
            if not counts or any(c < 1 for c in counts):
                raise ProtocolError("stage_counts must be positive ints")
            object.__setattr__(self, "stage_counts", counts)

    def fingerprint(self) -> str:
        """Canonical digest of the plan-determining fields.

        Stage counts are sorted and deduplicated first, so query-order
        quirks don't defeat the cache.  The strategy participates only
        when it isn't the default greedy search (and its kwargs only
        when non-empty), so every fingerprint minted before strategies
        existed still addresses the same cached plan.
        """
        canonical = {
            "model": self.model,
            "gpus": self.gpus,
            "stage_counts": (
                sorted(set(self.stage_counts))
                if self.stage_counts is not None
                else None
            ),
            "iterations": self.iterations,
            "seed": self.seed,
        }
        if self.strategy != "greedy":
            canonical["strategy"] = self.strategy
        if self.strategy_kwargs:
            canonical["strategy_kwargs"] = {
                key: self.strategy_kwargs[key]
                for key in sorted(self.strategy_kwargs)
            }
        digest = hashlib.sha256(
            json.dumps(canonical, sort_keys=True).encode()
        )
        return digest.hexdigest()[:16]

    def to_json(self) -> dict:
        return {
            "protocol_version": PROTOCOL_VERSION,
            "model": self.model,
            "gpus": self.gpus,
            "stage_counts": (
                list(self.stage_counts)
                if self.stage_counts is not None
                else None
            ),
            "iterations": self.iterations,
            "seed": self.seed,
            "deadline_seconds": self.deadline_seconds,
            "priority": self.priority,
            "strategy": self.strategy,
            "strategy_kwargs": (
                dict(self.strategy_kwargs)
                if self.strategy_kwargs is not None
                else None
            ),
        }

    @classmethod
    def from_json(cls, data: dict) -> "PlanRequest":
        if not isinstance(data, dict):
            raise ProtocolError("request must be a JSON object")
        version = data.get("protocol_version", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version: {version!r}"
            )
        unknown = sorted(
            set(data)
            - {
                "protocol_version", "model", "gpus", "stage_counts",
                "iterations", "seed", "deadline_seconds", "priority",
                "strategy", "strategy_kwargs",
            }
        )
        if unknown:
            raise ProtocolError(f"unknown request field(s): {unknown}")
        try:
            stage_counts = data.get("stage_counts")
            strategy_kwargs = data.get("strategy_kwargs")
            return cls(
                model=data["model"],
                gpus=int(data.get("gpus", 8)),
                stage_counts=(
                    tuple(int(c) for c in stage_counts)
                    if stage_counts is not None
                    else None
                ),
                iterations=int(data.get("iterations", 30)),
                seed=int(data.get("seed", 0)),
                deadline_seconds=(
                    float(data["deadline_seconds"])
                    if data.get("deadline_seconds") is not None
                    else None
                ),
                priority=int(data.get("priority", 0)),
                strategy=str(data.get("strategy", "greedy")),
                strategy_kwargs=(
                    dict(strategy_kwargs)
                    if strategy_kwargs is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, ProtocolError):
                raise
            raise ProtocolError(
                f"malformed request: {type(exc).__name__}: {exc}"
            ) from exc


@dataclass
class PlanResponse:
    """The terminal answer to one :class:`PlanRequest`."""

    status: str
    request_id: int
    fingerprint: str
    plan: Optional[dict] = None
    objective: Optional[float] = None
    cached: bool = False
    retry_after: Optional[float] = None
    error: Optional[str] = None
    elapsed_seconds: float = 0.0
    failures: list = field(default_factory=list)
    #: Structured admission-lint findings (``Diagnostic.to_json()``
    #: dicts) explaining a rejected-as-invalid request.
    diagnostics: list = field(default_factory=list)
    #: The plan predates the last invalidation: a degraded fleet chose
    #: a stale-but-flagged answer over shedding the request.
    stale: bool = False
    #: This response was fanned out from another request's in-flight
    #: search (same fingerprint, one search, many waiters).
    coalesced: bool = False
    #: Which fleet replica answered (``None`` outside a fleet).
    replica: Optional[str] = None
    #: How many replicas failed before this answer arrived.
    failovers: int = 0
    #: A hedge (backup request past the p99 budget) won the race.
    hedged: bool = False

    def __post_init__(self) -> None:
        if self.status not in TERMINAL_STATUSES:
            raise ProtocolError(f"unknown status: {self.status!r}")

    @property
    def ok(self) -> bool:
        """Whether the response carries a usable plan."""
        return self.status in (STATUS_SERVED, STATUS_PARTIAL)

    def to_json(self) -> dict:
        return {
            "protocol_version": PROTOCOL_VERSION,
            "status": self.status,
            "request_id": self.request_id,
            "fingerprint": self.fingerprint,
            "plan": self.plan,
            "objective": self.objective,
            "cached": self.cached,
            "retry_after": self.retry_after,
            "error": self.error,
            "elapsed_seconds": self.elapsed_seconds,
            "failures": self.failures,
            "diagnostics": self.diagnostics,
            "stale": self.stale,
            "coalesced": self.coalesced,
            "replica": self.replica,
            "failovers": self.failovers,
            "hedged": self.hedged,
        }

    @classmethod
    def from_json(cls, data: dict) -> "PlanResponse":
        if not isinstance(data, dict):
            raise ProtocolError("response must be a JSON object")
        try:
            return cls(
                status=data["status"],
                request_id=int(data["request_id"]),
                fingerprint=data["fingerprint"],
                plan=data.get("plan"),
                objective=data.get("objective"),
                cached=bool(data.get("cached", False)),
                retry_after=data.get("retry_after"),
                error=data.get("error"),
                elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
                failures=list(data.get("failures", [])),
                diagnostics=list(data.get("diagnostics", [])),
                stale=bool(data.get("stale", False)),
                coalesced=bool(data.get("coalesced", False)),
                replica=data.get("replica"),
                failovers=int(data.get("failovers", 0)),
                hedged=bool(data.get("hedged", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, ProtocolError):
                raise
            raise ProtocolError(
                f"malformed response: {type(exc).__name__}: {exc}"
            ) from exc
