"""The daemon's default planner: one request → one search → one plan.

This is the only module in the service package that knows what a plan
*is*; everything else (admission, breaker, cache, daemon, HTTP) treats
planning as an opaque callable, which is also how tests swap in
deterministic fakes.  The contract:

``planner(request, deadline=None, checkpoint_path=None) -> PlanOutcome``

raising on failure.  The default implementation runs the crash-safe
stage-count driver with the request's budget, threading the request
deadline through so a timed-out search still returns its best-so-far
plan (``PlanOutcome.partial``), and resumes from ``checkpoint_path``
when one exists — which is exactly how a drained daemon's re-admitted
requests pick up where the SIGTERM left them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

from ..cluster.topology import paper_cluster
from ..core.budget import Deadline
from ..core.search import search_all_stage_counts
from ..ir.models.registry import build_model
from ..parallel.serialization import config_to_dict
from ..perfmodel.model import build_perf_model
from .protocol import PlanRequest


@dataclass
class PlanOutcome:
    """What a planner hands back to the daemon."""

    plan: dict
    objective: float
    partial: bool = False
    num_estimates: int = 0
    failures: list = field(default_factory=list)


def plan_digest(plan: Optional[dict]) -> Optional[str]:
    """Canonical digest of a plan dict (``None`` for no plan).

    The chaos harness compares fleet answers against a single-daemon
    oracle with this: two searches are bit-identical exactly when their
    digests match, regardless of dict ordering.
    """
    if plan is None:
        return None
    digest = hashlib.sha256(
        json.dumps(plan, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:16]


def plan_request(
    request: PlanRequest,
    *,
    deadline: Optional[Deadline] = None,
    checkpoint_path=None,
    search_workers: int = 1,
    timeout_per_count: Optional[float] = None,
    worker_memory_mb: Optional[float] = None,
) -> PlanOutcome:
    """Search a plan for ``request``; raises ``SearchFailedError`` when
    nothing at all survived (the daemon maps that to a failed response
    and a breaker failure)."""
    graph = build_model(request.model)
    cluster = paper_cluster(request.gpus)
    perf_model = build_perf_model(graph, cluster, seed=request.seed)
    # The request seed also seeds the strategy (MCMC walk, bandit
    # tie-breaks) unless the client pinned one explicitly — the
    # fingerprint already covers both fields.
    strategy_kwargs = dict(request.strategy_kwargs or {})
    strategy_kwargs.setdefault("seed", request.seed)
    multi = search_all_stage_counts(
        graph,
        cluster,
        perf_model,
        stage_counts=request.stage_counts,
        strategy=request.strategy,
        strategy_kwargs=strategy_kwargs,
        budget_per_count={"max_iterations": request.iterations},
        workers=search_workers,
        timeout_per_count=timeout_per_count,
        worker_memory_mb=worker_memory_mb,
        deadline=deadline,
        checkpoint_path=checkpoint_path,
        resume=checkpoint_path is not None,
    )
    best = multi.best  # raises SearchFailedError when empty
    return PlanOutcome(
        plan=config_to_dict(best.best_config),
        objective=best.best_objective,
        partial=multi.partial,
        num_estimates=multi.num_estimates,
        failures=[
            {
                "num_stages": f.num_stages,
                "error": f.error,
                "attempts": f.attempts,
                "kind": f.kind,
            }
            for f in multi.failures
        ],
    )
