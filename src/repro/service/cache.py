"""Plan cache: repeat queries are O(1), invalidation is explicit.

Completed plans are keyed by the request fingerprint (canonical
model × cluster × budget digest, see ``protocol.PlanRequest``).  Only
*complete* plans are cached — a deadline-cut partial plan answers its
own request but must not masquerade as the full search's answer for
the next caller.

With a ``directory`` the cache is write-through: every entry also
lands as ``<fingerprint>.plan.json`` and is reloaded on construction,
so a restarted daemon serves yesterday's plans warm.  ``invalidate``
drops matching entries (memory *and* disk) — the daemon calls it when
a fault plan or cluster change arrives, because a plan searched for
the old world is worse than no plan at all.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Optional

from ..ioutil import write_json_atomic
from ..telemetry import get_bus
from ..telemetry.events import (
    SERVICE_CACHE_HIT,
    SERVICE_CACHE_INVALIDATE,
    SERVICE_CACHE_MISS,
)


class PlanCache:
    """Thread-safe LRU keyed by request fingerprint."""

    def __init__(
        self,
        max_entries: int = 128,
        *,
        directory: Optional[Path] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.directory = Path(directory) if directory is not None else None
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._preload()

    def _preload(self) -> None:
        """Warm the cache from persisted plans, oldest first (LRU order)."""
        paths = sorted(
            self.directory.glob("*.plan.json"),
            key=lambda p: p.stat().st_mtime,
        )
        for path in paths[-self.max_entries:]:
            try:
                entry = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # a torn write is a miss, not a crash
            if isinstance(entry, dict) and "plan" in entry:
                self._entries[path.name[: -len(".plan.json")]] = entry

    def get(self, fingerprint: str) -> Optional[dict]:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                get_bus().emit(
                    SERVICE_CACHE_MISS,
                    source="service",
                    fingerprint=fingerprint,
                )
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            get_bus().emit(
                SERVICE_CACHE_HIT,
                source="service",
                fingerprint=fingerprint,
            )
            return dict(entry)

    def put(self, fingerprint: str, entry: dict) -> None:
        stored = dict(entry)
        with self._lock:
            self._entries[fingerprint] = stored
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self._unlink(evicted)
        # Persist outside the lock: the atomic write is disk I/O, and
        # holding the cache lock across it stalls every hit/miss while
        # the kernel fsyncs.  Concurrent puts of the same fingerprint
        # race benignly — os.replace is atomic, last writer wins, and
        # the in-memory entry is the authority on the next get().
        if self.directory is not None:
            write_json_atomic(
                self.directory / f"{fingerprint}.plan.json", stored
            )

    def snapshot(self) -> dict:
        """Copy of every live entry, LRU-oldest first.

        The fleet router demotes these to its stale tier before fanning
        an invalidation out, so an overloaded fleet can still serve a
        stale-but-flagged plan instead of shedding the request.
        """
        with self._lock:
            return {fp: dict(entry) for fp, entry in self._entries.items()}

    def invalidate(
        self, predicate: Optional[Callable[[str, dict], bool]] = None
    ) -> int:
        """Drop entries matching ``predicate`` (all, if ``None``).

        Returns the number of entries dropped and emits one
        ``service.cache.invalidate`` event with the count and reach.
        """
        with self._lock:
            if predicate is None:
                doomed = list(self._entries)
            else:
                doomed = [
                    fp
                    for fp, entry in self._entries.items()
                    if predicate(fp, entry)
                ]
            for fingerprint in doomed:
                del self._entries[fingerprint]
                self._unlink(fingerprint)
            get_bus().emit(
                SERVICE_CACHE_INVALIDATE,
                source="service",
                dropped=len(doomed),
                remaining=len(self._entries),
            )
            return len(doomed)

    def _unlink(self, fingerprint: str) -> None:
        if self.directory is None:
            return
        try:
            (self.directory / f"{fingerprint}.plan.json").unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
            }
