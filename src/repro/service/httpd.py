"""HTTP front-end for the planner daemon (stdlib only).

A thin :mod:`http.server` layer over :class:`PlannerDaemon` — all
policy (admission, breaker, cache, deadlines) lives in the daemon; this
module only maps the JSON protocol onto status codes:

==========================  =====================================
``POST /plan``              200 served/partial, 400 bad request,
                            429 rejected (+ ``Retry-After``),
                            500 failed
``GET /healthz``            always 200; body carries
                            healthy/degraded detail
``GET /readyz``             200 ready / 503 draining or stopped
``POST /invalidate``        200, body ``{"dropped": N}``
``POST /churn``             200, body ``{"kind", "dropped"}``;
                            400 invalid event
==========================  =====================================

``ThreadingHTTPServer`` gives one thread per connection, so a slow
search never blocks ``/healthz`` — the daemon's own worker pool and
admission queue bound the actual planning concurrency.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..telemetry import get_bus
from ..telemetry.events import SERVICE_HTTP_ACCESS, SERVICE_HTTP_LISTEN
from .daemon import PlannerDaemon
from .protocol import (
    STATUS_REJECTED,
    STATUS_SERVED,
    STATUS_PARTIAL,
    ProtocolError,
    PlanRequest,
)

_STATUS_CODES = {
    STATUS_SERVED: 200,
    STATUS_PARTIAL: 200,
    STATUS_REJECTED: 429,
}


def response_status_code(response) -> int:
    """HTTP code for a terminal :class:`PlanResponse` (shared by the
    daemon front-end and the fleet router front-end)."""
    code = _STATUS_CODES.get(response.status, 500)
    if response.status == STATUS_REJECTED and response.diagnostics:
        # Admission lint rejected the request as invalid: that is a
        # client error (400), not back-pressure (429) — retrying the
        # same payload can never succeed.
        code = 400
    return code


class PlannerHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to a :class:`PlannerDaemon`."""

    daemon_threads = True
    allow_reuse_address = True
    # The stdlib default backlog of 5 drops connections under request
    # bursts (e.g. churn replay while plans are in flight); the kernel
    # clamps this to somaxconn.
    request_queue_size = 64

    def __init__(self, address, daemon: PlannerDaemon) -> None:
        super().__init__(address, _Handler)
        self.planner_daemon = daemon


class JSONHandler(BaseHTTPRequestHandler):
    """Shared JSON-over-HTTP plumbing (telemetry access log, typed
    bodies) for the daemon front-end and the fleet router front-end."""

    protocol_version = "HTTP/1.1"
    #: Telemetry source tag for access-log events.
    telemetry_source = "service"

    def log_message(self, fmt: str, *args) -> None:
        # Route access logs onto the telemetry bus instead of stderr so
        # the daemon run log is the single source of truth.
        get_bus().emit(
            SERVICE_HTTP_ACCESS,
            source=self.telemetry_source,
            client=self.address_string(),
            line=fmt % args,
        )

    def _send_json(
        self, code: int, payload: dict,
        *, retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:.2f}")
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        return payload


class _Handler(JSONHandler):
    @property
    def _daemon(self) -> PlannerDaemon:
        return self.server.planner_daemon  # type: ignore[attr-defined]

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._send_json(200, self._daemon.health())
        elif self.path == "/readyz":
            ready = self._daemon.ready
            self._send_json(200 if ready else 503, {"ready": ready})
        else:
            self._send_json(404, {"error": f"no such path: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/plan":
            self._handle_plan()
        elif self.path == "/invalidate":
            self._handle_invalidate()
        elif self.path == "/churn":
            self._handle_churn()
        else:
            self._send_json(404, {"error": f"no such path: {self.path}"})

    def _handle_plan(self) -> None:
        try:
            request = PlanRequest.from_json(self._read_body())
        except (ProtocolError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        response = self._daemon.submit(request)
        code = response_status_code(response)
        self._send_json(
            code,
            response.to_json(),
            retry_after=response.retry_after,
        )

    def _handle_invalidate(self) -> None:
        try:
            body = self._read_body()
        except (ProtocolError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        gpus = body.get("gpus")
        if gpus is not None and not isinstance(gpus, int):
            self._send_json(400, {"error": "gpus must be an integer"})
            return
        dropped = self._daemon.invalidate_plans(gpus=gpus)
        self._send_json(200, {"dropped": dropped})

    def _handle_churn(self) -> None:
        """One churn event (``ChurnEvent`` JSON): stale plans drop,
        service keeps answering ``/plan`` against the new conditions."""
        try:
            body = self._read_body()
            result = self._daemon.apply_churn(body)
        except (ProtocolError, KeyError, TypeError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._send_json(200, result)


def serve(
    daemon: PlannerDaemon,
    *,
    host: str = "127.0.0.1",
    port: int = 8347,
) -> PlannerHTTPServer:
    """Bind (without blocking) and return the server; the caller runs
    ``serve_forever`` and owns shutdown ordering."""
    server = PlannerHTTPServer((host, port), daemon)
    get_bus().emit(
        SERVICE_HTTP_LISTEN,
        source="service",
        host=host,
        port=server.server_address[1],
    )
    return server
