"""Consistent-hash ring: fingerprints → replicas, stably under churn.

The fleet router shards request fingerprints across replicas with the
classic vnode construction: every replica owns ``vnodes`` points on a
2^64 ring (sha256 of ``"<name>#<i>"``), and a key belongs to the first
replica point clockwise from the key's own hash.  Two properties make
this the right shard function for a plan cache:

* **balance** — with enough vnodes the key space splits near-evenly,
  so no replica's LRU cache or admission queue becomes the hot spot;
* **minimal remapping** — adding or removing one replica only moves
  the keys that land on that replica's vnodes; every other fingerprint
  keeps its owner, so a membership change does not cold-start the
  whole fleet's caches.

Both properties are pinned by hypothesis tests
(``tests/test_fleet.py``), the second one exactly: a key whose owner
changed after a join must now map to the joined replica.

:meth:`HashRing.nodes_for` returns the *failover ladder* — the first
``count`` distinct replicas clockwise — which the router walks when
the primary is down, so retry targets are as stable as the primary
assignment itself.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List


def _point(data: str) -> int:
    """64-bit ring position for ``data`` (sha256 prefix)."""
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring over string node names."""

    def __init__(
        self, nodes: Iterable[str] = (), *, vnodes: int = 128
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: List[str] = []
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------
    def add(self, node: str) -> None:
        """Add ``node``'s vnodes to the ring."""
        if not node or not isinstance(node, str):
            raise ValueError("node must be a non-empty string")
        if node in self._nodes:
            raise ValueError(f"duplicate node {node!r}")
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = _point(f"{node}#{i}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Remove ``node``'s vnodes (exact inverse of :meth:`add`)."""
        if node not in self._nodes:
            raise KeyError(node)
        self._nodes.discard(node)
        kept = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in kept]
        self._owners = [owner for _, owner in kept]

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- lookup --------------------------------------------------------
    def node_for(self, key: str) -> str:
        """The replica owning ``key``."""
        return self.nodes_for(key, 1)[0]

    def nodes_for(self, key: str, count: int = 1) -> List[str]:
        """The first ``count`` distinct replicas clockwise from ``key``
        — the owner followed by its failover ladder."""
        if not self._nodes:
            raise LookupError("hash ring is empty")
        want = min(max(count, 1), len(self._nodes))
        size = len(self._points)
        start = bisect.bisect(self._points, _point(key)) % size
        out: List[str] = []
        seen: set = set()
        for i in range(size):
            owner = self._owners[(start + i) % size]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) == want:
                    break
        return out

    def shares(self, keys: Iterable[str]) -> dict:
        """Fraction of ``keys`` owned per replica (balance check)."""
        counts = {node: 0 for node in self._nodes}
        total = 0
        for key in keys:
            counts[self.node_for(key)] += 1
            total += 1
        if total == 0:
            return {node: 0.0 for node in counts}
        return {node: n / total for node, n in counts.items()}
