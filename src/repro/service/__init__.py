"""Resilient planner service: anytime search behind an
admission-controlled, self-healing daemon.

Every piece is usable as a library on its own — the daemon is just the
composition:

- :class:`~repro.service.protocol.PlanRequest` /
  :class:`~repro.service.protocol.PlanResponse` — the JSON wire
  protocol and the canonical request fingerprint;
- :class:`~repro.service.admission.AdmissionController` — bounded
  priority queue with 429-style rejection and live ``retry_after``;
- :class:`~repro.service.breaker.CircuitBreaker` — per-config
  consecutive-failure breaker with half-open probes;
- :class:`~repro.service.cache.PlanCache` — fingerprint-keyed LRU with
  write-through persistence and explicit invalidation;
- :func:`~repro.service.planner.plan_request` — one request through
  the crash-safe, deadline-aware stage-count search;
- :class:`~repro.service.daemon.PlannerDaemon` — the composition, with
  watchdog, request journal, and SIGTERM drain;
- :func:`~repro.service.httpd.serve` — the stdlib HTTP front-end
  (``repro-serve``).
"""

from .admission import AdmissionController, QueueFullError
from .breaker import BreakerOpenError, CircuitBreaker
from .cache import PlanCache
from .daemon import PlannerDaemon, Ticket
from .httpd import PlannerHTTPServer, serve
from .planner import PlanOutcome, plan_request
from .protocol import (
    PROTOCOL_VERSION,
    STATUS_FAILED,
    STATUS_PARTIAL,
    STATUS_REJECTED,
    STATUS_SERVED,
    TERMINAL_STATUSES,
    PlanRequest,
    PlanResponse,
    ProtocolError,
)

__all__ = [
    "AdmissionController",
    "BreakerOpenError",
    "CircuitBreaker",
    "PROTOCOL_VERSION",
    "PlanCache",
    "PlanOutcome",
    "PlanRequest",
    "PlanResponse",
    "PlannerDaemon",
    "PlannerHTTPServer",
    "ProtocolError",
    "QueueFullError",
    "STATUS_FAILED",
    "STATUS_PARTIAL",
    "STATUS_REJECTED",
    "STATUS_SERVED",
    "TERMINAL_STATUSES",
    "Ticket",
    "plan_request",
    "serve",
]
