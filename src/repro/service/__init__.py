"""Resilient planner service: anytime search behind an
admission-controlled, self-healing daemon — and a fleet of them.

Every piece is usable as a library on its own — the daemon is just the
composition:

- :class:`~repro.service.protocol.PlanRequest` /
  :class:`~repro.service.protocol.PlanResponse` — the JSON wire
  protocol and the canonical request fingerprint;
- :class:`~repro.service.admission.AdmissionController` — bounded
  priority queue with 429-style rejection and live ``retry_after``;
- :class:`~repro.service.breaker.CircuitBreaker` — per-config
  consecutive-failure breaker with half-open probes;
- :class:`~repro.service.cache.PlanCache` — fingerprint-keyed LRU with
  write-through persistence and explicit invalidation;
- :func:`~repro.service.planner.plan_request` — one request through
  the crash-safe, deadline-aware stage-count search;
- :class:`~repro.service.daemon.PlannerDaemon` — the composition, with
  watchdog, request journal, coalescing, and SIGTERM drain;
- :func:`~repro.service.httpd.serve` — the stdlib HTTP front-end
  (``repro-serve``);
- :class:`~repro.service.ring.HashRing` /
  :class:`~repro.service.fleet.FleetRouter` — consistent-hash sharding
  across replicas with failover, hedging, and graceful degradation
  (``repro-fleet``);
- :mod:`~repro.service.chaos` — the seeded kill/restart harness that
  proves the fleet loses nothing.
"""

from .admission import AdmissionController, QueueFullError
from .breaker import BreakerOpenError, CircuitBreaker
from .cache import PlanCache
from .chaos import (
    ChaosEvent,
    ChaosReport,
    InProcessReplica,
    run_chaos,
    seeded_schedule,
    synthetic_planner,
)
from .daemon import PlannerDaemon, Ticket, TicketTimeout
from .fleet import (
    FleetConfig,
    FleetHTTPServer,
    FleetRouter,
    HTTPReplicaClient,
    LocalReplicaClient,
    ReplicaError,
    serve_fleet,
)
from .httpd import PlannerHTTPServer, serve
from .planner import PlanOutcome, plan_digest, plan_request
from .protocol import (
    PROTOCOL_VERSION,
    STATUS_FAILED,
    STATUS_PARTIAL,
    STATUS_REJECTED,
    STATUS_SERVED,
    TERMINAL_STATUSES,
    PlanRequest,
    PlanResponse,
    ProtocolError,
)
from .ring import HashRing

__all__ = [
    "AdmissionController",
    "BreakerOpenError",
    "ChaosEvent",
    "ChaosReport",
    "CircuitBreaker",
    "FleetConfig",
    "FleetHTTPServer",
    "FleetRouter",
    "HTTPReplicaClient",
    "HashRing",
    "InProcessReplica",
    "LocalReplicaClient",
    "PROTOCOL_VERSION",
    "PlanCache",
    "PlanOutcome",
    "PlanRequest",
    "PlanResponse",
    "PlannerDaemon",
    "PlannerHTTPServer",
    "ProtocolError",
    "QueueFullError",
    "ReplicaError",
    "STATUS_FAILED",
    "STATUS_PARTIAL",
    "STATUS_REJECTED",
    "STATUS_SERVED",
    "TERMINAL_STATUSES",
    "Ticket",
    "TicketTimeout",
    "plan_digest",
    "plan_request",
    "run_chaos",
    "seeded_schedule",
    "serve",
    "serve_fleet",
    "synthetic_planner",
]
