"""Planner fleet: shard, fail over, hedge, degrade — never lose a request.

``FleetRouter`` fronts N planner replicas (:class:`PlannerDaemon`
instances, in-process or remote over HTTP) and owns the resilience
policy the single daemon cannot provide for itself:

* **sharding** — request fingerprints are consistent-hashed onto
  replicas (:class:`~repro.service.ring.HashRing`), so each replica's
  plan cache and admission queue sees a stable, near-even slice of the
  fingerprint space and membership changes only remap the keys that
  must move;
* **failover** — a replica that fails at the transport level or
  answers with back-pressure is retried with decorrelated-jitter
  backoff, then the router walks the fingerprint's failover ladder
  (the next distinct replicas clockwise on the ring);
* **hedging** — when the owning replica exceeds its own p99 latency
  budget (scaled up by its polled queue depth, so a busy-but-healthy
  replica is not hedged eagerly), the router races a backup request on
  the next ladder replica and takes whichever answers first;
* **graceful degradation** — when the whole ladder fails, the router
  prefers a deadline-trimmed ``partial`` answer, then a
  stale-but-flagged plan from its demotion tier, and sheds
  (``rejected`` + ``retry_after``) only when it has nothing at all;
* **shared cache tier** — fresh full plans are written through to a
  router-level :class:`PlanCache`, and ``/invalidate`` / ``/churn``
  fan out to every replica, demoting the shared entries to the stale
  tier first.

Every decision is a ``fleet.*`` telemetry event; the router also
persists its membership + health view as a ``*.fleet.json`` artifact
(Tier-A lintable, ``ACE401``–``ACE403``) via atomic writes.
"""

from __future__ import annotations

import json
import queue
import random
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from dataclasses import dataclass, field
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..ioutil import write_json_atomic
from ..telemetry import WARNING, get_bus
from ..telemetry.events import (
    FLEET_FANOUT,
    FLEET_REPLICA_DOWN,
    FLEET_REPLICA_UP,
    FLEET_REQUEST_COMPLETED,
    FLEET_REQUEST_DEGRADED,
    FLEET_REQUEST_FAILOVER,
    FLEET_REQUEST_HEDGED,
    FLEET_REQUEST_ROUTED,
    FLEET_RING_REBUILT,
    FLEET_START,
    FLEET_STOP,
    SERVICE_HTTP_LISTEN,
)
from .cache import PlanCache
from .daemon import PlannerDaemon
from .httpd import JSONHandler, response_status_code
from .protocol import (
    STATUS_REJECTED,
    STATUS_SERVED,
    PlanRequest,
    PlanResponse,
    ProtocolError,
)
from .ring import HashRing

#: Format marker for ``*.fleet.json`` state artifacts.
FLEET_STATE_FORMAT_VERSION = 1


class ReplicaError(RuntimeError):
    """A replica failed at the transport level (no protocol answer)."""


@dataclass(frozen=True)
class FleetConfig:
    """Routing policy knobs (all defaults are deliberately mild)."""

    vnodes: int = 128
    #: Transport-level retries per replica before failing over.
    retries: int = 1
    backoff_base: float = 0.02
    backoff_cap: float = 0.5
    #: Per-attempt wall-clock bound on one replica call.
    request_timeout: float = 60.0
    #: Hedge budget = p99 × factor × (1 + queue_depth × load_weight).
    hedge_factor: float = 1.5
    hedge_min_seconds: float = 0.05
    load_weight: float = 0.25
    #: Deadline used for the degraded (partial-plan) attempt.
    degraded_deadline_seconds: float = 0.5
    health_interval: float = 0.5
    #: Consecutive failed health polls before a replica is marked down.
    down_after: int = 2
    cache_entries: int = 256
    stale_entries: int = 256
    retry_after_seconds: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.hedge_factor <= 0:
            raise ValueError("hedge_factor must be positive")
        if self.down_after < 1:
            raise ValueError("down_after must be >= 1")

    def to_json(self) -> dict:
        return {
            "vnodes": self.vnodes,
            "retries": self.retries,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "request_timeout": self.request_timeout,
            "hedge_factor": self.hedge_factor,
            "hedge_min_seconds": self.hedge_min_seconds,
            "load_weight": self.load_weight,
            "degraded_deadline_seconds": self.degraded_deadline_seconds,
            "health_interval": self.health_interval,
            "down_after": self.down_after,
            "cache_entries": self.cache_entries,
            "stale_entries": self.stale_entries,
            "retry_after_seconds": self.retry_after_seconds,
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FleetConfig":
        return cls(**{
            key: data[key] for key in cls.__dataclass_fields__
            if key in data
        })


# ----------------------------------------------------------------------
# replica transports
# ----------------------------------------------------------------------
class LocalReplicaClient:
    """In-process replica: wraps a :class:`PlannerDaemon` directly.

    ``killed`` simulates a crashed process — every call raises
    :class:`ReplicaError` until the flag clears — which is how the
    chaos harness injects deterministic transport failures.
    """

    def __init__(self, daemon: PlannerDaemon) -> None:
        self.daemon = daemon
        self.killed = False

    def _check(self) -> None:
        if self.killed:
            raise ReplicaError("replica killed")

    def plan(self, payload: dict, timeout: float) -> PlanResponse:
        self._check()
        request = PlanRequest.from_json(payload)
        response = self.daemon.submit(request, timeout=timeout)
        self._check()  # killed mid-flight: the answer is lost
        return response

    def health(self) -> dict:
        self._check()
        return self.daemon.health()

    def ready(self) -> bool:
        self._check()
        return self.daemon.ready

    def invalidate(self, *, gpus: Optional[int] = None) -> dict:
        self._check()
        return {"dropped": self.daemon.invalidate_plans(gpus=gpus)}

    def churn(self, event: dict) -> dict:
        self._check()
        return self.daemon.apply_churn(event)

    def close(self) -> None:
        if not self.killed:
            self.daemon.stop()


class HTTPReplicaClient:
    """Remote replica reached over the daemon's HTTP front-end."""

    def __init__(self, base_url: str) -> None:
        self.base_url = base_url.rstrip("/")

    def _call(
        self, method: str, path: str,
        body: Optional[dict], timeout: float,
    ) -> dict:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as raw:
                return json.loads(raw.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            # The daemon answered: 4xx/5xx bodies are protocol-level
            # responses (rejected/failed), not transport failures.
            try:
                return json.loads(exc.read().decode("utf-8"))
            except (OSError, ValueError) as parse_exc:
                raise ReplicaError(
                    f"HTTP {exc.code} with unparseable body"
                ) from parse_exc
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise ReplicaError(f"{type(exc).__name__}: {exc}") from exc

    def plan(self, payload: dict, timeout: float) -> PlanResponse:
        data = self._call("POST", "/plan", payload, timeout)
        try:
            return PlanResponse.from_json(data)
        except ProtocolError as exc:
            raise ReplicaError(f"malformed response: {exc}") from exc

    def health(self) -> dict:
        return self._call("GET", "/healthz", None, 5.0)

    def ready(self) -> bool:
        try:
            return bool(self._call("GET", "/readyz", None, 5.0)["ready"])
        except (ReplicaError, KeyError):
            return False

    def invalidate(self, *, gpus: Optional[int] = None) -> dict:
        body = {} if gpus is None else {"gpus": gpus}
        return self._call("POST", "/invalidate", body, 10.0)

    def churn(self, event: dict) -> dict:
        return self._call("POST", "/churn", event, 10.0)

    def close(self) -> None:
        pass


@dataclass
class _ReplicaState:
    """Router-side view of one replica's health."""

    client: object
    healthy: bool = True
    consecutive_failures: int = 0
    queue_depth: int = 0
    latencies: deque = field(default_factory=lambda: deque(maxlen=64))


# ----------------------------------------------------------------------
# the router
# ----------------------------------------------------------------------
class FleetRouter:
    """Consistent-hash router with failover, hedging, and degradation."""

    def __init__(
        self,
        replicas: Dict[str, object],
        *,
        config: Optional[FleetConfig] = None,
        state_path: Optional[Path] = None,
    ) -> None:
        if not replicas:
            raise ValueError("fleet needs at least one replica")
        self.config = config or FleetConfig()
        self.state_path = Path(state_path) if state_path else None
        self.ring = HashRing(replicas, vnodes=self.config.vnodes)
        self._lock = threading.Lock()
        self._replicas: Dict[str, _ReplicaState] = {
            name: _ReplicaState(client=client)
            for name, client in replicas.items()
        }
        self.cache = PlanCache(self.config.cache_entries)
        #: fingerprint -> demoted cache entry, served only as last
        #: resort with ``stale=True``.
        self._stale: "Dict[str, dict]" = {}
        self._poller: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.counters = {
            "routed": 0, "completed": 0, "failovers": 0, "hedged": 0,
            "degraded_partial": 0, "degraded_stale": 0, "shed": 0,
        }

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "FleetRouter":
        get_bus().emit(
            FLEET_START,
            source="fleet",
            replicas=sorted(self._replicas),
            vnodes=self.config.vnodes,
        )
        self._stop.clear()
        self._poller = threading.Thread(
            target=self._poll_loop, name="fleet-health", daemon=True
        )
        self._poller.start()
        self.save_state()
        return self

    def stop(self, *, close_replicas: bool = True) -> None:
        self._stop.set()
        if self._poller is not None:
            self._poller.join(timeout=2.0)
            self._poller = None
        if close_replicas:
            for state in self._replicas.values():
                state.client.close()
        self.save_state()
        get_bus().emit(FLEET_STOP, source="fleet", **dict(self.counters))

    # -- membership ----------------------------------------------------
    def add_replica(self, name: str, client: object) -> None:
        with self._lock:
            if name in self._replicas:
                raise ValueError(f"duplicate replica {name!r}")
            self._replicas[name] = _ReplicaState(client=client)
        self.ring.add(name)
        get_bus().emit(
            FLEET_RING_REBUILT,
            source="fleet",
            replicas=sorted(self._replicas),
            joined=name,
        )
        self.save_state()

    def remove_replica(self, name: str, *, close: bool = True) -> None:
        with self._lock:
            state = self._replicas.pop(name)
        self.ring.remove(name)
        if close:
            state.client.close()
        get_bus().emit(
            FLEET_RING_REBUILT,
            source="fleet",
            replicas=sorted(self._replicas),
            left=name,
        )
        self.save_state()

    def replace_client(self, name: str, client: object) -> None:
        """Swap the transport for ``name`` (a restarted replica) without
        disturbing ring assignment or health history."""
        with self._lock:
            self._replicas[name].client = client

    # -- request path --------------------------------------------------
    def submit(self, request: PlanRequest) -> PlanResponse:
        bus = get_bus()
        fingerprint = request.fingerprint()
        ladder = self._ladder(fingerprint)
        with self._lock:
            self.counters["routed"] += 1
        bus.emit(
            FLEET_REQUEST_ROUTED,
            source="fleet",
            fingerprint=fingerprint,
            owner=ladder[0] if ladder else None,
            ladder=ladder,
        )
        response = self._route(request, fingerprint, ladder)
        with self._lock:
            self.counters["completed"] += 1
        bus.emit(
            FLEET_REQUEST_COMPLETED,
            source="fleet",
            fingerprint=fingerprint,
            status=response.status,
            replica=response.replica,
            failovers=response.failovers,
            hedged=response.hedged,
            stale=response.stale,
            cached=response.cached,
        )
        return response

    def _route(
        self, request: PlanRequest, fingerprint: str, ladder: List[str]
    ) -> PlanResponse:
        cached = self.cache.get(fingerprint)
        if cached is not None:
            return PlanResponse(
                status=STATUS_SERVED,
                request_id=0,
                fingerprint=fingerprint,
                plan=cached.get("plan"),
                objective=cached.get("objective"),
                cached=True,
            )
        payload = request.to_json()
        failovers = 0
        reachable = False
        last_response: Optional[PlanResponse] = None
        for position, name in enumerate(ladder):
            backup = ladder[position + 1] if position + 1 < len(ladder) \
                else None
            response = self._attempt(name, backup, payload, fingerprint)
            if response is None:
                failovers += 1
                with self._lock:
                    self.counters["failovers"] += 1
                get_bus().emit(
                    FLEET_REQUEST_FAILOVER,
                    source="fleet",
                    level=WARNING,
                    fingerprint=fingerprint,
                    replica=name,
                    failovers=failovers,
                )
                continue
            reachable = True
            if self._is_backpressure(response):
                # The replica is up but shedding; its ladder successor
                # owns a different queue — try it before degrading.
                last_response = response
                failovers += 1
                with self._lock:
                    self.counters["failovers"] += 1
                get_bus().emit(
                    FLEET_REQUEST_FAILOVER,
                    source="fleet",
                    level=WARNING,
                    fingerprint=fingerprint,
                    replica=name,
                    failovers=failovers,
                    backpressure=True,
                )
                continue
            response.failovers = failovers
            if response.ok and not response.stale and response.plan \
                    is not None and response.status == STATUS_SERVED:
                self.cache.put(fingerprint, {
                    "plan": response.plan,
                    "objective": response.objective,
                    "model": request.model,
                    "gpus": request.gpus,
                    "strategy": request.strategy,
                })
            return response
        return self._degrade(
            request, fingerprint, ladder,
            failovers=failovers,
            reachable=reachable,
            last_response=last_response,
        )

    def _degrade(
        self,
        request: PlanRequest,
        fingerprint: str,
        ladder: List[str],
        *,
        failovers: int,
        reachable: bool,
        last_response: Optional[PlanResponse],
    ) -> PlanResponse:
        """The ladder is exhausted: partial > stale > shed."""
        bus = get_bus()
        if reachable and request.deadline_seconds != \
                self.config.degraded_deadline_seconds:
            # A replica is up but overloaded/slow: ask the owner for a
            # deadline-trimmed anytime answer — a flagged partial plan
            # beats shedding.
            trimmed = dict(request.to_json())
            trimmed["deadline_seconds"] = \
                self.config.degraded_deadline_seconds
            for name in ladder:
                try:
                    response = self._call(
                        name, trimmed,
                        timeout=self.config.degraded_deadline_seconds
                        + self.config.request_timeout,
                    )
                except ReplicaError:
                    continue
                if response.ok and not self._is_backpressure(response):
                    response.replica = name
                    response.failovers = failovers
                    with self._lock:
                        self.counters["degraded_partial"] += 1
                    bus.emit(
                        FLEET_REQUEST_DEGRADED,
                        source="fleet",
                        level=WARNING,
                        fingerprint=fingerprint,
                        mode="partial",
                        replica=name,
                    )
                    return response
        stale = self._stale.get(fingerprint)
        if stale is not None:
            with self._lock:
                self.counters["degraded_stale"] += 1
            bus.emit(
                FLEET_REQUEST_DEGRADED,
                source="fleet",
                level=WARNING,
                fingerprint=fingerprint,
                mode="stale",
                replica=None,
            )
            return PlanResponse(
                status=STATUS_SERVED,
                request_id=0,
                fingerprint=fingerprint,
                plan=stale.get("plan"),
                objective=stale.get("objective"),
                cached=True,
                stale=True,
                failovers=failovers,
            )
        if last_response is not None:
            last_response.failovers = failovers
            return last_response
        with self._lock:
            self.counters["shed"] += 1
        bus.emit(
            FLEET_REQUEST_DEGRADED,
            source="fleet",
            level=WARNING,
            fingerprint=fingerprint,
            mode="shed",
            replica=None,
        )
        return PlanResponse(
            status=STATUS_REJECTED,
            request_id=0,
            fingerprint=fingerprint,
            error="no replica could serve the request",
            retry_after=self.config.retry_after_seconds,
            failovers=failovers,
        )

    # -- per-replica attempt (retries + hedging) -----------------------
    def _attempt(
        self,
        name: str,
        backup: Optional[str],
        payload: dict,
        fingerprint: str,
    ) -> Optional[PlanResponse]:
        """Call ``name`` with bounded retries; ``None`` after the last
        transport failure (the caller fails over)."""
        for attempt in range(self.config.retries + 1):
            if attempt:
                time.sleep(self._retry_delay(fingerprint, attempt))
            try:
                budget = self._hedge_budget(name)
                if backup is not None and budget is not None:
                    return self._race(
                        name, backup, payload, fingerprint, budget
                    )
                return self._call(
                    name, payload, timeout=self.config.request_timeout
                )
            except ReplicaError:
                self._note_failure(name)
        return None

    def _call(
        self, name: str, payload: dict, *, timeout: float
    ) -> PlanResponse:
        with self._lock:
            client = self._replicas[name].client
        started = time.monotonic()
        response = client.plan(payload, timeout)
        elapsed = time.monotonic() - started
        with self._lock:
            state = self._replicas[name]
            state.latencies.append(elapsed)
        self._mark(name, healthy=True)
        response.replica = name
        return response

    def _race(
        self,
        primary: str,
        backup: str,
        payload: dict,
        fingerprint: str,
        budget: float,
    ) -> PlanResponse:
        """Primary call, hedged onto ``backup`` past ``budget`` seconds.

        First answer wins; the loser's response is discarded (both
        daemons cache their result, so the work is not wasted)."""
        results: "queue.Queue[Tuple[str, object]]" = queue.Queue()

        def call(name: str) -> None:
            try:
                results.put((name, self._call(
                    name, payload, timeout=self.config.request_timeout
                )))
            except ReplicaError as exc:
                self._note_failure(name)
                results.put((name, exc))

        threading.Thread(
            target=call, args=(primary,), daemon=True,
            name=f"fleet-call-{primary}",
        ).start()
        try:
            name, outcome = results.get(timeout=budget)
        except queue.Empty:
            with self._lock:
                self.counters["hedged"] += 1
            get_bus().emit(
                FLEET_REQUEST_HEDGED,
                source="fleet",
                fingerprint=fingerprint,
                primary=primary,
                backup=backup,
                budget=budget,
            )
            threading.Thread(
                target=call, args=(backup,), daemon=True,
                name=f"fleet-call-{backup}",
            ).start()
            pending = 2
            deadline = time.monotonic() + self.config.request_timeout
            first_error: Optional[ReplicaError] = None
            while pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    name, outcome = results.get(timeout=remaining)
                except queue.Empty:
                    break
                pending -= 1
                if isinstance(outcome, PlanResponse):
                    outcome.hedged = name == backup
                    return outcome
                first_error = first_error or outcome
            raise first_error or ReplicaError(
                f"hedged call to {primary}/{backup} timed out"
            )
        if isinstance(outcome, ReplicaError):
            raise outcome
        return outcome

    def _is_backpressure(self, response: PlanResponse) -> bool:
        return (
            response.status == STATUS_REJECTED
            and not response.diagnostics
        )

    def _retry_delay(self, fingerprint: str, attempt: int) -> float:
        """Decorrelated jitter, deterministic per (seed, key, attempt)."""
        rng = random.Random(
            f"{self.config.seed}:{fingerprint}:{attempt}"
        )
        low = self.config.backoff_base
        high = min(self.config.backoff_cap, low * (3 ** attempt))
        return rng.uniform(low, max(low, high))

    def _hedge_budget(self, name: str) -> Optional[float]:
        """Seconds to wait on ``name`` before racing its backup, from
        its own observed p99 scaled by its polled queue depth —
        ``None`` (never hedge) until enough latency history exists."""
        with self._lock:
            state = self._replicas.get(name)
            if state is None or len(state.latencies) < 8:
                return None
            ordered = sorted(state.latencies)
            p99 = ordered[min(
                len(ordered) - 1, int(0.99 * (len(ordered) - 1))
            )]
            load = 1.0 + state.queue_depth * self.config.load_weight
        return max(
            self.config.hedge_min_seconds,
            p99 * self.config.hedge_factor * load,
        )

    # -- health --------------------------------------------------------
    def _ladder(self, fingerprint: str) -> List[str]:
        ladder = self.ring.nodes_for(fingerprint, len(self.ring))
        with self._lock:
            healthy = {
                name for name, state in self._replicas.items()
                if state.healthy
            }
        # Stable partition: healthy replicas keep ring order; down ones
        # stay reachable as a last resort (health polling lags crashes).
        return [n for n in ladder if n in healthy] + \
            [n for n in ladder if n not in healthy]

    def _note_failure(self, name: str) -> None:
        with self._lock:
            state = self._replicas.get(name)
            if state is None:
                return
            state.consecutive_failures += 1
            flip = (
                state.healthy
                and state.consecutive_failures >= self.config.down_after
            )
            if flip:
                state.healthy = False
        if flip:
            get_bus().emit(
                FLEET_REPLICA_DOWN,
                source="fleet",
                level=WARNING,
                replica=name,
            )
            self.save_state()

    def _mark(self, name: str, *, healthy: bool) -> None:
        if not healthy:
            self._note_failure(name)
            return
        with self._lock:
            state = self._replicas.get(name)
            if state is None:
                return
            flip = not state.healthy
            state.healthy = True
            state.consecutive_failures = 0
        if flip:
            get_bus().emit(FLEET_REPLICA_UP, source="fleet", replica=name)
            self.save_state()

    def _poll_loop(self) -> None:
        while not self._stop.wait(self.config.health_interval):
            with self._lock:
                names = list(self._replicas)
            for name in names:
                with self._lock:
                    state = self._replicas.get(name)
                    client = state.client if state else None
                if client is None:
                    continue
                try:
                    health = client.health()
                except ReplicaError:
                    self._note_failure(name)
                    continue
                with self._lock:
                    state = self._replicas.get(name)
                    if state is not None:
                        state.queue_depth = int(
                            health.get("queue_depth", 0)
                        )
                self._mark(name, healthy=True)

    # -- shared cache tier ---------------------------------------------
    def _demote_to_stale(self) -> int:
        """Move every shared-cache entry into the stale tier (bounded)."""
        snapshot = self.cache.snapshot()
        with self._lock:
            self._stale.update(snapshot)
            while len(self._stale) > self.config.stale_entries:
                self._stale.pop(next(iter(self._stale)))
        return len(snapshot)

    def invalidate(self, *, gpus: Optional[int] = None) -> dict:
        """Drop shared-tier plans (demoting them to stale) and fan the
        invalidation out to every replica."""
        demoted = self._demote_to_stale()
        if gpus is None:
            dropped = self.cache.invalidate()
        else:
            dropped = self.cache.invalidate(
                lambda _fp, entry: entry.get("gpus") == gpus
            )
        per_replica = self._fanout("invalidate", {"gpus": gpus})
        return {
            "dropped": dropped,
            "demoted": demoted,
            "replicas": per_replica,
        }

    def churn(self, event: dict) -> dict:
        """Fold one churn event into the whole fleet."""
        demoted = self._demote_to_stale()
        dropped = self.cache.invalidate()
        per_replica = self._fanout("churn", event)
        return {
            "dropped": dropped,
            "demoted": demoted,
            "replicas": per_replica,
        }

    def _fanout(self, op: str, body: dict) -> dict:
        with self._lock:
            targets = list(self._replicas.items())
        outcomes = {}
        for name, state in targets:
            try:
                if op == "invalidate":
                    gpus = body.get("gpus")
                    outcomes[name] = state.client.invalidate(gpus=gpus)
                else:
                    outcomes[name] = state.client.churn(body)
            except ReplicaError as exc:
                self._note_failure(name)
                outcomes[name] = {"error": str(exc)}
        get_bus().emit(
            FLEET_FANOUT,
            source="fleet",
            op=op,
            replicas=sorted(outcomes),
            errors=sorted(
                n for n, o in outcomes.items() if "error" in o
            ),
        )
        return outcomes

    # -- introspection / persistence -----------------------------------
    def fleet_health(self) -> dict:
        with self._lock:
            replicas = {
                name: {
                    "healthy": state.healthy,
                    "consecutive_failures": state.consecutive_failures,
                    "queue_depth": state.queue_depth,
                    "observed_calls": len(state.latencies),
                }
                for name, state in self._replicas.items()
            }
            counters = dict(self.counters)
        healthy = sum(1 for r in replicas.values() if r["healthy"])
        return {
            "status": "healthy" if healthy == len(replicas)
            else ("degraded" if healthy else "down"),
            "replicas": replicas,
            "counters": counters,
            "cache": self.cache.stats(),
            "stale_entries": len(self._stale),
        }

    @property
    def ready(self) -> bool:
        with self._lock:
            return any(s.healthy for s in self._replicas.values())

    def save_state(self) -> Optional[Path]:
        """Persist membership + health as a ``*.fleet.json`` artifact."""
        if self.state_path is None:
            return None
        with self._lock:
            replicas = [
                {
                    "name": name,
                    "healthy": state.healthy,
                    "address": getattr(state.client, "base_url", None),
                }
                for name, state in sorted(self._replicas.items())
            ]
        return write_json_atomic(self.state_path, {
            "format_version": FLEET_STATE_FORMAT_VERSION,
            "fleet": self.config.to_json(),
            "replicas": replicas,
        })


# ----------------------------------------------------------------------
# HTTP front-end
# ----------------------------------------------------------------------
class FleetHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to a :class:`FleetRouter`."""

    daemon_threads = True
    allow_reuse_address = True
    request_queue_size = 64

    def __init__(self, address, router: FleetRouter) -> None:
        super().__init__(address, _FleetHandler)
        self.fleet_router = router


class _FleetHandler(JSONHandler):
    telemetry_source = "fleet"

    @property
    def _router(self) -> FleetRouter:
        return self.server.fleet_router  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._send_json(200, self._router.fleet_health())
        elif self.path == "/readyz":
            ready = self._router.ready
            self._send_json(200 if ready else 503, {"ready": ready})
        else:
            self._send_json(404, {"error": f"no such path: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/plan":
            self._handle_plan()
        elif self.path == "/invalidate":
            self._handle_invalidate()
        elif self.path == "/churn":
            self._handle_churn()
        else:
            self._send_json(404, {"error": f"no such path: {self.path}"})

    def _handle_plan(self) -> None:
        try:
            request = PlanRequest.from_json(self._read_body())
        except (ProtocolError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        response = self._router.submit(request)
        self._send_json(
            response_status_code(response),
            response.to_json(),
            retry_after=response.retry_after,
        )

    def _handle_invalidate(self) -> None:
        try:
            body = self._read_body()
        except (ProtocolError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        gpus = body.get("gpus")
        if gpus is not None and not isinstance(gpus, int):
            self._send_json(400, {"error": "gpus must be an integer"})
            return
        self._send_json(200, self._router.invalidate(gpus=gpus))

    def _handle_churn(self) -> None:
        try:
            body = self._read_body()
            result = self._router.churn(body)
        except (ProtocolError, KeyError, TypeError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._send_json(200, result)


def serve_fleet(
    router: FleetRouter,
    *,
    host: str = "127.0.0.1",
    port: int = 8348,
) -> FleetHTTPServer:
    """Bind (without blocking) and return the server; the caller runs
    ``serve_forever`` and owns shutdown ordering."""
    server = FleetHTTPServer((host, port), router)
    get_bus().emit(
        SERVICE_HTTP_LISTEN,
        source="fleet",
        host=host,
        port=server.server_address[1],
    )
    return server
