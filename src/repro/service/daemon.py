"""The resilient planner daemon: admission → breaker → cache → search.

``PlannerDaemon`` owns a worker pool (``ThreadPoolExecutor``) that
consumes an admission-controlled priority queue of plan requests.  Each
request flows through:

1. **plan cache** — repeat fingerprints answer in O(1), no search;
2. **circuit breaker** — known-bad configurations fail fast with the
   last recorded error instead of re-forking subprocess trees;
3. **anytime search** — the planner runs under the request's
   cooperative :class:`~repro.core.budget.Deadline`; running out of
   time yields the best-so-far plan flagged ``partial``, never an
   exception;
4. **watchdog** — a background thread cancels the deadline of any
   request stuck past its cutoff, which makes the stage-count driver
   reap its subprocess workers.

Lifecycle: :meth:`drain` (wired to SIGTERM by ``repro-serve``) stops
admission, rejects the queued backlog with ``retry_after``, cancels
in-flight deadlines so searches stop at the next iteration boundary,
and relies on the per-request ``SearchCheckpoint`` files already on
disk — a restarted daemon re-admits the journaled requests and resumes
their completed stage counts bit-exactly.

Every decision emits a ``service.*`` event on the telemetry bus, so a
degraded daemon is diagnosable from its run log alone.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..core.budget import Deadline
from ..ioutil import write_json_atomic
from ..lint.diagnostics import ERROR as LINT_ERROR
from ..lint.requests import analyze_plan_request
from ..telemetry import WARNING, get_bus
from ..telemetry.events import (
    COALESCE_ATTACH,
    COALESCE_FANOUT,
    ELASTIC_CACHE_INVALIDATE,
    SERVICE_DRAIN_BEGIN,
    SERVICE_DRAIN_END,
    SERVICE_REQUEST_COMPLETED,
    SERVICE_REQUEST_FAILED,
    SERVICE_REQUEST_INVALID,
    SERVICE_REQUEST_READMITTED,
    SERVICE_REQUEST_RECEIVED,
    SERVICE_REQUEST_REJECTED,
    SERVICE_REQUEST_STARTED,
    SERVICE_START,
    SERVICE_WATCHDOG_REAP,
)
from .admission import AdmissionController, QueueFullError
from .breaker import BreakerOpenError, CircuitBreaker
from .cache import PlanCache
from .planner import plan_request
from .protocol import (
    STATUS_FAILED,
    STATUS_PARTIAL,
    STATUS_REJECTED,
    STATUS_SERVED,
    PlanRequest,
    PlanResponse,
)

#: Seconds past an expired deadline before the watchdog cancels it
#: (cooperative searches normally stop themselves well before this).
WATCHDOG_GRACE = 2.0


@dataclass(frozen=True)
class TicketTimeout:
    """Typed :meth:`Ticket.wait` outcome: the caller's patience ran out.

    Distinguishable from a shed request (that is a ``rejected``
    :class:`PlanResponse`) and from a failed search (``failed``): the
    search is *still running* — its result will land in the plan cache
    — only this waiter gave up.
    """

    request_id: int
    fingerprint: str
    waited_seconds: float

    @property
    def ok(self) -> bool:
        return False


@dataclass
class Ticket:
    """One admitted request in flight through the daemon."""

    request: PlanRequest
    request_id: int
    fingerprint: str
    deadline: Optional[Deadline] = None
    submitted: float = 0.0
    response: Optional[PlanResponse] = None
    done: threading.Event = field(default_factory=threading.Event)
    #: Same-fingerprint tickets sharing this ticket's in-flight search;
    #: resolved by fan-out when this (primary) ticket finishes.
    waiters: List["Ticket"] = field(default_factory=list)
    #: Whether this ticket rides another ticket's search.
    coalesced: bool = False

    def wait(
        self, timeout: Optional[float] = None
    ) -> Union[PlanResponse, TicketTimeout]:
        """Block until the terminal response, or a typed
        :class:`TicketTimeout` when ``timeout`` elapses first."""
        started = time.monotonic()
        if self.done.wait(timeout):
            return self.response
        return TicketTimeout(
            request_id=self.request_id,
            fingerprint=self.fingerprint,
            waited_seconds=time.monotonic() - started,
        )


class PlannerDaemon:
    """Admission-controlled, self-healing planner service."""

    def __init__(
        self,
        *,
        planner: Optional[Callable] = None,
        workers: int = 2,
        queue_limit: int = 8,
        breaker_threshold: int = 3,
        breaker_reset_seconds: float = 30.0,
        cache_entries: int = 128,
        state_dir: Optional[Path] = None,
        watchdog_interval: float = 0.25,
        watchdog_grace: float = WATCHDOG_GRACE,
        search_workers: int = 1,
        timeout_per_count: Optional[float] = None,
        worker_memory_mb: Optional[float] = None,
        admission_lint: Optional[bool] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.state_dir = Path(state_dir) if state_dir is not None else None
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        self._planner = planner or self._default_planner
        # The Tier-A admission lint validates requests against the real
        # model registry and paper cluster, which only describes the
        # default planner; injected planners (tests, alternative
        # back-ends) define their own model namespace, so lint defaults
        # to on exactly when the default planner is in use.
        self._admission_lint = (
            admission_lint if admission_lint is not None else planner is None
        )
        self._search_workers = search_workers
        self._timeout_per_count = timeout_per_count
        self._worker_memory_mb = worker_memory_mb
        self.admission = AdmissionController(queue_limit, workers=workers)
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            reset_seconds=breaker_reset_seconds,
        )
        self.cache = PlanCache(cache_entries, directory=self.state_dir)
        self._watchdog_interval = watchdog_interval
        self._watchdog_grace = watchdog_grace
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._in_flight: Dict[int, Ticket] = {}
        #: fingerprint -> primary ticket whose search later same-
        #: fingerprint submissions ride (request coalescing).
        self._coalesce: Dict[str, Ticket] = {}
        self._coalesced_total = 0
        self._executor: Optional[ThreadPoolExecutor] = None
        self._watchdog: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = False
        self._draining = False
        self.counters = {
            "served": 0, "partial": 0, "rejected": 0, "failed": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PlannerDaemon":
        if self._started:
            raise RuntimeError("daemon already started")
        self._started = True
        self._stop.clear()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="planner-worker",
        )
        for _ in range(self.workers):
            self._executor.submit(self._worker_loop)
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="planner-watchdog",
            daemon=True,
        )
        self._watchdog.start()
        get_bus().emit(
            SERVICE_START,
            source="service",
            workers=self.workers,
            queue_limit=self.admission.max_pending,
            state_dir=str(self.state_dir) if self.state_dir else None,
        )
        self._readmit_journaled()
        return self

    @property
    def ready(self) -> bool:
        """Accepting new requests (``/readyz``)."""
        return self._started and not self._draining

    def health(self) -> dict:
        """Liveness + degradation report (``/healthz``).

        ``degraded`` while any breaker is open, the queue is saturated,
        or a drain is in progress — ``healthy`` again once the breaker
        closes and the queue has room.
        """
        breakers = self.breaker.snapshot()
        degraded = (
            self._draining
            or self.admission.saturated
            or any(b["state"] != "closed" for b in breakers.values())
        )
        with self._lock:
            in_flight = len(self._in_flight)
            coalesce = {
                "in_flight": len(self._coalesce),
                "waiters": sum(
                    len(t.waiters) for t in self._coalesce.values()
                ),
                "total": self._coalesced_total,
            }
            counters = dict(self.counters)
        queue = self.admission.stats()
        return {
            "status": "degraded" if degraded else "healthy",
            "ready": self.ready,
            "draining": self._draining,
            "in_flight": in_flight,
            # Surfaced top-level so fleet routers can poll the load
            # factor without digging into the queue sub-dict.
            "queue_depth": queue.get("depth", 0),
            "queue": queue,
            "coalesce": coalesce,
            "breakers": breakers,
            "cache": self.cache.stats(),
            "requests": counters,
        }

    def drain(self, timeout: Optional[float] = 30.0) -> dict:
        """Graceful shutdown: shed the queue, checkpoint in-flight work.

        Queued requests are answered ``rejected`` (their journal files
        stay on disk, so a restarted daemon re-admits them); in-flight
        searches get their deadlines cancelled and stop at the next
        iteration boundary, leaving completed stage counts in their
        ``SearchCheckpoint``.  Returns a summary of what was shed.
        """
        if not self._started:
            return {"queued_shed": 0, "in_flight_interrupted": 0}
        self._draining = True
        bus = get_bus()
        shed = self.admission.drain()
        bus.emit(
            SERVICE_DRAIN_BEGIN,
            source="service",
            level=WARNING,
            queued=len(shed),
        )
        for ticket in shed:
            self._finish(
                ticket,
                PlanResponse(
                    status=STATUS_REJECTED,
                    request_id=ticket.request_id,
                    fingerprint=ticket.fingerprint,
                    error="daemon draining",
                    retry_after=timeout,
                ),
                keep_journal=True,
            )
        with self._lock:
            interrupted = list(self._in_flight.values())
        for ticket in interrupted:
            if ticket.deadline is not None:
                ticket.deadline.cancel()
        waited_from = time.monotonic()
        while timeout is None or time.monotonic() - waited_from < timeout:
            with self._lock:
                if not self._in_flight:
                    break
            time.sleep(0.02)
        self.admission.close()
        self._stop.set()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._watchdog is not None:
            self._watchdog.join(timeout=2.0)
        self._started = False
        summary = {
            "queued_shed": len(shed),
            "in_flight_interrupted": len(interrupted),
        }
        bus.emit(SERVICE_DRAIN_END, source="service", **summary)
        return summary

    def stop(self) -> None:
        """Immediate drain with no patience (tests, atexit)."""
        self.drain(timeout=5.0)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self, request: PlanRequest, timeout: Optional[float] = None
    ) -> PlanResponse:
        """Admit ``request`` and block for its terminal response."""
        ticket_or_response = self.submit_nowait(request)
        if isinstance(ticket_or_response, PlanResponse):
            return ticket_or_response
        response = ticket_or_response.wait(timeout)
        if isinstance(response, TicketTimeout):
            # The caller gave up waiting; the search continues and will
            # land in the cache, but this client sees a failure.
            return PlanResponse(
                status=STATUS_FAILED,
                request_id=response.request_id,
                fingerprint=response.fingerprint,
                error=(
                    "timed out waiting for a response after "
                    f"{response.waited_seconds:.2f}s"
                ),
                elapsed_seconds=response.waited_seconds,
            )
        return response

    def submit_nowait(self, request: PlanRequest):
        """Admit ``request``; returns a :class:`Ticket` to wait on, or
        an immediate :class:`PlanResponse` (cache hit / rejection)."""
        bus = get_bus()
        request_id = next(self._ids)
        fingerprint = request.fingerprint()
        bus.emit(
            SERVICE_REQUEST_RECEIVED,
            source="service",
            request_id=request_id,
            fingerprint=fingerprint,
            model=request.model,
            gpus=request.gpus,
            priority=request.priority,
            deadline_seconds=request.deadline_seconds,
        )
        if not self.ready:
            return self._count(PlanResponse(
                status=STATUS_REJECTED,
                request_id=request_id,
                fingerprint=fingerprint,
                error="daemon is not accepting requests",
                retry_after=1.0,
            ))
        cached = self.cache.get(fingerprint)
        if cached is not None:
            journal = self._journal_path(fingerprint)
            if journal is not None and journal.exists():
                # A journaled request answered by the warm cache (e.g.
                # re-admitted after a restart) is done — drop its entry.
                try:
                    journal.unlink()
                except OSError:
                    pass
            response = self._count(PlanResponse(
                status=STATUS_SERVED,
                request_id=request_id,
                fingerprint=fingerprint,
                plan=cached.get("plan"),
                objective=cached.get("objective"),
                cached=True,
            ))
            bus.emit(
                SERVICE_REQUEST_COMPLETED,
                source="service",
                request_id=request_id,
                fingerprint=fingerprint,
                status=response.status,
                cached=True,
            )
            return response
        # Request coalescing: a second request for a fingerprint whose
        # search is already queued or running attaches to that ticket
        # instead of burning another search worker — one search, many
        # waiters, each fanned an identical (flagged) response.
        with self._lock:
            primary = self._coalesce.get(fingerprint)
            if primary is not None:
                follower = Ticket(
                    request=request,
                    request_id=request_id,
                    fingerprint=fingerprint,
                    submitted=time.monotonic(),
                    coalesced=True,
                )
                primary.waiters.append(follower)
                self._coalesced_total += 1
                bus.emit(
                    COALESCE_ATTACH,
                    source="service",
                    request_id=request_id,
                    fingerprint=fingerprint,
                    primary_request_id=primary.request_id,
                )
                return follower
        # Admission lint (Tier A): a request naming an unknown model, an
        # unbuildable cluster, or a model whose weight state cannot fit
        # the cluster under any plan is rejected with structured
        # diagnostics instead of burning a search worker on it.
        invalid = [
            d for d in analyze_plan_request(request)
            if d.severity == LINT_ERROR
        ] if self._admission_lint else []
        if invalid:
            bus.emit(
                SERVICE_REQUEST_INVALID,
                source="service",
                level=WARNING,
                request_id=request_id,
                fingerprint=fingerprint,
                codes=[d.code for d in invalid],
            )
            return self._count(PlanResponse(
                status=STATUS_REJECTED,
                request_id=request_id,
                fingerprint=fingerprint,
                error="; ".join(d.message for d in invalid),
                diagnostics=[d.to_json() for d in invalid],
            ))
        try:
            self.breaker.check(self._breaker_key(request))
        except BreakerOpenError as exc:
            return self._count(PlanResponse(
                status=STATUS_REJECTED,
                request_id=request_id,
                fingerprint=fingerprint,
                error=str(exc),
                retry_after=exc.retry_after,
            ))
        ticket = Ticket(
            request=request,
            request_id=request_id,
            fingerprint=fingerprint,
            submitted=time.monotonic(),
        )
        # Register as the coalescing primary *before* enqueueing so a
        # concurrent same-fingerprint submit can never slip between
        # enqueue and registration and start a duplicate search.
        with self._lock:
            self._coalesce[fingerprint] = ticket
        # Journal before enqueueing: a worker may pop and finish the
        # ticket (unlinking the journal) the instant it is queued.
        self._journal(ticket)
        try:
            self.admission.submit(ticket, priority=request.priority)
        except QueueFullError as exc:
            path = self._journal_path(fingerprint)
            if path is not None:
                try:
                    path.unlink()
                except OSError:
                    pass
            # Route through _finish so any waiter that attached in the
            # registration window is fanned the same rejection.
            self._finish(ticket, PlanResponse(
                status=STATUS_REJECTED,
                request_id=request_id,
                fingerprint=fingerprint,
                error=str(exc),
                retry_after=exc.retry_after,
            ))
            return ticket.response
        return ticket

    def invalidate_plans(self, *, gpus: Optional[int] = None) -> int:
        """Drop cached plans — all, or those for a ``gpus``-sized
        cluster — because a fault plan or cluster change arrived."""
        if gpus is None:
            return self.cache.invalidate()
        return self.cache.invalidate(
            lambda _fp, entry: entry.get("gpus") == gpus
        )

    def apply_churn(self, event) -> dict:
        """Fold one churn event into the serving state.

        ``event`` is a :class:`~repro.elastic.timeline.ChurnEvent` or
        its dict form.  Every kind stales cached plans (capacity events
        change the feasible shapes, performance events change every
        cached objective), so the whole cache is dropped; in-flight and
        subsequent ``/plan`` requests keep being answered — fresh
        searches simply see the new conditions.
        """
        from ..elastic.timeline import ChurnEvent

        if isinstance(event, dict):
            event = ChurnEvent.from_dict(event)
        dropped = self.invalidate_plans()
        bus = get_bus()
        if bus.active:
            bus.emit(
                ELASTIC_CACHE_INVALIDATE,
                source="service",
                level=WARNING,
                # ``kind`` is TelemetryBus.emit's reserved event-kind
                # parameter; the churn kind travels under its own name.
                churn_kind=event.kind,
                time=event.time,
                dropped=dropped,
            )
        return {"kind": event.kind, "dropped": dropped}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _default_planner(self, request, *, deadline=None,
                         checkpoint_path=None):
        return plan_request(
            request,
            deadline=deadline,
            checkpoint_path=checkpoint_path,
            search_workers=self._search_workers,
            timeout_per_count=self._timeout_per_count,
            worker_memory_mb=self._worker_memory_mb,
        )

    @staticmethod
    def _breaker_key(request: PlanRequest) -> str:
        counts = (
            ",".join(map(str, request.stage_counts))
            if request.stage_counts is not None
            else "auto"
        )
        return f"{request.model}/gpus={request.gpus}/counts={counts}"

    def _count(self, response: PlanResponse) -> PlanResponse:
        key = response.status
        # Worker threads finish requests concurrently; the counter
        # update is a read-modify-write and must hold the lock (every
        # caller invokes _count outside the locked regions).
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + 1
        if response.status == STATUS_REJECTED:
            get_bus().emit(
                SERVICE_REQUEST_REJECTED,
                source="service",
                level=WARNING,
                request_id=response.request_id,
                fingerprint=response.fingerprint,
                error=response.error,
                retry_after=response.retry_after,
            )
        return response

    def _journal_path(self, fingerprint: str) -> Optional[Path]:
        if self.state_dir is None:
            return None
        return self.state_dir / f"{fingerprint}.request.json"

    def _checkpoint_path(self, fingerprint: str) -> Optional[Path]:
        if self.state_dir is None:
            return None
        return self.state_dir / f"{fingerprint}.ckpt.json"

    def _journal(self, ticket: Ticket) -> None:
        path = self._journal_path(ticket.fingerprint)
        if path is None:
            return
        write_json_atomic(path, ticket.request.to_json())

    def _readmit_journaled(self) -> None:
        """Re-admit requests a previous daemon journaled but never
        finished (the other half of the SIGTERM drain contract)."""
        if self.state_dir is None:
            return
        for path in sorted(self.state_dir.glob("*.request.json")):
            try:
                request = PlanRequest.from_json(
                    json.loads(path.read_text())
                )
            except (OSError, ValueError):
                continue  # torn journal entry: the client will retry
            get_bus().emit(
                SERVICE_REQUEST_READMITTED,
                source="service",
                fingerprint=request.fingerprint(),
                model=request.model,
            )
            outcome = self.submit_nowait(request)
            if (
                isinstance(outcome, PlanResponse)
                and outcome.status == STATUS_REJECTED
            ):
                # Queue full: restore this journal entry (the rejection
                # path unlinked it) and leave the rest for the next
                # restart.
                try:
                    write_json_atomic(path, request.to_json())
                except OSError:
                    pass
                break

    def _finish(
        self, ticket: Ticket, response: PlanResponse,
        *, keep_journal: bool = False,
    ) -> None:
        if not keep_journal:
            path = self._journal_path(ticket.fingerprint)
            if path is not None:
                try:
                    path.unlink()
                except OSError:
                    pass
        # Atomically retire the coalescing registration and capture the
        # waiter list; attaches happen under the same lock, so a waiter
        # either rides this fan-out or finds no primary and queues its
        # own (cache-warm) search.
        with self._lock:
            if self._coalesce.get(ticket.fingerprint) is ticket:
                del self._coalesce[ticket.fingerprint]
            waiters = list(ticket.waiters)
            ticket.waiters.clear()
        ticket.response = response
        self._count(response)
        ticket.done.set()
        if waiters:
            get_bus().emit(
                COALESCE_FANOUT,
                source="service",
                fingerprint=ticket.fingerprint,
                primary_request_id=ticket.request_id,
                waiters=len(waiters),
                status=response.status,
            )
        for waiter in waiters:
            waiter.response = self._count(replace(
                response,
                request_id=waiter.request_id,
                coalesced=True,
            ))
            waiter.done.set()

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            ticket = self.admission.next(timeout=0.1)
            if ticket is None:
                continue
            try:
                self._serve(ticket)
            except BaseException as exc:  # noqa: BLE001 - never lose a ticket
                self._finish(ticket, PlanResponse(
                    status=STATUS_FAILED,
                    request_id=ticket.request_id,
                    fingerprint=ticket.fingerprint,
                    error=f"internal error: {type(exc).__name__}: {exc}",
                ))

    def _serve(self, ticket: Ticket) -> None:
        bus = get_bus()
        request = ticket.request
        started = time.monotonic()
        # Another worker may have planned the same fingerprint while
        # this ticket queued; a cache hit now skips the whole search.
        cached = self.cache.get(ticket.fingerprint)
        if cached is not None:
            self._finish(ticket, PlanResponse(
                status=STATUS_SERVED,
                request_id=ticket.request_id,
                fingerprint=ticket.fingerprint,
                plan=cached.get("plan"),
                objective=cached.get("objective"),
                cached=True,
            ))
            return
        key = self._breaker_key(request)
        ticket.deadline = Deadline(request.deadline_seconds)
        with self._lock:
            self._in_flight[ticket.request_id] = ticket
        bus.emit(
            SERVICE_REQUEST_STARTED,
            source="service",
            request_id=ticket.request_id,
            fingerprint=ticket.fingerprint,
            model=request.model,
        )
        try:
            outcome = self._planner(
                request,
                deadline=ticket.deadline,
                checkpoint_path=self._checkpoint_path(ticket.fingerprint),
            )
        except Exception as exc:  # noqa: BLE001 - map to terminal response
            elapsed = time.monotonic() - started
            error = f"{type(exc).__name__}: {exc}"
            if not self._draining:
                # A drain-cancelled search is not the config's fault;
                # don't poison the breaker with it.
                self.breaker.record_failure(
                    key, error, model=request.model, gpus=request.gpus
                )
            bus.emit(
                SERVICE_REQUEST_FAILED,
                source="service",
                level=WARNING,
                request_id=ticket.request_id,
                fingerprint=ticket.fingerprint,
                error=error,
                elapsed=elapsed,
            )
            self._finish(
                ticket,
                PlanResponse(
                    status=STATUS_FAILED,
                    request_id=ticket.request_id,
                    fingerprint=ticket.fingerprint,
                    error=error,
                    elapsed_seconds=elapsed,
                ),
                keep_journal=self._draining,
            )
            return
        finally:
            with self._lock:
                self._in_flight.pop(ticket.request_id, None)
            self.admission.note_service_seconds(
                time.monotonic() - started
            )
        elapsed = time.monotonic() - started
        partial = bool(outcome.partial)
        self.breaker.record_success(key)
        entry = {
            "plan": outcome.plan,
            "objective": outcome.objective,
            "model": request.model,
            "gpus": request.gpus,
            "strategy": request.strategy,
        }
        if not partial:
            # Partial plans answer their own request but must not be
            # served to later callers as the full search's answer.
            self.cache.put(ticket.fingerprint, entry)
            checkpoint = self._checkpoint_path(ticket.fingerprint)
            if checkpoint is not None:
                try:
                    checkpoint.unlink()
                except OSError:
                    pass
        bus.emit(
            SERVICE_REQUEST_COMPLETED,
            source="service",
            request_id=ticket.request_id,
            fingerprint=ticket.fingerprint,
            status=STATUS_PARTIAL if partial else STATUS_SERVED,
            cached=False,
            partial=partial,
            objective=outcome.objective,
            elapsed=elapsed,
        )
        self._finish(
            ticket,
            PlanResponse(
                status=STATUS_PARTIAL if partial else STATUS_SERVED,
                request_id=ticket.request_id,
                fingerprint=ticket.fingerprint,
                plan=outcome.plan,
                objective=outcome.objective,
                elapsed_seconds=elapsed,
                failures=outcome.failures,
            ),
            keep_journal=partial and self._draining,
        )

    def _watchdog_loop(self) -> None:
        """Reap requests stuck past their deadline.

        The search honours its deadline cooperatively; if a request is
        still in flight ``watchdog_grace`` seconds past the cutoff,
        something is wedged (a hung subprocess, a stuck estimate) —
        cancelling the deadline forces the stage-count driver to
        terminate its workers and return what it has.
        """
        while not self._stop.wait(self._watchdog_interval):
            with self._lock:
                tickets = list(self._in_flight.values())
            for ticket in tickets:
                deadline = ticket.deadline
                if deadline is None or deadline.cancelled:
                    continue
                remaining = deadline.remaining()
                if remaining is None or remaining > 0:
                    continue
                if deadline.seconds is None:
                    continue
                overdue = (
                    time.monotonic()
                    - (ticket.submitted + deadline.seconds)
                )
                if overdue >= self._watchdog_grace:
                    get_bus().emit(
                        SERVICE_WATCHDOG_REAP,
                        source="service",
                        level=WARNING,
                        request_id=ticket.request_id,
                        fingerprint=ticket.fingerprint,
                        overdue=overdue,
                    )
                    deadline.cancel()
