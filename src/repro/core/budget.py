"""Search budget accounting and cooperative deadlines.

The paper gives every search a fixed wall-clock budget (200 s in §5.1).
Tests and CI-sized benchmarks need determinism, so the budget also
supports iteration and estimate limits; whichever trips first ends the
search.

:class:`Deadline` is the service-facing cousin of the budget: an
absolute wall-clock cutoff shared by a whole request (possibly spanning
several per-stage-count searches), checked cooperatively and
cancellable from another thread.  A budget says "how much work may this
search do"; a deadline says "by when must an answer exist" — the search
that hits one returns its best-so-far plan flagged partial instead of
raising.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable, Optional


class Deadline:
    """Cooperative wall-clock cutoff, optionally cancellable.

    ``seconds=None`` never expires on its own but can still be
    :meth:`cancel`-ed (the planner daemon's drain and watchdog use this
    to stop in-flight searches at the next iteration boundary).  The
    ``clock`` is injectable so tests can trip a deadline at an exact,
    deterministic point in the search.
    """

    __slots__ = ("seconds", "_clock", "_expires_at", "_cancelled")

    def __init__(
        self,
        seconds: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError("deadline seconds must be non-negative")
        self.seconds = seconds
        self._clock = clock
        self._expires_at = None if seconds is None else clock() + seconds
        self._cancelled = False

    def cancel(self) -> None:
        """Expire the deadline immediately (thread-safe: one bool write)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def expired(self) -> bool:
        if self._cancelled:
            return True
        return (
            self._expires_at is not None
            and self._clock() >= self._expires_at
        )

    def remaining(self) -> Optional[float]:
        """Seconds left, ``None`` if unbounded, ``0.0`` once expired."""
        if self._cancelled:
            return 0.0
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock())


class BudgetKwargsError(ValueError):
    """Unknown :class:`SearchBudget` keyword argument(s).

    Still a ``ValueError`` for programmatic callers, but carries one
    typed ``ACE213`` :class:`~repro.lint.diagnostics.Diagnostic` per
    offending key so the planner daemon's admission path can hand the
    finding back as HTTP 400 diagnostics instead of a bare string.
    """

    def __init__(self, message: str, diagnostics=None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class SearchBudget:
    """Tracks elapsed wall-clock, iterations, and model estimates."""

    @classmethod
    def validate_kwargs(cls, kwargs: dict) -> dict:
        """Fail fast on budget keyword typos (e.g. ``max_iteration``).

        The stage-count driver forwards ``budget_per_count`` into every
        worker process; validating here surfaces a bad key once, in the
        parent, instead of N times inside forked subprocesses.  Unknown
        keys raise :class:`BudgetKwargsError` with typed ``ACE213``
        diagnostics — never silently dropped.  Returns ``kwargs``
        unchanged on success.
        """
        allowed = {
            name
            for name in inspect.signature(cls.__init__).parameters
            if name != "self"
        }
        unknown = sorted(set(kwargs) - allowed)
        if unknown:
            # Imported lazily: repro.lint pulls in artifact checkers
            # that import repro.core, so a module-level import cycles.
            from ..lint.diagnostics import Diagnostic

            valid = ", ".join(sorted(allowed))
            raise BudgetKwargsError(
                f"unknown SearchBudget argument(s): {', '.join(unknown)}; "
                f"valid keys: {valid}",
                diagnostics=[
                    Diagnostic(
                        code="ACE213",
                        message=(
                            f"unknown SearchBudget argument {key!r}"
                        ),
                        hint=f"valid keys: {valid}",
                        attrs={"argument": key},
                    )
                    for key in unknown
                ],
            )
        cls(**kwargs)  # also applies the value checks up front
        return kwargs

    def __init__(
        self,
        *,
        max_seconds: Optional[float] = None,
        max_iterations: Optional[int] = None,
        max_estimates: Optional[int] = None,
    ) -> None:
        if max_seconds is None and max_iterations is None and max_estimates is None:
            raise ValueError("at least one budget limit is required")
        for name, value in (
            ("max_seconds", max_seconds),
            ("max_iterations", max_iterations),
            ("max_estimates", max_estimates),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive")
        self.max_seconds = max_seconds
        self.max_iterations = max_iterations
        self.max_estimates = max_estimates
        self._start: Optional[float] = None
        self._estimates_start = 0

    def start(self, current_estimates: int = 0) -> None:
        """Begin (or restart) the budget clock."""
        self._start = time.monotonic()
        self._estimates_start = current_estimates

    def elapsed(self) -> float:
        """Seconds since :meth:`start`."""
        if self._start is None:
            raise RuntimeError("budget not started")
        return time.monotonic() - self._start

    def exhausted(
        self, *, iterations: int = 0, estimates: int = 0
    ) -> bool:
        """Whether any configured limit has been reached."""
        if self.max_seconds is not None and self.elapsed() >= self.max_seconds:
            return True
        if self.max_iterations is not None and iterations >= self.max_iterations:
            return True
        if self.max_estimates is not None:
            used = estimates - self._estimates_start
            if used >= self.max_estimates:
                return True
        return False
