"""Search budget accounting.

The paper gives every search a fixed wall-clock budget (200 s in §5.1).
Tests and CI-sized benchmarks need determinism, so the budget also
supports iteration and estimate limits; whichever trips first ends the
search.
"""

from __future__ import annotations

import inspect
import time
from typing import Optional


class SearchBudget:
    """Tracks elapsed wall-clock, iterations, and model estimates."""

    @classmethod
    def validate_kwargs(cls, kwargs: dict) -> dict:
        """Fail fast on budget keyword typos (e.g. ``max_iteration``).

        The stage-count driver forwards ``budget_per_count`` into every
        worker process; validating here surfaces a bad key once, in the
        parent, instead of N times inside forked subprocesses.
        Returns ``kwargs`` unchanged on success.
        """
        allowed = {
            name
            for name in inspect.signature(cls.__init__).parameters
            if name != "self"
        }
        unknown = sorted(set(kwargs) - allowed)
        if unknown:
            raise ValueError(
                f"unknown SearchBudget argument(s): {', '.join(unknown)}; "
                f"valid keys: {', '.join(sorted(allowed))}"
            )
        cls(**kwargs)  # also applies the value checks up front
        return kwargs

    def __init__(
        self,
        *,
        max_seconds: Optional[float] = None,
        max_iterations: Optional[int] = None,
        max_estimates: Optional[int] = None,
    ) -> None:
        if max_seconds is None and max_iterations is None and max_estimates is None:
            raise ValueError("at least one budget limit is required")
        for name, value in (
            ("max_seconds", max_seconds),
            ("max_iterations", max_iterations),
            ("max_estimates", max_estimates),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive")
        self.max_seconds = max_seconds
        self.max_iterations = max_iterations
        self.max_estimates = max_estimates
        self._start: Optional[float] = None
        self._estimates_start = 0

    def start(self, current_estimates: int = 0) -> None:
        """Begin (or restart) the budget clock."""
        self._start = time.monotonic()
        self._estimates_start = current_estimates

    def elapsed(self) -> float:
        """Seconds since :meth:`start`."""
        if self._start is None:
            raise RuntimeError("budget not started")
        return time.monotonic() - self._start

    def exhausted(
        self, *, iterations: int = 0, estimates: int = 0
    ) -> bool:
        """Whether any configured limit has been reached."""
        if self.max_seconds is not None and self.elapsed() >= self.max_seconds:
            return True
        if self.max_iterations is not None and iterations >= self.max_iterations:
            return True
        if self.max_estimates is not None:
            used = estimates - self._estimates_start
            if used >= self.max_estimates:
                return True
        return False
