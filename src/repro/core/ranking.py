"""Primitive eligibility and exploration ordering (Heuristic-2, §3.2.2).

For a bottleneck, candidates are grouped by primitive and explored

* **highest-consumption first** across resources (the bottleneck's
  resource list is already ordered by consumption proportion), and
* **best-performance first** within a group (candidates sorted by the
  performance model's objective).

Passing ``rng`` disables the heuristic (random resource/primitive/
candidate order) — the Exp#5 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..parallel.config import ParallelConfig
from .apply import ApplyContext, apply_primitive, has_applier
from .primitives import eligible_primitives


@dataclass
class CandidateGroup:
    """Successors of one primitive, sorted by estimated objective."""

    primitive: str
    resource: str
    candidates: List[ParallelConfig]
    objectives: List[float]


def candidate_groups(
    ctx: ApplyContext,
    *,
    rng: Optional[np.random.Generator] = None,
) -> List[CandidateGroup]:
    """Heuristic-2-ordered candidate groups for the context bottleneck.

    A primitive eligible through several resources appears once, under
    the highest-priority resource that selected it.
    """
    groups: List[CandidateGroup] = []
    seen_primitives = set()
    resources = list(ctx.bottleneck.resources)
    if rng is not None:
        rng.shuffle(resources)
    for resource in resources:
        specs = eligible_primitives(resource)
        if rng is not None:
            specs = list(specs)
            rng.shuffle(specs)
        for spec in specs:
            if spec.name in seen_primitives:
                continue
            seen_primitives.add(spec.name)
            if not has_applier(spec.name):
                continue  # extension spec without a registered applier
            candidates = apply_primitive(spec.name, ctx)
            if not candidates:
                continue
            objectives = ctx.perf_model.objective_batch(candidates)
            if rng is None:
                order = np.argsort(objectives)
            else:
                order = rng.permutation(len(candidates))
            groups.append(
                CandidateGroup(
                    primitive=spec.name,
                    resource=resource,
                    candidates=[candidates[i] for i in order],
                    objectives=[objectives[i] for i in order],
                )
            )
    return groups
