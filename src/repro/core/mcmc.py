"""Metropolis-Hastings search over the reconfiguration primitives.

The baseline FlexFlow compares against Aceso searches the same space
with an MCMC random walk: propose a random mutation, accept it with a
temperature-scaled probability, cool down over time.  This strategy
transplants that walk onto Aceso's machinery — proposals are drawn
from the Table 1 primitives applied to a *randomly chosen* top
bottleneck (rather than FlexFlow's uniform op mutation), so both
strategies consume the identical move set and performance model and
the arena compares pure search policy.

Acceptance uses a *relative* Metropolis criterion,
``exp(-Δ / (T · |current|))``: objectives span seconds-per-iteration
for feasible plans and the ``1e9``-scaled OOM penalty for infeasible
ones, so an absolute Δ would freeze the walk the moment it neared a
feasibility boundary.  Relative scaling keeps the acceptance curve
meaningful at both magnitudes: escaping OOM is always accepted,
entering it essentially never.

Every proposal is emitted as a ``search.strategy.proposal`` telemetry
event and the run closes with one ``search.strategy.stats`` summary
(acceptance rate, restarts, final temperature) — the arena's
per-strategy diagnostics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..parallel.config import ParallelConfig
from ..telemetry.events import (
    SEARCH_STRATEGY_PROPOSAL,
    SEARCH_STRATEGY_STATS,
)
from .apply import ApplyContext, apply_primitive, has_applier
from .bottleneck import Bottleneck, rank_bottlenecks
from .budget import Deadline, SearchBudget
from .primitives import eligible_primitives
from .searcher import SearchContext, Searcher, register_searcher

#: Relative-objective floor so the acceptance denominator never hits 0.
_TINY = 1e-12


@dataclass
class MCMCOptions:
    """Tunables of the Metropolis-Hastings walk.

    ``initial_temperature`` is in *relative objective* units: at
    T=0.25 a proposal 25% worse than the current plan is accepted with
    probability ``1/e``.  ``restart_patience`` consecutive rejected or
    empty proposals teleport the walk to the best unexplored
    configuration (falling back to the incumbent best) and reset the
    temperature — the walk's answer to a local minimum.
    """

    seed: int = 0
    initial_temperature: float = 0.25
    cooling: float = 0.97
    min_temperature: float = 1e-3
    max_bottlenecks: int = 3
    top_k: int = 5
    attach_recompute: bool = True
    restart_patience: int = 12


def _proposal_primitives(bottleneck: Bottleneck) -> List[str]:
    """Applier-backed primitive names for a bottleneck, priority order.

    Mirrors :func:`repro.core.ranking.candidate_groups`'s eligibility
    walk (each primitive once, under its highest-priority resource) but
    returns just the names — the walk picks one at random instead of
    scoring every group.
    """
    names: List[str] = []
    seen = set()
    for resource in bottleneck.resources:
        for spec in eligible_primitives(resource):
            if spec.name in seen:
                continue
            seen.add(spec.name)
            if has_applier(spec.name):
                names.append(spec.name)
    return names


@register_searcher
class MCMCSearcher(Searcher):
    """Seeded Metropolis-Hastings over the reconfiguration primitives."""

    strategy = "mcmc"
    options_class = MCMCOptions

    def run(
        self,
        init_config: ParallelConfig,
        budget: SearchBudget,
        *,
        deadline: Optional[Deadline] = None,
    ):
        opts = self.options
        ctx = SearchContext(
            self.perf_model, budget, deadline=deadline, top_k=opts.top_k
        )
        rng = np.random.default_rng(opts.seed)

        current = init_config
        current_objective = ctx.open(init_config)
        ctx.visited.add(init_config)
        temperature = opts.initial_temperature
        proposed = accepted = empty = restarts = 0
        stalled = 0

        while not ctx.exhausted():
            if ctx.deadline_expired():
                ctx.partial = True
                break
            ctx.iteration += 1
            report = self.perf_model.estimate(current)
            bottlenecks = rank_bottlenecks(report)[: opts.max_bottlenecks]
            bottleneck = bottlenecks[int(rng.integers(len(bottlenecks)))]
            primitives = _proposal_primitives(bottleneck)
            candidates: List[ParallelConfig] = []
            primitive = None
            if primitives:
                primitive = primitives[int(rng.integers(len(primitives)))]
                apply_ctx = ApplyContext(
                    graph=self.graph,
                    cluster=self.cluster,
                    perf_model=self.perf_model,
                    config=current,
                    report=report,
                    bottleneck=bottleneck,
                    attach_recompute=opts.attach_recompute,
                )
                candidates = apply_primitive(primitive, apply_ctx)
            proposed += 1

            if not candidates:
                empty += 1
                stalled += 1
                ctx.emit(
                    SEARCH_STRATEGY_PROPOSAL,
                    strategy=self.strategy,
                    primitive=primitive,
                    resource=bottleneck.primary_resource,
                    accepted=False,
                    empty=True,
                    delta=0.0,
                    temperature=temperature,
                )
                ctx.record_iteration(
                    bottlenecks_tried=1,
                    hops_used=0,
                    improved=False,
                    objective=current_objective,
                )
            else:
                candidate = candidates[int(rng.integers(len(candidates)))]
                objective = self.perf_model.objective(candidate)
                if ctx.visited.add(candidate):
                    ctx.unexplored.put(candidate, objective)
                delta = objective - current_objective
                scale = temperature * max(abs(current_objective), _TINY)
                accept = delta <= 0 or float(rng.random()) < math.exp(
                    -delta / scale
                )
                improved = ctx.observe(objective, candidate)
                ctx.emit(
                    SEARCH_STRATEGY_PROPOSAL,
                    strategy=self.strategy,
                    primitive=primitive,
                    resource=bottleneck.primary_resource,
                    accepted=accept,
                    empty=False,
                    delta=delta,
                    temperature=temperature,
                )
                ctx.record_iteration(
                    bottlenecks_tried=1,
                    hops_used=1 if accept else 0,
                    improved=improved,
                    objective=objective,
                )
                if accept:
                    accepted += 1
                    ctx.unexplored.remove(candidate)
                    current = candidate
                    current_objective = objective
                    stalled = 0 if improved else stalled + 1
                else:
                    stalled += 1

            temperature = max(
                temperature * opts.cooling, opts.min_temperature
            )
            if stalled >= opts.restart_patience:
                restart = ctx.unexplored.pop_best()
                if restart is None and not candidates:
                    # Nothing left to teleport to and proposals are not
                    # even generating candidates: the walk is out of
                    # moves (an estimate-only budget would never trip).
                    ctx.converged = True
                    break
                restarts += 1
                current = restart if restart is not None else ctx.best
                current_objective = self.perf_model.objective(current)
                temperature = opts.initial_temperature
                stalled = 0

        ctx.emit(
            SEARCH_STRATEGY_STATS,
            strategy=self.strategy,
            proposed=proposed,
            accepted=accepted,
            empty=empty,
            restarts=restarts,
            acceptance_rate=(accepted / proposed) if proposed else 0.0,
            final_temperature=temperature,
        )
        return ctx.finish()
