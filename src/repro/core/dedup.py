"""Configuration deduplication (§4.3).

The multi-hop search can reach one configuration along many primitive
paths; the semantic signature (a hash over stage spans, device counts,
per-op settings, and microbatch size) lets the search skip re-exploring
them.  ``VisitedSet`` also counts hits, which quantifies how much work
deduplication saves.
"""

from __future__ import annotations

from ..parallel.config import ParallelConfig


class VisitedSet:
    """Signature set with hit accounting."""

    def __init__(self) -> None:
        self._signatures = set()
        self.hits = 0

    def add(self, config: ParallelConfig) -> bool:
        """Record ``config``; returns True when it was new."""
        signature = config.signature()
        if signature in self._signatures:
            self.hits += 1
            return False
        self._signatures.add(signature)
        return True

    def __contains__(self, config: ParallelConfig) -> bool:
        seen = config.signature() in self._signatures
        if seen:
            self.hits += 1
        return seen

    def signatures(self) -> frozenset:
        """Snapshot of every signature seen (for checkpointing)."""
        return frozenset(self._signatures)

    def __len__(self) -> int:
        return len(self._signatures)


class UnexploredPool:
    """Best-first pool of configurations seen but not yet expanded.

    Mirrors Algorithm 1's ``unexplored_configs``: every candidate the
    search estimates lands here; when an iteration fails to improve,
    the search restarts from the best unexplored configuration.
    """

    def __init__(self) -> None:
        self._pool = {}

    def put(self, config: ParallelConfig, objective: float) -> None:
        self._pool.setdefault(config.signature(), (objective, config))

    def remove(self, config: ParallelConfig) -> None:
        self._pool.pop(config.signature(), None)

    def pop_best(self):
        """Remove and return the lowest-objective entry (or ``None``)."""
        if not self._pool:
            return None
        signature = min(self._pool, key=lambda s: self._pool[s][0])
        _, config = self._pool.pop(signature)
        return config

    def __len__(self) -> int:
        return len(self._pool)
