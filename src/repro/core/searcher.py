"""The strategy-agnostic search substrate and the ``Searcher`` contract.

The original ``AcesoSearch`` mixed two things: *what* the greedy
bottleneck-alleviation strategy does each iteration, and the machinery
every search strategy needs — telemetry event capture, visited-set
deduplication, the best-first unexplored pool, budget/deadline
accounting, best/top-k tracking, and assembling a
:class:`~repro.core.search.SearchResult` at the end.  This module owns
the second half:

* :class:`SearchContext` — one search run's shared state.  A strategy
  drives its own iteration loop but routes every observation through
  the context, so traces, checkpoints, and budget accounting behave
  identically across strategies (and stay bit-identical for the
  refactored greedy path).
* :class:`Searcher` — the contract all strategies implement:
  ``run(init_config, budget, *, deadline=None) -> SearchResult``,
  seeded and deterministic, anytime under a :class:`Deadline`.
* the strategy registry — ``register_searcher`` /
  ``get_searcher_class`` / ``available_strategies`` — plus
  ``build_options``, which turns a ``strategy_kwargs`` dict into the
  strategy's options dataclass and rejects unknown keys with a typed
  ``ACE213`` diagnostic (unknown strategy names get ``ACE212``).

Estimate-order discipline: the context never calls the performance
model except where the pre-refactor code did (the initial objective in
:meth:`SearchContext.open`, the final report in
:meth:`SearchContext.finish`).  ``PerfModel`` carries LRU caches and a
``num_estimates`` counter, so *when* a config is estimated is part of
the observable result; strategies own every other model call.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import ClassVar, Dict, List, Optional, Tuple, Type

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..perfmodel.model import PerfModel
from ..telemetry import Event, get_bus
from ..telemetry.events import (
    SEARCH_BEGIN,
    SEARCH_DEADLINE,
    SEARCH_END,
    SEARCH_ITERATION,
)
from .budget import Deadline, SearchBudget
from .dedup import UnexploredPool, VisitedSet
from .trace import SearchTrace


class StrategyError(ValueError):
    """An unknown strategy or strategy keyword argument.

    Carries the typed :class:`~repro.lint.diagnostics.Diagnostic`
    records (``ACE212``/``ACE213``) so the planner daemon's admission
    path can return them as HTTP 400 diagnostics instead of a bare
    string, while programmatic callers still get a ``ValueError``.
    """

    def __init__(self, message: str, diagnostics=None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


def _strategy_diagnostic(code: str, message: str, hint: str = "", **attrs):
    # Imported lazily: ``repro.lint`` imports artifact checkers that
    # reach back into ``repro.core``, so a module-level import here
    # would cycle during package init.
    from ..lint.diagnostics import Diagnostic

    return Diagnostic(code=code, message=message, hint=hint, attrs=attrs)


class SearchContext:
    """Shared per-run state: events, dedup, budget, best/top-k.

    Constructing the context snapshots the model's estimate counter and
    starts the budget clock — exactly what the pre-refactor greedy run
    did first — so budgets measure the *delta* this run consumes and a
    fresh per-worker model accounts like a shared serial one.
    """

    def __init__(
        self,
        perf_model: PerfModel,
        budget: SearchBudget,
        *,
        deadline: Optional[Deadline] = None,
        top_k: int = 5,
    ) -> None:
        self.perf_model = perf_model
        self.budget = budget
        self.deadline = deadline
        self.top_k = top_k
        self.bus = get_bus()
        self.events: List[Event] = []
        self.visited = VisitedSet()
        self.unexplored = UnexploredPool()
        self.estimates_start = perf_model.num_estimates
        self.estimates_to_best = 0
        budget.start(self.estimates_start)
        self.best: Optional[ParallelConfig] = None
        self.best_objective = float("inf")
        self.top: List[Tuple[float, ParallelConfig]] = []
        self.iteration = 0
        self.converged = False
        self.partial = False

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def emit(self, name: str, **attrs) -> None:
        """Capture an event locally and publish it on the active bus.

        The local capture is what :meth:`finish` rebuilds the
        :class:`SearchTrace` from, so traces are bit-identical whether
        or not a telemetry sink is attached.
        """
        event = Event(
            name=name,
            ts=self.bus.clock(),
            pid=self.bus.pid,
            source="search",
            attrs=attrs,
        )
        self.events.append(event)
        if self.bus.active:
            self.bus.emit_event(event)

    def record_iteration(
        self,
        *,
        bottlenecks_tried: int,
        hops_used: int,
        improved: bool,
        objective: float,
        **extra,
    ) -> None:
        """Emit the per-iteration event every strategy must produce."""
        self.emit(
            SEARCH_ITERATION,
            index=self.iteration,
            elapsed=self.budget.elapsed(),
            bottlenecks_tried=bottlenecks_tried,
            hops_used=hops_used,
            improved=improved,
            objective=objective,
            best_objective=self.best_objective,
            **extra,
        )

    # ------------------------------------------------------------------
    # budget / deadline accounting
    # ------------------------------------------------------------------
    def deadline_expired(self) -> bool:
        return self.deadline is not None and self.deadline.expired()

    def should_stop(self) -> bool:
        """Mid-iteration cooperative check (deadline or estimate cap)."""
        if self.deadline_expired():
            return True
        return self.budget.exhausted(
            estimates=self.perf_model.num_estimates
        )

    def exhausted(self) -> bool:
        """Iteration-boundary check against every configured limit."""
        return self.budget.exhausted(
            iterations=self.iteration,
            estimates=self.perf_model.num_estimates,
        )

    # ------------------------------------------------------------------
    # best / top-k tracking
    # ------------------------------------------------------------------
    def open(self, init_config: ParallelConfig) -> float:
        """Score the starting point and emit ``search.begin``."""
        self.best = init_config
        self.best_objective = self.perf_model.objective(init_config)
        self.estimates_to_best = (
            self.perf_model.num_estimates - self.estimates_start
        )
        self.top = [(self.best_objective, self.best)]
        self.emit(
            SEARCH_BEGIN,
            best_objective=self.best_objective,
            num_stages=init_config.num_stages,
        )
        return self.best_objective

    def observe(self, objective: float, config: ParallelConfig) -> bool:
        """Fold one scored configuration into best/top-k bookkeeping.

        Returns whether it improved the incumbent best.
        """
        improved = objective < self.best_objective
        if improved:
            self.best, self.best_objective = config, objective
            self.estimates_to_best = (
                self.perf_model.num_estimates - self.estimates_start
            )
        self.top = _update_top(self.top, objective, config, self.top_k)
        return improved

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def finish(self):
        """Emit the terminal events and assemble the result.

        Preserves the pre-refactor operation order exactly: deadline
        event (if partial), end event with the estimate delta *before*
        the final ``estimate(best)`` call, counter emission, then the
        trace rebuilt from the captured event stream.
        """
        from .search import SearchResult

        if self.partial:
            self.emit(
                SEARCH_DEADLINE,
                iterations_completed=self.iteration,
                elapsed=self.budget.elapsed(),
                best_objective=self.best_objective,
            )
        self.emit(
            SEARCH_END,
            iterations=self.iteration,
            converged=self.converged,
            partial=self.partial,
            best_objective=self.best_objective,
            num_estimates=(
                self.perf_model.num_estimates - self.estimates_start
            ),
        )
        if self.bus.active:
            self.perf_model.emit_counters(self.bus)
        trace = SearchTrace.from_events(self.events)
        return SearchResult(
            best_config=self.best,
            best_objective=self.best_objective,
            best_report=self.perf_model.estimate(self.best),
            trace=trace,
            top_configs=self.top,
            num_estimates=(
                self.perf_model.num_estimates - self.estimates_start
            ),
            elapsed_seconds=self.budget.elapsed(),
            converged=self.converged,
            visited_signatures=tuple(sorted(self.visited.signatures())),
            partial=self.partial,
            estimates_to_best=self.estimates_to_best,
        )


def _update_top(
    top: List[Tuple[float, ParallelConfig]],
    objective: float,
    config: ParallelConfig,
    k: int,
) -> List[Tuple[float, ParallelConfig]]:
    signatures = {c.signature() for _, c in top}
    if config.signature() not in signatures:
        top = top + [(objective, config)]
    top.sort(key=lambda pair: pair[0])
    return top[:k]


class Searcher:
    """Contract every search strategy implements.

    Concrete strategies subclass this, set ``strategy`` (the registry
    name) and ``options_class`` (a dataclass of tunables that must
    include a ``seed`` field), and implement :meth:`run`.  The contract
    the shared test suite enforces:

    * **Seeded determinism** — identical options against a fresh
      performance model reproduce the run bit-for-bit.
    * **Anytime** — an expired :class:`Deadline` returns the
      best-so-far plan flagged ``partial=True`` at the next
      cooperative check; it never raises.
    * **Telemetry** — every run emits ``search.begin``, one
      ``search.iteration`` per counted iteration, and ``search.end``,
      all with registered names, so ``SearchTrace.from_events``
      reconstructs the trace from any strategy's run log.
    """

    strategy: ClassVar[str] = ""
    options_class: ClassVar[Optional[type]] = None

    def __init__(
        self,
        graph: OpGraph,
        cluster: ClusterSpec,
        perf_model: PerfModel,
        *,
        options=None,
    ) -> None:
        self.graph = graph
        self.cluster = cluster
        self.perf_model = perf_model
        if options is None and self.options_class is not None:
            options = self.options_class()
        self.options = options

    def run(
        self,
        init_config: ParallelConfig,
        budget: SearchBudget,
        *,
        deadline: Optional[Deadline] = None,
    ):
        raise NotImplementedError


# ----------------------------------------------------------------------
# strategy registry
# ----------------------------------------------------------------------
_SEARCHERS: Dict[str, Type[Searcher]] = {}


def register_searcher(cls: Type[Searcher]) -> Type[Searcher]:
    """Register a :class:`Searcher` subclass under its strategy name.

    Usable as a class decorator; re-registering a name overwrites it
    (tests swap stub strategies in and out).
    """
    if not cls.strategy:
        raise ValueError(f"{cls.__name__} does not declare a strategy name")
    _SEARCHERS[cls.strategy] = cls
    return cls


def unregister_searcher(name: str) -> None:
    _SEARCHERS.pop(name, None)


def available_strategies() -> List[str]:
    """Registered strategy names, sorted for stable CLI/docs output."""
    return sorted(_SEARCHERS)


def get_searcher_class(name: str) -> Type[Searcher]:
    """Resolve a strategy name, raising a typed ``ACE212`` error."""
    try:
        return _SEARCHERS[name]
    except KeyError:
        known = ", ".join(available_strategies())
        raise StrategyError(
            f"unknown search strategy {name!r}; available: {known}",
            diagnostics=[
                _strategy_diagnostic(
                    "ACE212",
                    f"unknown search strategy {name!r}",
                    hint=f"available strategies: {known}",
                    strategy=name,
                )
            ],
        ) from None


def strategy_option_names(name: str) -> Tuple[str, ...]:
    """The keyword arguments a strategy's options dataclass accepts."""
    cls = get_searcher_class(name)
    if cls.options_class is None:
        return ()
    return tuple(f.name for f in dataclass_fields(cls.options_class))


def build_options(name: str, kwargs: Optional[dict] = None):
    """Build a strategy's options from a ``strategy_kwargs`` dict.

    Unknown keys raise a :class:`StrategyError` carrying one
    ``ACE213`` diagnostic per offending key — never silently dropped.
    """
    cls = get_searcher_class(name)
    kwargs = dict(kwargs or {})
    allowed = strategy_option_names(name)
    unknown = sorted(set(kwargs) - set(allowed))
    if unknown:
        raise StrategyError(
            f"unknown {name} strategy argument(s): {', '.join(unknown)}; "
            f"valid keys: {', '.join(allowed)}",
            diagnostics=[
                _strategy_diagnostic(
                    "ACE213",
                    f"unknown {name} strategy argument {key!r}",
                    hint=f"valid keys: {', '.join(allowed)}",
                    strategy=name,
                    argument=key,
                )
                for key in unknown
            ],
        )
    if cls.options_class is None:
        return None
    return cls.options_class(**kwargs)


def make_searcher(
    name: str,
    graph: OpGraph,
    cluster: ClusterSpec,
    perf_model: PerfModel,
    *,
    options=None,
    strategy_kwargs: Optional[dict] = None,
) -> Searcher:
    """Instantiate a registered strategy.

    ``options`` (a ready-made options object) and ``strategy_kwargs``
    (a JSON-shaped dict, validated) are mutually exclusive.
    """
    cls = get_searcher_class(name)
    if options is not None and strategy_kwargs:
        raise ValueError(
            "pass either options or strategy_kwargs, not both"
        )
    if options is None:
        options = build_options(name, strategy_kwargs)
    return cls(graph, cluster, perf_model, options=options)
