"""UCB1 bandit search: learn which primitive fixes which bottleneck.

Auto-MAP (PAPERS.md) frames partition search as a learned policy over
rewrites; this strategy is the classic-bandit distillation of that
idea on Aceso's move set.  Each *bottleneck kind* — the primary scarce
resource plus whether the stage is OOM, e.g. ``memory|oom`` or
``compute|time`` — owns an independent UCB1 bandit whose arms are the
Table 1 primitives eligible for that resource.  Per iteration the
searcher identifies the top bottleneck, asks its bandit for an arm,
applies that primitive, moves to the best resulting candidate when it
helps, and pays the bandit a reward equal to the clipped relative
improvement.  Exploration is driven by the UCB1 bonus, not by
randomness: ties aside, a run is fully determined by its seed.

Every pull is emitted as a ``search.strategy.arm`` telemetry event
carrying ``(kind, arm, reward)`` — which makes any prior run log a
training set: :func:`warm_start_from_events` folds those events back
into per-kind arm statistics, and ``BanditOptions.warm_start`` seeds a
new run with them (the JSON-shaped dict travels through
``strategy_kwargs`` untouched).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..parallel.config import ParallelConfig
from ..telemetry.events import (
    SEARCH_STRATEGY_ARM,
    SEARCH_STRATEGY_STATS,
)
from .apply import ApplyContext, apply_primitive, has_applier
from .bottleneck import Bottleneck, rank_bottlenecks
from .budget import Deadline, SearchBudget
from .primitives import eligible_primitives
from .searcher import SearchContext, Searcher, register_searcher

_TINY = 1e-12


def bottleneck_kind(bottleneck: Bottleneck) -> str:
    """Stable bandit key: primary resource × OOM-ness."""
    suffix = "oom" if bottleneck.is_oom else "time"
    return f"{bottleneck.primary_resource}|{suffix}"


def _arms_for(bottleneck: Bottleneck) -> List[str]:
    """The kind's arm set: applier-backed primitives, name-sorted.

    Sorted (not priority-ordered) so the arm list — and therefore the
    UCB tie-break — is identical however the bottleneck's secondary
    resources happen to be ordered.
    """
    names = {
        spec.name
        for spec in eligible_primitives(bottleneck.primary_resource)
        if has_applier(spec.name)
    }
    if not names:
        for resource in bottleneck.resources:
            names.update(
                spec.name
                for spec in eligible_primitives(resource)
                if has_applier(spec.name)
            )
    return sorted(names)


@dataclass
class _Arm:
    pulls: int = 0
    total_reward: float = 0.0

    @property
    def mean(self) -> float:
        return self.total_reward / self.pulls if self.pulls else 0.0


@dataclass
class _KindBandit:
    """One UCB1 bandit (a kind's arm statistics)."""

    arms: Dict[str, _Arm] = field(default_factory=dict)

    def choose(self, candidates: List[str], exploration: float) -> str:
        for name in candidates:
            self.arms.setdefault(name, _Arm())
        untried = [n for n in candidates if self.arms[n].pulls == 0]
        if untried:
            return untried[0]
        total = sum(self.arms[n].pulls for n in candidates)
        bonus = math.log(max(total, 1))

        def score(name: str) -> float:
            arm = self.arms[name]
            return arm.mean + exploration * math.sqrt(bonus / arm.pulls)

        # max() keeps the first of equals, so the name-sorted candidate
        # list doubles as the deterministic tie-break.
        return max(candidates, key=score)

    def reward(self, name: str, value: float) -> _Arm:
        arm = self.arms.setdefault(name, _Arm())
        arm.pulls += 1
        arm.total_reward += value
        return arm


def warm_start_from_events(events) -> Dict[str, Dict[str, List[float]]]:
    """Fold ``search.strategy.arm`` events into warm-start statistics.

    Accepts :class:`~repro.telemetry.bus.Event` objects or plain dicts
    (one parsed run-log JSONL line each); everything else in the stream
    is ignored.  Returns ``{kind: {arm: [pulls, total_reward]}}`` — the
    JSON-shaped dict ``BanditOptions.warm_start`` takes.
    """
    stats: Dict[str, Dict[str, List[float]]] = {}
    for event in events:
        if isinstance(event, dict):
            name = event.get("name")
            attrs = event.get("attrs", {})
        else:
            name = getattr(event, "name", None)
            attrs = getattr(event, "attrs", {})
        if name != SEARCH_STRATEGY_ARM:
            continue
        kind = attrs.get("kind")
        arm = attrs.get("arm")
        if not kind or not arm:
            continue
        entry = stats.setdefault(kind, {}).setdefault(arm, [0, 0.0])
        entry[0] += 1
        entry[1] += float(attrs.get("reward", 0.0))
    return stats


@dataclass
class BanditOptions:
    """Tunables of the per-bottleneck-kind UCB1 search.

    ``exploration`` is UCB1's ``c`` constant; ``warm_start`` preloads
    arm statistics (the :func:`warm_start_from_events` shape) so a new
    search starts from what prior runs learned instead of from uniform
    ignorance.
    """

    seed: int = 0
    exploration: float = 1.4
    top_k: int = 5
    attach_recompute: bool = True
    restart_patience: int = 8
    warm_start: Optional[dict] = None


@register_searcher
class BanditSearcher(Searcher):
    """Per-bottleneck-kind UCB1 over the reconfiguration primitives."""

    strategy = "bandit"
    options_class = BanditOptions

    def _bandits_from_warm_start(self) -> Dict[str, _KindBandit]:
        bandits: Dict[str, _KindBandit] = {}
        for kind, arms in (self.options.warm_start or {}).items():
            bandit = _KindBandit()
            for name, entry in arms.items():
                pulls, total = int(entry[0]), float(entry[1])
                bandit.arms[name] = _Arm(
                    pulls=pulls, total_reward=total
                )
            bandits[kind] = bandit
        return bandits

    def run(
        self,
        init_config: ParallelConfig,
        budget: SearchBudget,
        *,
        deadline: Optional[Deadline] = None,
    ):
        opts = self.options
        ctx = SearchContext(
            self.perf_model, budget, deadline=deadline, top_k=opts.top_k
        )
        # The seed is part of the contract even though UCB1 itself is
        # deterministic: it reserves room for randomized tie-breaks
        # without changing the options schema.
        np.random.default_rng(opts.seed)
        bandits = self._bandits_from_warm_start()
        warm_started = bool(bandits)

        current = init_config
        current_objective = ctx.open(init_config)
        ctx.visited.add(init_config)
        pulls = moves = restarts = 0
        stalled = 0

        while not ctx.exhausted():
            if ctx.deadline_expired():
                ctx.partial = True
                break
            ctx.iteration += 1
            report = self.perf_model.estimate(current)
            bottleneck = rank_bottlenecks(report)[0]
            kind = bottleneck_kind(bottleneck)
            arms = _arms_for(bottleneck)
            if not arms:
                ctx.converged = True
                break
            bandit = bandits.setdefault(kind, _KindBandit())
            arm = bandit.choose(arms, opts.exploration)
            apply_ctx = ApplyContext(
                graph=self.graph,
                cluster=self.cluster,
                perf_model=self.perf_model,
                config=current,
                report=report,
                bottleneck=bottleneck,
                attach_recompute=opts.attach_recompute,
            )
            candidates = apply_primitive(arm, apply_ctx)
            pulls += 1

            best_objective = None
            best_candidate = None
            if candidates:
                objectives = self.perf_model.objective_batch(candidates)
                order = int(np.argmin(objectives))
                best_candidate = candidates[order]
                best_objective = float(objectives[order])
                if ctx.visited.add(best_candidate):
                    ctx.unexplored.put(best_candidate, best_objective)
            reward = 0.0
            if best_objective is not None:
                gain = current_objective - best_objective
                reward = min(
                    max(gain / max(abs(current_objective), _TINY), 0.0),
                    1.0,
                )
            stats = bandit.reward(arm, reward)
            ctx.emit(
                SEARCH_STRATEGY_ARM,
                strategy=self.strategy,
                kind=kind,
                arm=arm,
                reward=reward,
                pulls=stats.pulls,
                mean_reward=stats.mean,
                candidates=len(candidates),
            )

            if (
                best_candidate is not None
                and best_objective < current_objective
            ):
                improved = ctx.observe(best_objective, best_candidate)
                ctx.record_iteration(
                    bottlenecks_tried=1,
                    hops_used=1,
                    improved=improved,
                    objective=best_objective,
                )
                ctx.unexplored.remove(best_candidate)
                current = best_candidate
                current_objective = best_objective
                moves += 1
                stalled = 0
            else:
                if best_objective is not None:
                    ctx.observe(best_objective, best_candidate)
                ctx.record_iteration(
                    bottlenecks_tried=1,
                    hops_used=0,
                    improved=False,
                    objective=(
                        best_objective
                        if best_objective is not None
                        else current_objective
                    ),
                )
                stalled += 1
                if stalled >= opts.restart_patience:
                    restart = ctx.unexplored.pop_best()
                    if restart is None:
                        ctx.converged = True
                        break
                    restarts += 1
                    current = restart
                    current_objective = self.perf_model.objective(
                        current
                    )
                    stalled = 0

        ctx.emit(
            SEARCH_STRATEGY_STATS,
            strategy=self.strategy,
            pulls=pulls,
            moves=moves,
            restarts=restarts,
            warm_started=warm_started,
            kinds={
                kind: {
                    name: [arm.pulls, arm.total_reward]
                    for name, arm in bandit.arms.items()
                }
                for kind, bandit in bandits.items()
            },
        )
        return ctx.finish()
