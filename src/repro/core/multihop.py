"""Multi-hop primitive search (Algorithm 2, §3.2.3).

One primitive rarely beats the starting configuration outright — it
alleviates one bottleneck and usually creates another.  The multi-hop
search therefore chains primitives depth-first: apply a hop, and if the
result is not yet better than the iteration's starting point, recurse
on *its* bottleneck, backtracking through Heuristic-2's candidate order
up to ``max_hops`` deep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig, changed_stages
from ..perfmodel.model import PerfModel
from .apply import ApplyContext
from .bottleneck import Bottleneck, rank_bottlenecks
from .dedup import UnexploredPool, VisitedSet
from .ranking import candidate_groups


@dataclass
class MultiHopResult:
    """A successful multi-hop improvement.

    ``dirty_stages`` lists the stages of ``config`` that differ from
    the configuration the search started at (identity-based: primitive
    application shares untouched stage objects), so downstream passes
    like fine-tuning can focus on what actually changed.  ``None``
    means unknown — treat every stage as dirty.
    """

    config: ParallelConfig
    objective: float
    hops_used: int
    dirty_stages: Optional[Tuple[int, ...]] = None


class MultiHopSearcher:
    """Stateful Algorithm 2 executor shared across search iterations.

    Args:
        graph / cluster / perf_model: the planning substrate.
        max_hops: the paper's ``MaxHops`` hyper-parameter (default 7).
        rng: when given, disables Heuristic-2 ordering (random search
            ablation).
        should_stop: optional callable polled during recursion so a
            wall-clock budget can abort deep searches.
        beam_width: how many of a group's best candidates to recurse
            into (backtracking breadth).
        max_nodes: hop-node budget of a single :meth:`search` call —
            bounds the worst-case (no improvement found) tree walk.
    """

    def __init__(
        self,
        graph: OpGraph,
        cluster: ClusterSpec,
        perf_model: PerfModel,
        *,
        max_hops: int = 7,
        rng: Optional[np.random.Generator] = None,
        should_stop=None,
        beam_width: int = 2,
        max_nodes: int = 60,
        attach_recompute: bool = True,
    ) -> None:
        if max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        if beam_width < 1 or max_nodes < 1:
            raise ValueError("beam_width and max_nodes must be >= 1")
        self.graph = graph
        self.cluster = cluster
        self.perf_model = perf_model
        self.max_hops = max_hops
        self.rng = rng
        self.should_stop = should_stop or (lambda: False)
        self.beam_width = beam_width
        self.max_nodes = max_nodes
        self.attach_recompute = attach_recompute
        self._nodes_left = max_nodes

    def search(
        self,
        config: ParallelConfig,
        *,
        visited: VisitedSet,
        unexplored: UnexploredPool,
        bottleneck: Optional[Bottleneck] = None,
    ) -> Optional[MultiHopResult]:
        """Find a configuration strictly better than ``config``.

        ``bottleneck`` overrides the hop-0 target (used by the
        secondary-bottleneck fallback); deeper hops always chase their
        own top bottleneck.
        """
        init_objective = self.perf_model.objective(config)
        visited.add(config)
        self._nodes_left = self.max_nodes
        result = self._hop(
            config,
            hop_index=0,
            init_objective=init_objective,
            visited=visited,
            unexplored=unexplored,
            forced_bottleneck=bottleneck,
        )
        if result is not None:
            result.dirty_stages = changed_stages(result.config, config)
        return result

    # ------------------------------------------------------------------
    def _hop(
        self,
        config: ParallelConfig,
        *,
        hop_index: int,
        init_objective: float,
        visited: VisitedSet,
        unexplored: UnexploredPool,
        forced_bottleneck: Optional[Bottleneck] = None,
    ) -> Optional[MultiHopResult]:
        unexplored.remove(config)
        if hop_index >= self.max_hops or self.should_stop():
            return None
        if self._nodes_left <= 0:
            return None
        self._nodes_left -= 1
        report = self.perf_model.estimate(config)
        if forced_bottleneck is not None:
            bottleneck = forced_bottleneck
        else:
            bottleneck = rank_bottlenecks(report)[0]
        ctx = ApplyContext(
            graph=self.graph,
            cluster=self.cluster,
            perf_model=self.perf_model,
            config=config,
            report=report,
            bottleneck=bottleneck,
            attach_recompute=self.attach_recompute,
        )
        for group in candidate_groups(ctx, rng=self.rng):
            fresh = []
            for candidate, objective in zip(
                group.candidates, group.objectives
            ):
                if not visited.add(candidate):
                    continue
                unexplored.put(candidate, objective)
                fresh.append((objective, candidate))
                if objective < init_objective:
                    return MultiHopResult(
                        config=candidate,
                        objective=objective,
                        hops_used=hop_index + 1,
                    )
            # Candidates arrive pre-sorted under Heuristic-2; under the
            # random ablation we keep the shuffled order.  Only the
            # beam's best candidates are recursed into.
            for objective, candidate in fresh[: self.beam_width]:
                if self.should_stop():
                    return None
                deeper = self._hop(
                    candidate,
                    hop_index=hop_index + 1,
                    init_objective=init_objective,
                    visited=visited,
                    unexplored=unexplored,
                )
                if deeper is not None:
                    return deeper
        return None
