"""Bottleneck identification (Heuristic-1, §3.1).

Safety first: when any stage is predicted out-of-memory, the stage with
the largest memory consumption is the bottleneck (an OOM configuration
cannot run at all).  Otherwise the stage with the longest per-iteration
execution time dominates pipeline throughput and is the bottleneck.
Secondary bottlenecks (tried when the first yields no improvement,
§3.2.3) follow the same ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..perfmodel.report import RESOURCES, PerfReport


@dataclass(frozen=True)
class Bottleneck:
    """One bottleneck target: a stage plus its resource priority order.

    ``resources`` is ordered by consumption proportion (Heuristic-2's
    "highest-consumption first" tie-break), except that an OOM stage
    always lists memory first.
    """

    stage: int
    resources: tuple
    is_oom: bool

    @property
    def primary_resource(self) -> str:
        return self.resources[0]


def rank_bottlenecks(report: PerfReport) -> List[Bottleneck]:
    """All stages ordered from most to least bottleneck-y (Heuristic-1).

    The first element is *the* bottleneck; the rest are the secondary
    bottlenecks explored when multi-hop search fails on it.
    """
    if report.is_oom:
        order = np.argsort(report.peak_memories)[::-1]
    else:
        order = np.argsort(report.stage_times())[::-1]
    return [
        _bottleneck_for_stage(report, int(stage))
        for stage in order
    ]


def identify_bottleneck(report: PerfReport) -> Bottleneck:
    """The single top-priority bottleneck."""
    return rank_bottlenecks(report)[0]


def _bottleneck_for_stage(report: PerfReport, stage: int) -> Bottleneck:
    oom = stage in report.oom_stages
    proportions = report.resource_proportions(stage)
    ordered = sorted(
        RESOURCES, key=lambda name: proportions[name], reverse=True
    )
    if oom:
        # Safety first: resolve the crash before chasing time.
        ordered.remove("memory")
        ordered.insert(0, "memory")
    return Bottleneck(stage=stage, resources=tuple(ordered), is_oom=oom)
