"""Search tracing: the raw material of the ablation experiments.

Every search iteration records how many bottlenecks were tried before
improvement (Exp#5 / Fig. 11a), how many hops the successful multi-hop
used (Fig. 11b), and the best objective over elapsed time (the
convergence trends of Figs. 12-14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..telemetry.events import SEARCH_BEGIN, SEARCH_ITERATION


@dataclass(frozen=True)
class IterationRecord:
    """Outcome of one Algorithm 1 iteration."""

    index: int
    elapsed: float
    bottlenecks_tried: int
    hops_used: int
    improved: bool
    objective: float
    best_objective: float


@dataclass
class SearchTrace:
    """Accumulated per-iteration records plus the convergence curve."""

    records: List[IterationRecord] = field(default_factory=list)
    convergence: List[Tuple[float, float]] = field(default_factory=list)

    def record_iteration(
        self,
        *,
        index: int,
        elapsed: float,
        bottlenecks_tried: int,
        hops_used: int,
        improved: bool,
        objective: float,
        best_objective: float,
    ) -> None:
        self.records.append(
            IterationRecord(
                index=index,
                elapsed=elapsed,
                bottlenecks_tried=bottlenecks_tried,
                hops_used=hops_used,
                improved=improved,
                objective=objective,
                best_objective=best_objective,
            )
        )
        self.convergence.append((elapsed, best_objective))

    @property
    def num_iterations(self) -> int:
        return len(self.records)

    def bottleneck_histogram(self) -> Dict[int, int]:
        """# bottlenecks tried before improvement -> iteration count.

        Only iterations that found an improvement contribute (matching
        Fig. 11a's "before achieving effective improvement").
        """
        histogram: Dict[int, int] = {}
        for record in self.records:
            if record.improved:
                key = record.bottlenecks_tried
                histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def hop_histogram(self) -> Dict[int, int]:
        """# hops used by successful improvements -> iteration count."""
        histogram: Dict[int, int] = {}
        for record in self.records:
            if record.improved:
                key = record.hops_used
                histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def first_try_rate(self) -> float:
        """Fraction of improving iterations that fixed bottleneck #1."""
        histogram = self.bottleneck_histogram()
        total = sum(histogram.values())
        if total == 0:
            return 0.0
        return histogram.get(1, 0) / total

    def multi_hop_rate(self) -> float:
        """Fraction of improving iterations that needed >1 hop."""
        histogram = self.hop_histogram()
        total = sum(histogram.values())
        if total == 0:
            return 0.0
        return sum(v for k, v in histogram.items() if k > 1) / total

    # ------------------------------------------------------------------
    # persistence (for offline analysis of search behaviour)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Plain-python representation of the full trace."""
        return {
            "records": [
                {
                    "index": r.index,
                    "elapsed": r.elapsed,
                    "bottlenecks_tried": r.bottlenecks_tried,
                    "hops_used": r.hops_used,
                    "improved": r.improved,
                    "objective": r.objective,
                    "best_objective": r.best_objective,
                }
                for r in self.records
            ],
            "convergence": [list(point) for point in self.convergence],
        }

    @classmethod
    def from_json(cls, data: dict) -> "SearchTrace":
        """Inverse of :meth:`to_json`."""
        trace = cls()
        trace.records = [
            IterationRecord(**record) for record in data["records"]
        ]
        trace.convergence = [tuple(p) for p in data["convergence"]]
        return trace

    # ------------------------------------------------------------------
    # reconstruction from the telemetry event stream
    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, events) -> "SearchTrace":
        """Rebuild a trace from ``search.begin``/``search.iteration``
        telemetry events (see :mod:`repro.telemetry`).

        ``AcesoSearch`` emits its per-iteration outcomes as events and
        derives its :class:`SearchTrace` through this constructor, so
        the trace in checkpoints and ablation benches is exactly the
        event stream replayed — same floats, bit-for-bit.
        """
        trace = cls()
        for event in events:
            if event.name == SEARCH_BEGIN:
                trace.convergence.append(
                    (0.0, event.attrs["best_objective"])
                )
            elif event.name == SEARCH_ITERATION:
                attrs = event.attrs
                trace.record_iteration(
                    index=attrs["index"],
                    elapsed=attrs["elapsed"],
                    bottlenecks_tried=attrs["bottlenecks_tried"],
                    hops_used=attrs["hops_used"],
                    improved=attrs["improved"],
                    objective=attrs["objective"],
                    best_objective=attrs["best_objective"],
                )
        return trace
