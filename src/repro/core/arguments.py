"""Greedy primitive-argument selection (§4.1).

Primitives like inc/dec-op# and inc/dec-rc have large argument ranges
("how many and which operators"), so Aceso chooses values greedily with
the performance model instead of enumerating.  Recompute selection
targets the largest activations first; op movement proposes a small
ladder of counts plus a FLOPs-balancing count, letting Heuristic-2's
best-performance-first ranking pick among them.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..perfmodel.model import PerfModel


def stage_activation_bytes(
    graph: OpGraph, config: ParallelConfig, stage_index: int
) -> np.ndarray:
    """Per-op saved-activation bytes of one stage at current settings."""
    stage = config.stages[stage_index]
    arrays = graph.arrays
    sl = slice(stage.start, stage.end)
    etp = np.minimum(stage.tp, arrays.max_tp[sl])
    samples = config.microbatch_size / stage.dp.astype(np.float64)
    return arrays.saved_numel[sl] * samples / etp * graph.elem_bytes


def _stage_fits(
    perf_model: PerfModel, config: ParallelConfig, stage_index: int
) -> bool:
    report = perf_model.estimate(config)
    return report.stages[stage_index].peak_memory <= report.memory_limit


def greedy_recompute(
    perf_model: PerfModel,
    config: ParallelConfig,
    stage_index: int,
) -> Optional[ParallelConfig]:
    """Enable recomputation on a stage until it fits in memory.

    Ops are recomputed largest-activation-first (§4.1).  The count is
    seeded analytically from the memory overflow and each op's
    activation savings, then verified (and grown if short) against the
    performance model — one or two estimates instead of a full scan.
    Returns ``None`` when even full recomputation cannot fit, or when
    the stage already fits without changes.
    """
    report = perf_model.estimate(config)
    stage_report = report.stages[stage_index]
    overflow = stage_report.peak_memory - report.memory_limit
    if overflow <= 0:
        return None
    stage = config.stages[stage_index]
    act = stage_activation_bytes(perf_model.graph, config, stage_index)
    candidates = np.where(~stage.recompute)[0]
    if candidates.size == 0:
        return None
    order = candidates[np.argsort(act[candidates])[::-1]]
    savings = np.cumsum(act[order]) * max(1, stage_report.in_flight)

    def with_prefix(k: int) -> ParallelConfig:
        new = config.mutated_copy([stage_index])
        new.stages[stage_index].recompute[order[:k]] = True
        return new

    total = len(order)
    k = int(np.searchsorted(savings, overflow)) + 1
    step = max(1, total // 8)
    while k <= total:
        candidate = with_prefix(min(k, total))
        if _stage_fits(perf_model, candidate, stage_index):
            return candidate
        k += step
    return None


def greedy_unrecompute(
    perf_model: PerfModel,
    config: ParallelConfig,
    stage_index: int,
) -> Optional[ParallelConfig]:
    """Disable recomputation where memory slack allows.

    Recomputed ops are released in ascending activation order (big
    activations are the riskiest to re-materialize).  The release count
    is seeded from the stage's memory slack and trimmed against the
    performance model.  Returns ``None`` when nothing can change (no
    recomputed ops, or the stage is already over budget).
    """
    stage = config.stages[stage_index]
    recomputed = np.where(stage.recompute)[0]
    if recomputed.size == 0:
        return None
    report = perf_model.estimate(config)
    stage_report = report.stages[stage_index]
    slack = report.memory_limit - stage_report.peak_memory
    if slack < 0:
        return None
    act = stage_activation_bytes(perf_model.graph, config, stage_index)
    order = recomputed[np.argsort(act[recomputed])]
    growth = np.cumsum(act[order]) * max(1, stage_report.in_flight)

    def with_prefix(k: int) -> ParallelConfig:
        new = config.mutated_copy([stage_index])
        new.stages[stage_index].recompute[order[:k]] = False
        return new

    k = int(np.searchsorted(growth, slack, side="right"))
    step = max(1, len(order) // 8)
    while k >= 1:
        candidate = with_prefix(k)
        if _stage_fits(perf_model, candidate, stage_index):
            return candidate
        k -= step
    return None


def tune_recompute(
    perf_model: PerfModel,
    config: ParallelConfig,
    stage_indices: List[int],
) -> ParallelConfig:
    """Re-fit recomputation after another primitive changed memory.

    This is §4.3's "attaching inc/dec-rc to all other primitives":
    stages pushed over the memory limit gain recomputation; stages with
    new slack shed it.
    """
    current = config
    for stage_index in stage_indices:
        if not 0 <= stage_index < current.num_stages:
            continue
        tightened = greedy_recompute(perf_model, current, stage_index)
        if tightened is not None:
            current = tightened
            continue
        relaxed = greedy_unrecompute(perf_model, current, stage_index)
        if relaxed is not None:
            current = relaxed
    return current


def op_move_counts(
    graph: OpGraph,
    config: ParallelConfig,
    stage_index: int,
    neighbor_index: int,
    *,
    from_front: bool,
) -> List[int]:
    """Candidate counts of ops to move out of a stage (§4.1).

    Returns a small ladder of counts — 1, span/8, span/4, span/2 — plus
    the FLOPs-balancing count that would equalize the two stages'
    training FLOPs (the "tight goal"), all deduplicated and capped so
    the stage keeps at least one op.
    """
    stage = config.stages[stage_index]
    span = stage.num_ops
    if span <= 1:
        return []
    limit = span - 1
    ladder = {1, max(1, span // 8), max(1, span // 4), max(1, span // 2)}
    balance = _flops_balance_count(
        graph, config, stage_index, neighbor_index, from_front
    )
    if balance is not None:
        ladder.add(balance)
    return sorted(k for k in ladder if 1 <= k <= limit)


def _flops_balance_count(
    graph: OpGraph,
    config: ParallelConfig,
    stage_index: int,
    neighbor_index: int,
    from_front: bool,
) -> Optional[int]:
    arrays = graph.arrays
    weights = arrays.flops + arrays.bwd_flops
    stage = config.stages[stage_index]
    neighbor = config.stages[neighbor_index]
    own = float(weights[stage.start:stage.end].sum())
    other = float(weights[neighbor.start:neighbor.end].sum())
    gap = (own - other) / 2.0
    if gap <= 0:
        return None
    sl = weights[stage.start:stage.end]
    moved = sl if from_front else sl[::-1]
    cumulative = np.cumsum(moved)
    k = int(np.searchsorted(cumulative, gap)) + 1
    if k >= stage.num_ops:
        return None
    return k
