"""Reconfiguration primitives (Table 1 of the paper).

Each primitive is a *one-mechanism* adjustment whose qualitative impact
on the three resources (computation, communication, memory) is known in
advance.  The search queries this table for primitives whose trend
*decreases* the bottleneck's scarce resource — the "resource trading"
idea that prunes ineligible reconfigurations before any estimation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class Trend(enum.Enum):
    """Qualitative impact of a primitive on one resource."""

    DOWN = "decrease"
    FLAT = "unchanged"
    UP = "increase"


class Granularity(enum.Enum):
    """Scope a primitive is applied at during the main search (§3.2.1)."""

    STAGE = "stage"
    MODEL = "model"


@dataclass(frozen=True)
class PrimitiveSpec:
    """One row of Table 1.

    Attributes:
        primitive_id: row number in the paper's table.
        name: e.g. ``"inc-tp"``.
        mechanism: owning parallel mechanism.
        compute / communication / memory: resource trends.
        granularity: stage-level or model-level application.
        partner: the primitive applied to the partner stage when this
            one moves resources across stages (``None`` otherwise).
    """

    primitive_id: int
    name: str
    mechanism: str
    compute: Trend
    communication: Trend
    memory: Trend
    granularity: Granularity
    partner: Optional[str] = None

    def trend_for(self, resource: str) -> Trend:
        """Trend of ``resource`` ("compute"/"communication"/"memory")."""
        try:
            return getattr(self, resource)
        except AttributeError:
            raise KeyError(f"unknown resource {resource!r}") from None

    def decreases(self, resource: str) -> bool:
        return self.trend_for(resource) is Trend.DOWN


_D, _F, _U = Trend.DOWN, Trend.FLAT, Trend.UP
_S, _M = Granularity.STAGE, Granularity.MODEL

#: Table 1, in paper order.  Partner primitives follow §3.2.1:
#: inc-op# pairs with dec-op# on a neighbour, inc/dec-dp and inc/dec-tp
#: pair with dec/inc of dp-or-tp on the partner stage that donates or
#: receives devices.
PRIMITIVE_TABLE: Tuple[PrimitiveSpec, ...] = (
    PrimitiveSpec(1, "inc-op#", "pipeline", _U, _F, _U, _S, partner="dec-op#"),
    PrimitiveSpec(2, "dec-op#", "pipeline", _D, _F, _D, _S, partner="inc-op#"),
    PrimitiveSpec(3, "inc-mbs", "pipeline", _D, _F, _U, _M),
    PrimitiveSpec(4, "dec-mbs", "pipeline", _U, _F, _D, _M),
    PrimitiveSpec(5, "inc-dp", "data", _D, _U, _D, _S, partner="dec-dp/tp"),
    PrimitiveSpec(6, "dec-dp", "data", _U, _D, _U, _S, partner="inc-dp/tp"),
    PrimitiveSpec(7, "inc-tp", "tensor", _D, _U, _D, _S, partner="dec-dp/tp"),
    PrimitiveSpec(8, "dec-tp", "tensor", _U, _D, _U, _S, partner="inc-dp/tp"),
    PrimitiveSpec(9, "inc-rc", "recompute", _U, _F, _D, _S),
    PrimitiveSpec(10, "dec-rc", "recompute", _D, _F, _U, _S),
)

PRIMITIVES_BY_NAME: Dict[str, PrimitiveSpec] = {
    spec.name: spec for spec in PRIMITIVE_TABLE
}

#: Extension primitives registered at runtime (§3.2.1: "Aceso can be
#: extended with new primitives for future research").
_EXTENSIONS: Dict[str, PrimitiveSpec] = {}


def register_primitive(spec: PrimitiveSpec) -> None:
    """Add a new reconfiguration primitive to the search's table.

    The spec's resource trends drive eligibility exactly like the
    built-in rows; an applier must also be registered through
    :func:`repro.core.apply.register_applier` before the search can
    expand it.  Names must be unique across built-ins and extensions.
    """
    if spec.name in PRIMITIVES_BY_NAME or spec.name in _EXTENSIONS:
        raise ValueError(f"primitive {spec.name!r} already registered")
    _EXTENSIONS[spec.name] = spec


def unregister_primitive(name: str) -> None:
    """Remove an extension primitive (built-ins cannot be removed)."""
    if name in PRIMITIVES_BY_NAME:
        raise ValueError(f"cannot unregister built-in primitive {name!r}")
    _EXTENSIONS.pop(name, None)


def all_primitives() -> List[PrimitiveSpec]:
    """Built-in table rows followed by registered extensions."""
    return list(PRIMITIVE_TABLE) + list(_EXTENSIONS.values())


def get_primitive(name: str) -> PrimitiveSpec:
    """Look up a primitive row by name (built-in or extension)."""
    spec = PRIMITIVES_BY_NAME.get(name) or _EXTENSIONS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown primitive {name!r}; known: "
            f"{sorted(PRIMITIVES_BY_NAME) + sorted(_EXTENSIONS)}"
        )
    return spec


def eligible_primitives(resource: str) -> List[PrimitiveSpec]:
    """Primitives whose table trend decreases ``resource`` (§3.2.2).

    >>> [p.name for p in eligible_primitives("memory")]
    ['dec-op#', 'dec-mbs', 'inc-dp', 'inc-tp', 'inc-rc']
    """
    return [spec for spec in all_primitives() if spec.decreases(resource)]
