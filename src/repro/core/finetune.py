"""Op-level fine-tuning (§4.2).

After each search iteration Aceso optionally refines configurations at
operator granularity:

* **Flexible tp/dp combinations inside a stage** — raise or lower the
  tensor degree of a *suffix* of the stage's ops (suffixes minimize the
  number of layout changes, each of which costs a reshard collective).
* **Flexible tensor-parallel dimension** — flip the partition option of
  an op kind (row/column for matmul, in/out-channel for conv) where a
  better kernel efficiency exists.

Both passes keep a change only when the performance model scores it
strictly better.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..parallel.validation import is_valid
from ..perfmodel.model import PerfModel
from .arguments import tune_recompute


def finetune(
    config: ParallelConfig,
    graph: OpGraph,
    cluster: ClusterSpec,
    perf_model: PerfModel,
    *,
    max_split_points: int = 8,
    stages: Optional[List[int]] = None,
) -> ParallelConfig:
    """Run both fine-tuning passes; returns the best config found."""
    best = config
    best_objective = perf_model.objective(config)
    target_stages = (
        stages if stages is not None else list(range(config.num_stages))
    )
    for stage_index in target_stages:
        best, best_objective = _tune_suffix_parallel(
            best, best_objective, stage_index, graph, cluster, perf_model,
            max_split_points,
        )
        best, best_objective = _tune_partition_dims(
            best, best_objective, stage_index, graph, cluster, perf_model,
        )
    return best


def _split_points(num_ops: int, max_points: int) -> List[int]:
    """Evenly sampled suffix start positions within a stage."""
    if num_ops <= 1:
        return []
    count = min(max_points, num_ops)
    return sorted(
        {int(round(x)) for x in np.linspace(0, num_ops - 1, count)}
    )


def _tune_suffix_parallel(
    config: ParallelConfig,
    best_objective: float,
    stage_index: int,
    graph: OpGraph,
    cluster: ClusterSpec,
    perf_model: PerfModel,
    max_split_points: int,
):
    """Try doubling/halving tp for each sampled suffix of the stage."""
    stage = config.stages[stage_index]
    best = config
    for split in _split_points(stage.num_ops, max_split_points):
        for toward_tp in (True, False):
            candidate = config.mutated_copy([stage_index])
            target = candidate.stages[stage_index]
            suffix = slice(split, target.num_ops)
            if toward_tp:
                movable = target.dp[suffix] >= 2
                if not np.any(movable):
                    continue
                tp_view = target.tp[suffix]
                dp_view = target.dp[suffix]
                tp_view[movable] *= 2
                dp_view[movable] //= 2
            else:
                movable = target.tp[suffix] >= 2
                if not np.any(movable):
                    continue
                dp_new = target.dp[suffix][movable] * 2
                if np.any(candidate.microbatch_size % dp_new):
                    continue
                tp_view = target.tp[suffix]
                dp_view = target.dp[suffix]
                dp_view[movable] = dp_new
                tp_view[movable] //= 2
            if not is_valid(candidate, graph, cluster):
                continue
            candidate = tune_recompute(perf_model, candidate, [stage_index])
            objective = perf_model.objective(candidate)
            if objective < best_objective:
                best, best_objective = candidate, objective
    return best, best_objective


def _tune_partition_dims(
    config: ParallelConfig,
    best_objective: float,
    stage_index: int,
    graph: OpGraph,
    cluster: ClusterSpec,
    perf_model: PerfModel,
):
    """Flip partition dimension per op kind within the stage."""
    stage = config.stages[stage_index]
    arrays = graph.arrays
    sl = slice(stage.start, stage.end)
    multi_option = arrays.num_options[sl] > 1
    split = stage.tp > 1
    flippable = multi_option & split
    if not np.any(flippable):
        return config, best_objective
    kinds = np.array([graph.ops[i].kind for i in range(stage.start, stage.end)])
    best = config
    for kind in np.unique(kinds[flippable]):
        mask = flippable & (kinds == kind)
        for new_dim in (1, 0):
            candidate = config.mutated_copy([stage_index])
            target = candidate.stages[stage_index]
            if np.all(target.tp_dim[mask] == new_dim):
                continue
            target.tp_dim[mask] = new_dim
            if not is_valid(candidate, graph, cluster):
                continue
            objective = perf_model.objective(candidate)
            if objective < best_objective:
                best, best_objective = candidate, objective
    return best, best_objective
