"""Persistent fork-shared worker pool for the stage-count driver.

The original driver forked one fresh process per (stage count, attempt)
and shipped the whole problem — op graph, cluster spec, and profile
database — through the pickled process arguments every time.  For the
models the paper searches, that serialization dwarfs the actual search
work at small budgets.  This module keeps a pool of long-lived workers
instead:

* Under the ``fork`` start method (the POSIX default), workers inherit
  the problem state read-only through :data:`_FORK_STATE` at fork time
  — the graph, database, and search options are never pickled at all,
  and a worker costs one ``fork()`` no matter how large the model is.
* Under ``spawn``/``forkserver``, the state is shipped once per
  *worker* (through the process arguments) instead of once per *task*.

Crash safety is preserved by construction: each worker is an
individual process with a private duplex pipe, so the scheduler in
:mod:`repro.core.search` can kill, discard, and lazily replace one
worker without disturbing the others — none of the fate-sharing of a
``ProcessPoolExecutor``, where a single dead process poisons the whole
executor.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..telemetry import get_bus
from ..telemetry.events import (
    DRIVER_POOL_WORKER_EXIT,
    DRIVER_POOL_WORKER_START,
)

#: State a forked pool worker inherits instead of unpickling:
#: ``(worker_fn, payload_builder)``.  Set by :meth:`WorkerPool.spawn`
#: immediately before each fork and cleared right after, under
#: :data:`_FORK_LOCK` — pools are spawned concurrently from daemon
#: worker threads, and an unguarded set/fork/clear lets one pool's
#: child inherit another pool's state.
_FORK_STATE: Optional[Tuple[Callable, Callable]] = None

#: Serializes the set-state/fork/clear-state window in :meth:`spawn`.
_FORK_LOCK = threading.Lock()

#: Seconds to wait for a worker to acknowledge shutdown before
#: escalating to ``terminate()``.
_SHUTDOWN_GRACE = 2.0


def _apply_worker_memory_limit(memory_limit_mb: Optional[float]) -> None:
    """Cap the worker's address space (the opt-in RSS guard).

    A runaway stage count then fails with a structured ``MemoryError``
    (surfaced as ``SearchFailure(kind="oom")``) instead of inviting the
    host OOM killer.  No-op where ``resource`` is unavailable or the
    host forbids lowering limits.
    """
    if memory_limit_mb is None:
        return
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX host
        return
    limit = int(memory_limit_mb * 1024 * 1024)
    try:
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ValueError, OSError):  # pragma: no cover - restrictive host
        pass


def _pool_worker_main(
    conn, memory_limit_mb: Optional[float], shipped_state
) -> None:
    """Task loop of one pool worker.

    Receives tasks over the pipe until a ``None`` sentinel (or a closed
    pipe) arrives.  Every task runs under a fresh telemetry bus with a
    capture sink — the forked parent bus, and any file handles its
    sinks hold, is never written — and its events travel back alongside
    the result so the parent can merge them with worker attribution.
    A task that raises reports ``("error", message, events)`` and the
    worker *survives* to take the next task; only a crash (abort,
    kill, unhandled exit) loses the process, and the scheduler detects
    that through the dead pipe and exit code.
    """
    from ..telemetry import RingBufferSink, TelemetryBus, set_bus

    _apply_worker_memory_limit(memory_limit_mb)
    state = shipped_state if shipped_state is not None else _FORK_STATE
    worker_fn, payload_builder = state
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        bus = TelemetryBus()
        capture = bus.add_sink(RingBufferSink())
        set_bus(bus)
        try:
            result = worker_fn(payload_builder(task))
            conn.send(("ok", result, capture.events))
        except BaseException as exc:  # noqa: BLE001 - report, don't mask
            try:
                conn.send(
                    ("error", f"{type(exc).__name__}: {exc}", capture.events)
                )
            except (BrokenPipeError, OSError):
                break
    try:
        conn.close()
    except OSError:  # pragma: no cover - already gone
        pass


@dataclass
class PoolWorker:
    """One live pool process and its task pipe."""

    process: multiprocessing.Process
    conn: Any
    busy: bool = False
    tasks_done: int = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerPool:
    """Lazily-grown pool of restartable search workers.

    Workers are spawned on demand (a driver whose deadline already
    expired forks nothing), capped at ``max_workers``, and reused
    across tasks and retry attempts.  The scheduler owns failure
    policy; the pool only owns process lifecycle:

    * :meth:`acquire` returns an idle worker, growing the pool if
      allowed, or ``None`` when saturated.
    * :meth:`discard` removes one worker (optionally killing it) —
      used for crashes and timeouts; the next :meth:`acquire` forks a
      replacement.
    * :meth:`shutdown` drains idle workers with a sentinel and
      escalates to ``terminate()`` after a grace period.

    ``driver.pool.worker_start`` / ``driver.pool.worker_exit`` events
    record each process's lifetime and task count, so run logs show
    exactly how much process churn the run paid.
    """

    def __init__(
        self,
        worker_fn: Callable,
        payload_builder: Callable,
        *,
        max_workers: int,
        memory_limit_mb: Optional[float] = None,
        bus=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._state = (worker_fn, payload_builder)
        self._max_workers = max_workers
        self._memory_limit_mb = memory_limit_mb
        self._ctx = multiprocessing.get_context()
        self._fork = self._ctx.get_start_method() == "fork"
        self._bus = bus if bus is not None else get_bus()
        self._workers: List[PoolWorker] = []
        self.num_forks = 0

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def workers(self) -> Tuple[PoolWorker, ...]:
        return tuple(self._workers)

    def idle_worker(self) -> Optional[PoolWorker]:
        for worker in self._workers:
            if not worker.busy and worker.alive():
                return worker
        return None

    def can_grow(self) -> bool:
        return len(self._workers) < self._max_workers

    def spawn(self) -> PoolWorker:
        """Fork one new worker (inheriting state when fork is used)."""
        global _FORK_STATE
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        shipped = None if self._fork else self._state
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, self._memory_limit_mb, shipped),
            daemon=True,  # a hung worker must not block interpreter exit
        )
        with _FORK_LOCK:
            if self._fork:
                _FORK_STATE = self._state
            try:
                process.start()
            finally:
                if self._fork:
                    _FORK_STATE = None
        child_conn.close()
        worker = PoolWorker(process=process, conn=parent_conn)
        self._workers.append(worker)
        self.num_forks += 1
        self._bus.emit(
            DRIVER_POOL_WORKER_START,
            source="driver",
            worker_pid=process.pid,
            pool_size=len(self._workers),
            forks=self.num_forks,
        )
        return worker

    def acquire(self) -> Optional[PoolWorker]:
        """An idle worker, a fresh one if the pool may grow, or None."""
        worker = self.idle_worker()
        if worker is None and self.can_grow():
            worker = self.spawn()
        return worker

    def discard(self, worker: PoolWorker, *, kill: bool = False) -> None:
        """Remove ``worker`` from the pool (terminating it if asked)."""
        if worker in self._workers:
            self._workers.remove(worker)
        if kill and worker.process.is_alive():
            worker.process.terminate()
        worker.process.join()
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
        self._bus.emit(
            DRIVER_POOL_WORKER_EXIT,
            source="driver",
            worker_pid=worker.pid,
            tasks=worker.tasks_done,
            killed=kill,
            exitcode=worker.process.exitcode,
        )

    def shutdown(self) -> None:
        """Drain every remaining worker (sentinel, then terminate)."""
        for worker in list(self._workers):
            if worker.alive() and not worker.busy:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + _SHUTDOWN_GRACE
        for worker in list(self._workers):
            remaining = max(0.0, deadline - time.monotonic())
            worker.process.join(timeout=remaining)
            self.discard(worker, kill=worker.process.is_alive())

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
