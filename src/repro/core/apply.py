"""Primitive application: turning a Table 1 row into candidate configs.

Every ``apply_*`` function takes the current search context and returns
a (possibly empty) list of *valid* successor configurations.  Argument
values follow the greedy strategies of §4.1 (via
:mod:`repro.core.arguments`); the §4.3 optimizations are built in:
inc/dec-rc is re-fitted after every memory-affecting primitive, and
op movement relays through intermediate stages when the bottleneck and
the idlest stage are not adjacent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..parallel.stage import StageConfig
from ..parallel.validation import is_valid
from ..perfmodel.model import PerfModel
from ..perfmodel.report import PerfReport
from .arguments import op_move_counts, tune_recompute
from .bottleneck import Bottleneck


@dataclass
class ApplyContext:
    """Everything a primitive needs to propose successors.

    ``attach_recompute`` enables §4.3's "attach inc/dec-rc to every
    primitive" combination; the ablation benches turn it off.
    """

    graph: OpGraph
    cluster: ClusterSpec
    perf_model: PerfModel
    config: ParallelConfig
    report: PerfReport
    bottleneck: Bottleneck
    attach_recompute: bool = True

    @property
    def stage_index(self) -> int:
        return self.bottleneck.stage

    def retune(self, config, stage_indices):
        """Re-fit recomputation when the combination is enabled."""
        if not self.attach_recompute:
            return config
        return tune_recompute(self.perf_model, config, stage_indices)


# ----------------------------------------------------------------------
# op movement (inc-op# / dec-op#), with §4.3 relay combination
# ----------------------------------------------------------------------
def move_ops(
    config: ParallelConfig,
    graph: OpGraph,
    src: int,
    dst: int,
    count: int,
) -> Optional[ParallelConfig]:
    """Relay ``count`` ops from stage ``src`` toward stage ``dst``.

    When the stages are not adjacent, every boundary along the path
    shifts by ``count`` (§4.3's combined inc/dec-op#): the net effect
    moves ``count`` ops out of ``src`` and into ``dst`` while the
    intermediate stages trade an equal number through.  Ops that change
    stage adopt the parallel settings of a native op of their new stage
    and drop their recompute flag (re-fitted later).

    Returns ``None`` when any stage would become empty.
    """
    if src == dst or count < 1:
        return None
    num_stages = config.num_stages
    bounds = [s.start for s in config.stages] + [config.stages[-1].end]
    if src < dst:
        for j in range(src + 1, dst + 1):
            bounds[j] -= count
    else:
        for j in range(dst + 1, src + 1):
            bounds[j] += count
    for i in range(num_stages):
        if bounds[i + 1] - bounds[i] < 1:
            return None
    tp, dp, tp_dim, rc, old_stage = config.gather_arrays()
    stages: List[StageConfig] = []
    for i, old in enumerate(config.stages):
        lo, hi = bounds[i], bounds[i + 1]
        if lo == old.start and hi == old.end:
            # Span untouched by the relay: share the stage object so
            # its cached digest (and stage-level cost) stays valid.
            stages.append(old)
            continue
        seg_tp = tp[lo:hi].copy()
        seg_dp = dp[lo:hi].copy()
        seg_dim = tp_dim[lo:hi].copy()
        seg_rc = rc[lo:hi].copy()
        moved = old_stage[lo:hi] != i
        if np.any(moved):
            native = np.where(~moved)[0]
            if native.size == 0:
                return None
            anchor = native[0] if lo > old.start else native[-1]
            seg_tp[moved] = seg_tp[anchor]
            seg_dp[moved] = seg_dp[anchor]
            seg_dim[moved] = 0
            seg_rc[moved] = False
        # Clamp partition-option indices for ops new to this setting.
        limits = np.asarray(
            [config_graph_num_options(graph, k) for k in range(lo, hi)]
        )
        seg_dim = np.minimum(seg_dim, limits - 1)
        stages.append(
            StageConfig(
                start=lo,
                end=hi,
                num_devices=old.num_devices,
                tp=seg_tp,
                dp=seg_dp,
                tp_dim=seg_dim,
                recompute=seg_rc,
            )
        )
    return ParallelConfig(
        stages=stages, microbatch_size=config.microbatch_size
    )


def config_graph_num_options(graph: OpGraph, op_index: int) -> int:
    """Partition-option count of one op (array-backed helper)."""
    return int(graph.arrays.num_options[op_index])


def _idlest_stage(ctx: ApplyContext, exclude: int) -> Optional[int]:
    times = ctx.report.stage_times()
    order = np.argsort(times)
    for stage in order:
        if int(stage) != exclude:
            return int(stage)
    return None


def apply_dec_op(ctx: ApplyContext) -> List[ParallelConfig]:
    """Shrink the bottleneck stage's op span toward the idlest stage."""
    src = ctx.stage_index
    if ctx.config.num_stages < 2:
        return []
    if ctx.bottleneck.is_oom:
        # Send ops to the stage with the most memory headroom.
        memories = ctx.report.peak_memories
        order = np.argsort(memories)
        dst = next((int(s) for s in order if int(s) != src), None)
    else:
        dst = _idlest_stage(ctx, exclude=src)
    if dst is None:
        return []
    neighbor = src - 1 if dst < src else src + 1
    counts = op_move_counts(
        ctx.graph, ctx.config, src, neighbor, from_front=dst < src
    )
    candidates = []
    for count in counts:
        moved = move_ops(ctx.config, ctx.graph, src, dst, count)
        if moved is None:
            continue
        affected = list(range(min(src, dst), max(src, dst) + 1))
        moved = ctx.retune(moved, affected)
        candidates.append(moved)
    return _finalize(ctx, candidates)


def apply_inc_op(ctx: ApplyContext) -> List[ParallelConfig]:
    """Grow the bottleneck stage by pulling ops from a busy neighbour."""
    dst = ctx.stage_index
    if ctx.config.num_stages < 2:
        return []
    times = ctx.report.stage_times()
    order = np.argsort(times)[::-1]
    src = next((int(s) for s in order if int(s) != dst), None)
    if src is None:
        return []
    neighbor = dst  # balance against the receiving stage
    counts = op_move_counts(
        ctx.graph, ctx.config, src, neighbor, from_front=dst < src
    )
    candidates = []
    for count in counts:
        moved = move_ops(ctx.config, ctx.graph, src, dst, count)
        if moved is None:
            continue
        affected = list(range(min(src, dst), max(src, dst) + 1))
        moved = ctx.retune(moved, affected)
        candidates.append(moved)
    return _finalize(ctx, candidates)


# ----------------------------------------------------------------------
# microbatch size (inc-mbs / dec-mbs), model-level
# ----------------------------------------------------------------------
def apply_inc_mbs(ctx: ApplyContext) -> List[ParallelConfig]:
    """Double the aggregated microbatch size (fewer, fatter kernels)."""
    mbs = ctx.config.microbatch_size * 2
    if ctx.graph.global_batch_size % mbs:
        return []
    new = ctx.config.mutated_copy()
    new.microbatch_size = mbs
    new = ctx.retune(new, list(range(new.num_stages)))
    return _finalize(ctx, [new])


def apply_dec_mbs(ctx: ApplyContext) -> List[ParallelConfig]:
    """Halve the aggregated microbatch size (less activation memory)."""
    mbs = ctx.config.microbatch_size // 2
    if mbs < 1 or ctx.graph.global_batch_size % mbs:
        return []
    for stage in ctx.config.stages:
        if np.any(mbs % stage.dp):
            return []
    new = ctx.config.mutated_copy()
    new.microbatch_size = mbs
    new = ctx.retune(new, list(range(new.num_stages)))
    return _finalize(ctx, [new])


# ----------------------------------------------------------------------
# dp / tp concurrency (inc/dec-dp, inc/dec-tp)
# ----------------------------------------------------------------------
def _swap_within_stage(
    ctx: ApplyContext, stage_index: int, *, toward: str
) -> Optional[ParallelConfig]:
    """Trade dp for tp (or back) inside a stage, devices unchanged."""
    stage = ctx.config.stages[stage_index]
    if toward == "tp":
        movable = stage.dp >= 2
    else:
        movable = stage.tp >= 2
    if not np.any(movable):
        return None
    new = ctx.config.mutated_copy([stage_index])
    target = new.stages[stage_index]
    if toward == "tp":
        target.tp[movable] *= 2
        target.dp[movable] //= 2
    else:
        new_dp = target.dp[movable] * 2
        if np.any(new.microbatch_size % new_dp):
            return None
        target.dp[movable] = new_dp
        target.tp[movable] //= 2
    return ctx.retune(new, [stage_index])


def _choose_partner(
    ctx: ApplyContext, wanted_devices: int
) -> Optional[int]:
    """Partner stage donating/receiving devices (§3.2.1).

    Picks, among stages with the required device count, the one with
    the most available resources of the bottleneck's kind — lowest
    memory for OOM bottlenecks, lowest busy time otherwise.
    """
    src = ctx.stage_index
    eligible = [
        i for i, stage in enumerate(ctx.config.stages)
        if i != src and stage.num_devices == wanted_devices
    ]
    if not eligible:
        return None
    if ctx.bottleneck.primary_resource == "memory":
        memories = ctx.report.peak_memories
        return min(eligible, key=lambda i: memories[i])
    times = ctx.report.stage_times()
    return min(eligible, key=lambda i: times[i])


def _grow_devices(
    ctx: ApplyContext, *, grow_mechanism: str
) -> Optional[ParallelConfig]:
    """Double the bottleneck stage's devices, partner stage halves.

    Power-of-two accounting requires a partner holding exactly twice
    the bottleneck's devices (it donates half and stays a power of
    two).  The partner applies the paper's dec-dp/tp primitive.
    """
    src = ctx.stage_index
    stage = ctx.config.stages[src]
    partner = _choose_partner(ctx, wanted_devices=stage.num_devices * 2)
    if partner is None:
        return None
    new = ctx.config.mutated_copy([src, partner])
    grown = new.stages[src]
    grown.num_devices *= 2
    if grow_mechanism == "dp":
        new_dp = grown.dp * 2
        if np.any(new.microbatch_size % new_dp):
            return None
        grown.dp = new_dp
    else:
        grown.tp *= 2
    donor = new.stages[partner]
    donor.num_devices //= 2
    shrink_dp = donor.dp >= 2
    donor.dp[shrink_dp] //= 2
    donor.tp[~shrink_dp] //= 2
    if np.any(donor.tp < 1) or np.any(donor.dp < 1):
        return None
    return ctx.retune(new, [src, partner])


def _shrink_devices(
    ctx: ApplyContext, *, shrink_mechanism: str
) -> Optional[ParallelConfig]:
    """Halve the bottleneck stage's devices, donating to a partner."""
    src = ctx.stage_index
    stage = ctx.config.stages[src]
    if stage.num_devices < 2:
        return None
    partner = _choose_partner(ctx, wanted_devices=stage.num_devices // 2)
    if partner is None:
        return None
    new = ctx.config.mutated_copy([src, partner])
    shrunk = new.stages[src]
    shrunk.num_devices //= 2
    if shrink_mechanism == "dp":
        movable = shrunk.dp >= 2
        shrunk.dp[movable] //= 2
        shrunk.tp[~movable] //= 2
    else:
        movable = shrunk.tp >= 2
        shrunk.tp[movable] //= 2
        shrunk.dp[~movable] //= 2
    if np.any(shrunk.tp < 1) or np.any(shrunk.dp < 1):
        return None
    receiver = new.stages[partner]
    receiver.num_devices *= 2
    new_dp = receiver.dp * 2
    if np.any(new.microbatch_size % new_dp):
        receiver.tp *= 2
    else:
        receiver.dp = new_dp
    return ctx.retune(new, [src, partner])


def apply_inc_dp(ctx: ApplyContext) -> List[ParallelConfig]:
    """More data parallelism: tp->dp swap, or grow the device group."""
    candidates = [
        _swap_within_stage(ctx, ctx.stage_index, toward="dp"),
        _grow_devices(ctx, grow_mechanism="dp"),
    ]
    return _finalize(ctx, [c for c in candidates if c is not None])


def apply_inc_tp(ctx: ApplyContext) -> List[ParallelConfig]:
    """More tensor parallelism: dp->tp swap, or grow the device group."""
    candidates = [
        _swap_within_stage(ctx, ctx.stage_index, toward="tp"),
        _grow_devices(ctx, grow_mechanism="tp"),
    ]
    return _finalize(ctx, [c for c in candidates if c is not None])


def apply_dec_dp(ctx: ApplyContext) -> List[ParallelConfig]:
    """Less data parallelism: dp->tp swap, or shed devices."""
    candidates = [
        _swap_within_stage(ctx, ctx.stage_index, toward="tp"),
        _shrink_devices(ctx, shrink_mechanism="dp"),
    ]
    return _finalize(ctx, [c for c in candidates if c is not None])


def apply_dec_tp(ctx: ApplyContext) -> List[ParallelConfig]:
    """Less tensor parallelism: tp->dp swap, or shed devices."""
    candidates = [
        _swap_within_stage(ctx, ctx.stage_index, toward="dp"),
        _shrink_devices(ctx, shrink_mechanism="tp"),
    ]
    return _finalize(ctx, [c for c in candidates if c is not None])


# ----------------------------------------------------------------------
# recomputation (inc-rc / dec-rc)
# ----------------------------------------------------------------------
def apply_inc_rc(ctx: ApplyContext) -> List[ParallelConfig]:
    """Recompute more ops in the bottleneck stage (memory relief)."""
    from .arguments import greedy_recompute

    stage_index = ctx.stage_index
    candidates = []
    fitted = greedy_recompute(ctx.perf_model, ctx.config, stage_index)
    if fitted is not None:
        candidates.append(fitted)
    stage = ctx.config.stages[stage_index]
    if not np.all(stage.recompute):
        everything = ctx.config.mutated_copy([stage_index])
        everything.stages[stage_index].recompute[:] = True
        candidates.append(everything)
        half = ctx.config.mutated_copy([stage_index])
        target = half.stages[stage_index]
        from .arguments import stage_activation_bytes

        act = stage_activation_bytes(ctx.graph, ctx.config, stage_index)
        order = np.argsort(act)[::-1]
        target.recompute[order[: max(1, stage.num_ops // 2)]] = True
        candidates.append(half)
    return _finalize(ctx, candidates)


def apply_dec_rc(ctx: ApplyContext) -> List[ParallelConfig]:
    """Recompute fewer ops in the bottleneck stage (compute relief)."""
    from .arguments import greedy_unrecompute

    stage_index = ctx.stage_index
    candidates = []
    relaxed = greedy_unrecompute(ctx.perf_model, ctx.config, stage_index)
    if relaxed is not None:
        candidates.append(relaxed)
    stage = ctx.config.stages[stage_index]
    if np.any(stage.recompute):
        nothing = ctx.config.mutated_copy([stage_index])
        nothing.stages[stage_index].recompute[:] = False
        candidates.append(nothing)
    return _finalize(ctx, candidates)


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
_APPLIERS: Dict[str, Callable[[ApplyContext], List[ParallelConfig]]] = {
    "inc-op#": apply_inc_op,
    "dec-op#": apply_dec_op,
    "inc-mbs": apply_inc_mbs,
    "dec-mbs": apply_dec_mbs,
    "inc-dp": apply_inc_dp,
    "dec-dp": apply_dec_dp,
    "inc-tp": apply_inc_tp,
    "dec-tp": apply_dec_tp,
    "inc-rc": apply_inc_rc,
    "dec-rc": apply_dec_rc,
}


#: Appliers for extension primitives (see primitives.register_primitive).
_EXTENSION_APPLIERS: Dict[
    str, Callable[[ApplyContext], List[ParallelConfig]]
] = {}


def register_applier(
    name: str,
    applier: Callable[[ApplyContext], List[ParallelConfig]],
) -> None:
    """Attach the candidate generator of an extension primitive.

    The applier receives an :class:`ApplyContext` and returns candidate
    configurations; they are validated and deduplicated by the caller
    exactly like built-in primitives' candidates.
    """
    if name in _APPLIERS:
        raise ValueError(f"cannot override built-in applier {name!r}")
    _EXTENSION_APPLIERS[name] = applier


def unregister_applier(name: str) -> None:
    """Remove an extension applier (built-ins cannot be removed)."""
    if name in _APPLIERS:
        raise ValueError(f"cannot unregister built-in applier {name!r}")
    _EXTENSION_APPLIERS.pop(name, None)


def has_applier(name: str) -> bool:
    """Whether a candidate generator exists for ``name``."""
    return name in _APPLIERS or name in _EXTENSION_APPLIERS


def apply_primitive(name: str, ctx: ApplyContext) -> List[ParallelConfig]:
    """Generate valid successor configurations for one primitive."""
    applier = _APPLIERS.get(name) or _EXTENSION_APPLIERS.get(name)
    if applier is None:
        raise KeyError(f"unknown primitive {name!r}")
    candidates = applier(ctx)
    if name in _EXTENSION_APPLIERS:
        # Extension candidates go through the same validity gate.
        return _finalize(ctx, list(candidates))
    return candidates


def _finalize(
    ctx: ApplyContext, candidates: List[ParallelConfig]
) -> List[ParallelConfig]:
    """Validate and locally dedupe candidate configurations."""
    seen = {ctx.config.signature()}
    result = []
    for candidate in candidates:
        if candidate is None:
            continue
        signature = candidate.signature()
        if signature in seen:
            continue
        seen.add(signature)
        if is_valid(candidate, ctx.graph, ctx.cluster):
            result.append(candidate)
    return result
