"""Top-level Aceso search (Algorithm 1) and the stage-count driver.

``AcesoSearch`` iterates: identify the bottleneck, run the multi-hop
primitive search, fall back to secondary bottlenecks, apply op-level
fine-tuning, and restart from the best unexplored configuration when an
iteration stalls — until the budget runs out or nothing is left to
explore.

``search_all_stage_counts`` reproduces §4.3's "parallel search of
configurations under different pipeline stage numbers": independent
searches per stage count whose *parallel* cost is the slowest single
search (reported alongside the serial total).

The multiprocess driver is crash-safe and self-healing: stage counts
are dispatched onto a persistent :class:`~repro.core.pool.WorkerPool`
whose processes load the problem once (inherited at fork) and serve
many tasks, each under an optional per-count timeout.  Failed or hung
counts are retried with exponential backoff on individually
restartable workers, surviving results are always returned (failures
become structured :class:`SearchFailure` records instead of
exceptions), and — with a checkpoint path — completed stage counts
persist to JSON so an interrupted search resumes without repeating
work.
"""

from __future__ import annotations

import functools
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..parallel.initializer import balanced_config
from ..perfmodel.model import PerfModel
from ..perfmodel.report import PerfReport
from ..telemetry import WARNING, CallbackSink, Event, get_bus
from ..telemetry.events import (
    DRIVER_BEGIN,
    DRIVER_COUNT_COMPLETED,
    DRIVER_COUNT_FAILED,
    DRIVER_COUNT_RESTORED,
    DRIVER_END,
    DRIVER_WORKER_CRASH,
    DRIVER_WORKER_ERROR,
    DRIVER_WORKER_RETRY,
    DRIVER_WORKER_SPAWN,
    DRIVER_WORKER_TIMEOUT,
)
from .bottleneck import rank_bottlenecks
from .budget import Deadline, SearchBudget
from .finetune import finetune
from .multihop import MultiHopSearcher
from .pool import PoolWorker, WorkerPool, _apply_worker_memory_limit  # noqa: F401 - re-export
from .searcher import (
    SearchContext,
    Searcher,
    build_options,
    get_searcher_class,
    register_searcher,
)
from .trace import SearchTrace

#: Extra seconds a worker subprocess gets past the request deadline to
#: ship its best-so-far partial result home before the watchdog reaps it.
DEADLINE_KILL_GRACE = 1.0


@dataclass
class SearchResult:
    """Outcome of one search run.

    ``num_estimates`` counts the estimates *this run* consumed (the
    delta of the model's counter over the run), so serial searches
    sharing one :class:`PerfModel` and parallel workers with fresh
    models report the same quantity.  ``visited_signatures`` snapshots
    the dedup set for checkpointing.

    ``partial`` marks a search cut short by a :class:`Deadline`: the
    plan is the best found by that point — bit-exact with what an
    undeadlined search held after the same completed iterations — not
    the plan a full budget would have produced.

    ``estimates_to_best`` is the estimate count at the moment the best
    configuration was last improved — the "cost to best" axis of the
    strategy arena's quality-vs-cost curves.  It is a runtime-only
    field (not persisted in checkpoints), defaulting to 0 on restore.
    """

    best_config: ParallelConfig
    best_objective: float
    best_report: PerfReport
    trace: SearchTrace
    top_configs: List[Tuple[float, ParallelConfig]]
    num_estimates: int
    elapsed_seconds: float
    converged: bool
    visited_signatures: Tuple[str, ...] = ()
    partial: bool = False
    estimates_to_best: int = 0

    @property
    def is_feasible(self) -> bool:
        return not self.best_report.is_oom


@dataclass
class AcesoSearchOptions:
    """Tunable knobs of the search (paper defaults).

    ``finetune_dirty_only`` scopes the op-level fine-tuning pass to the
    stages the multi-hop result actually changed (plus its current top
    bottleneck) instead of sweeping every stage — a one-stage edit on a
    deep pipeline then re-costs a handful of stages, not all of them.
    """

    max_hops: int = 7
    max_bottlenecks: int = 3
    top_k: int = 5
    enable_finetune: bool = True
    use_heuristic2: bool = True
    seed: int = 0
    finetune_split_points: int = 8
    beam_width: int = 2
    max_nodes_per_iteration: int = 60
    attach_recompute: bool = True
    finetune_dirty_only: bool = True


@register_searcher
class AcesoSearch(Searcher):
    """Algorithm 1: iterative bottleneck alleviation (the ``greedy``
    strategy of the :mod:`repro.core.searcher` registry)."""

    strategy = "greedy"
    options_class = AcesoSearchOptions

    def run(
        self,
        init_config: ParallelConfig,
        budget: SearchBudget,
        *,
        deadline: Optional[Deadline] = None,
    ) -> SearchResult:
        """Search from ``init_config`` until ``budget`` is exhausted.

        Every iteration outcome is emitted as a ``search.iteration``
        telemetry event; the returned :class:`SearchTrace` is rebuilt
        from that event stream (``SearchTrace.from_events``), so run
        logs, checkpoints, and ablation benches all read the same
        numbers.

        ``deadline`` makes the search *anytime*: the cutoff is checked
        cooperatively at iteration boundaries (and inside the multi-hop
        search, which then halts early), and when it trips the search
        returns its best-so-far plan flagged ``partial=True`` instead
        of raising.  An iteration in flight when the deadline expires
        is discarded rather than applied — its multi-hop may have been
        truncated — so the iterations that *were* applied are a
        bit-exact prefix of what an undeadlined search would have done.
        """
        opts = self.options
        ctx = SearchContext(
            self.perf_model, budget, deadline=deadline, top_k=opts.top_k
        )
        rng = (
            None
            if opts.use_heuristic2
            else np.random.default_rng(opts.seed)
        )
        searcher = MultiHopSearcher(
            self.graph,
            self.cluster,
            self.perf_model,
            max_hops=opts.max_hops,
            rng=rng,
            should_stop=ctx.should_stop,
            beam_width=opts.beam_width,
            max_nodes=opts.max_nodes_per_iteration,
            attach_recompute=opts.attach_recompute,
        )

        config = init_config
        ctx.open(init_config)

        while not ctx.exhausted():
            if ctx.deadline_expired():
                ctx.partial = True
                break
            ctx.iteration += 1
            report = self.perf_model.estimate(config)
            bottlenecks = rank_bottlenecks(report)[: opts.max_bottlenecks]
            result = None
            tried = 0
            for bottleneck in bottlenecks:
                tried += 1
                result = searcher.search(
                    config,
                    visited=ctx.visited,
                    unexplored=ctx.unexplored,
                    bottleneck=bottleneck,
                )
                if result is not None:
                    break
            if ctx.deadline_expired():
                # The deadline tripped mid-iteration: the multi-hop may
                # have halted early, so this outcome is not what a full
                # search would have applied.  Drop it to keep the
                # applied iterations a bit-exact anytime prefix.
                ctx.iteration -= 1
                ctx.partial = True
                break
            if result is not None:
                new_config = result.config
                if opts.enable_finetune:
                    scope = None
                    if (
                        opts.finetune_dirty_only
                        and result.dirty_stages is not None
                    ):
                        new_report = self.perf_model.estimate(new_config)
                        hot = rank_bottlenecks(new_report)[0].stage
                        scope = sorted(set(result.dirty_stages) | {hot})
                    new_config = finetune(
                        new_config,
                        self.graph,
                        self.cluster,
                        self.perf_model,
                        max_split_points=opts.finetune_split_points,
                        stages=scope,
                    )
                if ctx.deadline_expired():
                    # Same prefix rule for a deadline hit in finetune.
                    ctx.iteration -= 1
                    ctx.partial = True
                    break
                objective = self.perf_model.objective(new_config)
                config = new_config
                ctx.observe(objective, new_config)
                ctx.record_iteration(
                    bottlenecks_tried=tried,
                    hops_used=result.hops_used,
                    improved=True,
                    objective=objective,
                )
            else:
                restart = ctx.unexplored.pop_best()
                ctx.record_iteration(
                    bottlenecks_tried=tried,
                    hops_used=0,
                    improved=False,
                    objective=self.perf_model.objective(config),
                )
                if restart is None:
                    ctx.converged = True
                    break
                config = restart

        return ctx.finish()


@dataclass
class StageCountResult:
    """Per-stage-count outcome of the parallel search driver."""

    num_stages: int
    result: SearchResult


class SearchFailedError(RuntimeError):
    """No stage-count search produced a result."""


@dataclass(frozen=True)
class SearchFailure:
    """Structured record of one stage count that never succeeded.

    ``kind`` classifies the terminal cause so callers (the planner
    service's circuit breaker, operators reading run logs) can react
    without parsing error strings:

    - ``"error"``    — the worker raised
    - ``"oom"``      — the worker hit its ``--worker-memory-mb`` cap
    - ``"crash"``    — the worker process died
    - ``"timeout"``  — killed after ``timeout_per_count`` seconds
    - ``"deadline"`` — shed or reaped because the request deadline
      expired (never retried: there is no time left to retry in)
    """

    num_stages: int
    error: str
    attempts: int
    kind: str = "error"


def retry_delay(
    base: float, num_stages: int, attempt: int, seed: int = 0
) -> float:
    """Exponential backoff with deterministic, per-attempt jitter.

    Workers that fail simultaneously usually share a cause (a bad node,
    a full disk); retrying them in lockstep re-forks the whole herd at
    once.  Each (stage count, attempt) therefore draws a multiplier in
    ``[1, 2)`` from its own seeded RNG — deterministic across runs for
    reproducibility, decorrelated across stage counts so the re-forks
    spread out.
    """
    jitter = random.Random(f"{seed}:{num_stages}:{attempt}").random()
    return base * (2 ** attempt) * (1.0 + jitter)


@dataclass
class MultiStageSearchResult:
    """Aggregate of the per-stage-count searches.

    ``workers`` records how many processes searched concurrently and
    ``wall_seconds`` the measured wall-clock of the whole driver —
    with ``workers > 1`` the §4.3 "parallel cost" is observed rather
    than simulated.  ``failures`` lists stage counts whose workers
    crashed, raised, or timed out past their retry budget; the runs
    that survived are still reported.  ``pool_forks`` / ``pool_tasks``
    record the persistent pool's process churn: tasks exceeding forks
    is worker reuse, forks exceeding the worker cap means crashed or
    reaped workers were replaced (both zero on the serial path).
    """

    runs: List[StageCountResult] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0
    failures: List[SearchFailure] = field(default_factory=list)
    pool_forks: int = 0
    pool_tasks: int = 0

    def _require_runs(self, what: str) -> None:
        if not self.runs:
            failed = [f.num_stages for f in self.failures]
            detail = (
                f"stage counts {failed} all failed "
                f"({'; '.join(f.error for f in self.failures)})"
                if failed
                else "no stage counts were searched"
            )
            raise SearchFailedError(f"cannot report {what}: {detail}")

    @property
    def best(self) -> SearchResult:
        self._require_runs("best")
        return min(
            (run.result for run in self.runs),
            key=lambda r: r.best_objective,
        )

    @property
    def serial_seconds(self) -> float:
        """Total compute cost if searches ran one after another."""
        return sum(run.result.elapsed_seconds for run in self.runs)

    @property
    def parallel_seconds(self) -> float:
        """Wall-clock cost when stage counts search in parallel (§4.3)."""
        self._require_runs("parallel_seconds")
        return max(run.result.elapsed_seconds for run in self.runs)

    @property
    def num_estimates(self) -> int:
        """Total estimates consumed across all per-count runs.

        Each run reports its own delta (see :class:`SearchResult`), so
        the sum is directly comparable between the serial path (shared
        model) and the multiprocess path (fresh model per worker).
        """
        return sum(run.result.num_estimates for run in self.runs)

    @property
    def partial(self) -> bool:
        """Whether a deadline cut this search short.

        True when any surviving run holds a best-so-far (rather than
        budget-complete) plan, or when stage counts were shed before
        they could start.  A partial result is still a *valid* plan —
        the anytime contract — it just isn't the full search's answer.
        """
        return any(run.result.partial for run in self.runs) or any(
            f.kind == "deadline" for f in self.failures
        )

    def top_configs(self, k: int = 5) -> List[Tuple[float, ParallelConfig]]:
        merged: List[Tuple[float, ParallelConfig]] = []
        seen = set()
        for run in self.runs:
            for objective, config in run.result.top_configs:
                signature = config.signature()
                if signature not in seen:
                    seen.add(signature)
                    merged.append((objective, config))
        merged.sort(key=lambda pair: pair[0])
        return merged[:k]


def default_stage_counts(graph: OpGraph, cluster: ClusterSpec) -> List[int]:
    """Pipeline stage counts worth searching for this problem size."""
    limit = min(cluster.num_gpus, graph.num_ops)
    counts = []
    value = 1
    while value <= limit:
        counts.append(value)
        value *= 2
    return counts


def _stage_count_worker(payload: tuple) -> StageCountResult:
    """Search one stage count in a fresh process.

    Module-level so it pickles; rebuilds a :class:`PerfModel` from the
    (picklable) graph/cluster/database because live models carry cache
    state not worth shipping.  Budgets count estimate *deltas*, so a
    fresh model searches exactly like a shared serial one.
    """
    (graph, cluster, database, count, options, budget_kwargs,
     model_kwargs, deadline_seconds, strategy) = payload
    perf_model = PerfModel(graph, cluster, database, **model_kwargs)
    init = balanced_config(graph, cluster, count)
    searcher_cls = get_searcher_class(strategy)
    search = searcher_cls(graph, cluster, perf_model, options=options)
    deadline = (
        None if deadline_seconds is None else Deadline(deadline_seconds)
    )
    result = search.run(
        init, SearchBudget(**budget_kwargs), deadline=deadline
    )
    return StageCountResult(num_stages=count, result=result)


def _payload_from_task(shared: tuple, task: Tuple[int, Optional[float]]):
    """Rebuild a :func:`_stage_count_worker` payload inside a pool worker.

    ``shared`` is the per-pool problem state (inherited by fork or
    shipped once per worker); ``task`` is the tiny per-dispatch tuple
    ``(count, deadline_seconds)`` that actually crosses the pipe.
    """
    (graph, cluster, database, options, budget_kwargs,
     model_kwargs, strategy) = shared
    count, deadline_seconds = task
    return (graph, cluster, database, count, options, budget_kwargs,
            model_kwargs, deadline_seconds, strategy)


@dataclass
class _ActiveTask:
    worker: PoolWorker
    kill_at: Optional[float]
    attempt: int


def _failure_kind_from_error(error: str) -> str:
    """Classify a worker's error string into a ``SearchFailure.kind``."""
    if error.startswith("MemoryError"):
        return "oom"
    return "error"


def _run_counts_in_pool(
    counts: Sequence[int],
    task_for,
    worker_fn,
    payload_builder,
    *,
    max_workers: int,
    timeout_per_count: Optional[float],
    max_retries: int,
    retry_backoff: float,
    jitter_seed: int = 0,
    deadline: Optional[Deadline] = None,
    worker_memory_mb: Optional[float] = None,
    bus=None,
):
    """Self-healing scheduler over a persistent worker pool.

    Stage counts are dispatched to long-lived :class:`WorkerPool`
    processes that load the problem state once (inherited read-only at
    fork under the POSIX default) and then receive only a tiny
    ``(count, deadline_seconds)`` tuple per task — no per-task pickling
    of the graph or profile database.  Unlike a
    ``ProcessPoolExecutor`` — where one dead worker breaks the pool and
    takes every pending future with it — each pool worker owns a
    private pipe, so a worker that crashes or blows its per-count
    deadline is discarded *individually* and lazily replaced; tasks
    that raise cleanly keep their worker alive for reuse.  A failed
    count is retried with jittered exponential backoff
    (:func:`retry_delay`) up to ``max_retries`` extra attempts; the
    other counts never notice.  Returns ``(results, failures, stats)``
    — the first two keyed by stage count, ``stats`` a dict with the
    pool's process ``forks`` and dispatched ``tasks`` counts (tasks
    exceeding forks is the pool's reuse at work).

    A request ``deadline`` turns the scheduler anytime: workers search
    cooperatively against the remaining time, queued counts are shed as
    ``kind="deadline"`` failures once it expires, and a watchdog reaps
    any worker still running a task ``DEADLINE_KILL_GRACE`` seconds
    past it — workers are only ever forked on first dispatch, so an
    already-expired deadline forks nothing.  ``worker_memory_mb``
    applies an ``RLIMIT_AS`` cap inside each pool worker so a runaway
    count surfaces as ``kind="oom"``.

    Worker lifecycle (dispatch / retry / timeout / crash / completion)
    is published on the telemetry ``bus`` with the same event
    vocabulary as the old process-per-count scheduler
    (``driver.worker.spawn`` now marks a task dispatch, carrying the
    pool worker's pid), plus ``driver.pool.worker_start`` /
    ``driver.pool.worker_exit`` for actual process churn.  Completed
    and finally-failed counts carry their payload objects in private
    ``_result`` / ``_failure`` attrs for in-process subscribers
    (checkpointing), and each worker's own captured event stream is
    re-emitted with ``num_stages``/``attempt`` attribution.
    """
    bus = bus if bus is not None else get_bus()
    queue = deque((count, 0, 0.0) for count in counts)  # (count, attempt, not_before)
    active: dict = {}
    results: dict = {}
    failures: dict = {}
    dispatched = 0
    pool = WorkerPool(
        worker_fn,
        payload_builder,
        max_workers=max_workers,
        memory_limit_mb=worker_memory_mb,
        bus=bus,
    )

    def forward(worker_events, count: int, attempt: int) -> None:
        if not bus.active:
            return
        for event in worker_events:
            bus.emit_event(
                event.with_attrs(num_stages=count, attempt=attempt)
            )

    def register_failure(
        count: int, attempt: int, error: str, kind: str = "error"
    ) -> None:
        out_of_time = deadline is not None and deadline.expired()
        if attempt < max_retries and not out_of_time:
            delay = retry_delay(retry_backoff, count, attempt, jitter_seed)
            queue.append((count, attempt + 1, time.monotonic() + delay))
            bus.emit(
                DRIVER_WORKER_RETRY,
                source="driver",
                level=WARNING,
                num_stages=count,
                attempt=attempt,
                delay=delay,
                error=error,
            )
        else:
            failures[count] = SearchFailure(
                num_stages=count,
                error=error,
                attempts=attempt + 1,
                kind=kind,
            )
            bus.emit(
                DRIVER_COUNT_FAILED,
                source="driver",
                level=WARNING,
                num_stages=count,
                attempts=attempt + 1,
                error=error,
                failure_kind=kind,
                _failure=failures[count],
            )

    def shed_queued_past_deadline() -> None:
        while queue:
            count, attempt, _ = queue.popleft()
            failures[count] = SearchFailure(
                num_stages=count,
                error="deadline expired before this stage count was "
                "searched",
                attempts=attempt,
                kind="deadline",
            )
            bus.emit(
                DRIVER_COUNT_FAILED,
                source="driver",
                level=WARNING,
                num_stages=count,
                attempts=attempt,
                error=failures[count].error,
                failure_kind="deadline",
                _failure=failures[count],
            )

    try:
        while queue or active:
            now = time.monotonic()
            if deadline is not None and deadline.expired():
                # Anytime contract: stop dispatching, shed the backlog,
                # and give in-flight tasks one grace window to return
                # their best-so-far partial results before the watchdog
                # reaps their workers.
                shed_queued_past_deadline()
                reap_at = now + DEADLINE_KILL_GRACE
                for task in active.values():
                    if task.kill_at is None or task.kill_at > reap_at:
                        task.kill_at = reap_at
            # Dispatch whatever fits, skipping retries still in backoff.
            # Workers fork lazily inside pool.acquire(), so a queue that
            # drains without dispatching (expired deadline) forks none.
            for _ in range(len(queue)):
                count, attempt, not_before = queue[0]
                if not_before > now:
                    queue.rotate(-1)
                    continue
                worker = pool.acquire()
                if worker is None:
                    break  # every worker busy and the pool is at cap
                queue.popleft()
                try:
                    worker.conn.send(task_for(count))
                except (BrokenPipeError, OSError):
                    # The idle worker died between tasks; replace it and
                    # re-dispatch the task, which never started.
                    pool.discard(worker)
                    queue.appendleft((count, attempt, not_before))
                    continue
                worker.busy = True
                dispatched += 1
                bus.emit(
                    DRIVER_WORKER_SPAWN,
                    source="driver",
                    num_stages=count,
                    attempt=attempt,
                    worker_pid=worker.pid,
                )
                kill_at = (
                    now + timeout_per_count
                    if timeout_per_count is not None
                    else None
                )
                if deadline is not None:
                    left = deadline.remaining()
                    if left is not None:
                        reap_at = now + left + DEADLINE_KILL_GRACE
                        kill_at = (
                            reap_at if kill_at is None
                            else min(kill_at, reap_at)
                        )
                active[count] = _ActiveTask(
                    worker=worker,
                    kill_at=kill_at,
                    attempt=attempt,
                )

            finished = []
            for count, task in active.items():
                worker = task.worker
                message = None
                if worker.conn.poll(0):
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        message = None
                if message is None and not worker.alive():
                    # The process exited between our poll and now —
                    # drain the pipe once more before declaring a crash.
                    if worker.conn.poll(0.05):
                        try:
                            message = worker.conn.recv()
                        except (EOFError, OSError):
                            message = None
                if message is not None:
                    finished.append(count)
                    worker.busy = False
                    worker.tasks_done += 1
                    status, value, worker_events = message
                    forward(worker_events, count, task.attempt)
                    if status == "ok":
                        results[count] = value
                        bus.emit(
                            DRIVER_COUNT_COMPLETED,
                            source="driver",
                            num_stages=count,
                            attempt=task.attempt,
                            _result=value,
                        )
                    else:
                        bus.emit(
                            DRIVER_WORKER_ERROR,
                            source="driver",
                            level=WARNING,
                            num_stages=count,
                            attempt=task.attempt,
                            error=value,
                        )
                        register_failure(
                            count,
                            task.attempt,
                            value,
                            kind=_failure_kind_from_error(value),
                        )
                elif not worker.alive():
                    finished.append(count)
                    pool.discard(worker)
                    exitcode = worker.process.exitcode
                    bus.emit(
                        DRIVER_WORKER_CRASH,
                        source="driver",
                        level=WARNING,
                        num_stages=count,
                        attempt=task.attempt,
                        exitcode=exitcode,
                    )
                    register_failure(
                        count,
                        task.attempt,
                        "worker process died with exit code "
                        f"{exitcode}",
                        kind="crash",
                    )
                elif (
                    task.kill_at is not None
                    and time.monotonic() >= task.kill_at
                ):
                    pool.discard(worker, kill=True)
                    finished.append(count)
                    past_deadline = (
                        deadline is not None and deadline.expired()
                    )
                    bus.emit(
                        DRIVER_WORKER_TIMEOUT,
                        source="driver",
                        level=WARNING,
                        num_stages=count,
                        attempt=task.attempt,
                        timeout=timeout_per_count,
                        past_deadline=past_deadline,
                    )
                    if past_deadline:
                        register_failure(
                            count,
                            task.attempt,
                            "worker reaped past the request deadline",
                            kind="deadline",
                        )
                    else:
                        register_failure(
                            count,
                            task.attempt,
                            f"timed out after {timeout_per_count:.1f}s",
                            kind="timeout",
                        )
            for count in finished:
                active.pop(count)
            if active and not finished:
                time.sleep(0.005)
    finally:
        pool.shutdown()

    return results, failures, {"forks": pool.num_forks, "tasks": dispatched}


def search_all_stage_counts(
    graph: OpGraph,
    cluster: ClusterSpec,
    perf_model: PerfModel,
    *,
    stage_counts: Optional[Sequence[int]] = None,
    options=None,
    strategy: str = "greedy",
    strategy_kwargs: Optional[dict] = None,
    budget_per_count: Optional[dict] = None,
    workers: int = 1,
    timeout_per_count: Optional[float] = None,
    max_retries: int = 1,
    retry_backoff: float = 0.05,
    deadline: Optional[Deadline] = None,
    worker_memory_mb: Optional[float] = None,
    checkpoint_path=None,
    resume: bool = False,
    _worker_fn: Optional[Callable] = None,
) -> MultiStageSearchResult:
    """Run one independent search per pipeline stage count.

    ``strategy`` names the registered :class:`Searcher` to run for
    every stage count (default ``"greedy"``, the Algorithm 1 search);
    ``strategy_kwargs`` are validated against that strategy's options
    dataclass (typed ``ACE212``/``ACE213`` errors) and are mutually
    exclusive with passing a ready-made ``options`` object.

    ``budget_per_count`` holds :class:`SearchBudget` keyword arguments
    applied to each stage count's search (default: 60 iterations); its
    keys are validated up front so a typo fails before any worker
    forks.  With ``workers > 1`` stage counts are dispatched onto a
    persistent pool of up to ``workers`` processes that load the
    problem state once and are reused across tasks, each task under
    ``timeout_per_count`` seconds (``None`` = no limit); a count that
    raises, crashes its worker, or hangs is retried up to
    ``max_retries`` more times with jittered exponential backoff
    (:func:`retry_delay`, seeded from ``options.seed``), after which it
    becomes a :class:`SearchFailure` record while the surviving counts
    still return.  Results merge in stage-count order, so the outcome
    is deterministic and identical to the serial path.

    ``deadline`` makes the whole driver anytime: each per-count search
    stops cooperatively at the cutoff and returns its best-so-far plan
    flagged partial, counts that never started are shed as
    ``kind="deadline"`` failures, and the aggregate result reports
    ``.partial`` — the caller always gets the best valid plan found by
    the deadline instead of an exception.  ``worker_memory_mb`` caps
    each subprocess's address space (``RLIMIT_AS``) so a runaway count
    fails as ``kind="oom"`` instead of triggering the host OOM killer.

    ``checkpoint_path`` persists completed stage counts to JSON after
    each one finishes (deadline-cut partial runs are *not* recorded —
    they must be re-searched); with ``resume=True`` an existing
    checkpoint's completed counts are restored instead of re-searched
    (failed counts are retried), and a corrupt checkpoint file is
    quarantined to ``<path>.corrupt`` and the search starts fresh.
    Serial runs (``workers == 1``) checkpoint too but cannot enforce
    timeouts or memory caps.
    """
    from .checkpoint import SearchCheckpoint

    if stage_counts is None:
        counts = default_stage_counts(graph, cluster)
    else:
        counts = list(stage_counts)
    if not counts:
        raise ValueError("no stage counts to search")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    if retry_backoff < 0:
        raise ValueError("retry_backoff must be non-negative")
    if timeout_per_count is not None and timeout_per_count <= 0:
        raise ValueError("timeout_per_count must be positive")
    if worker_memory_mb is not None and worker_memory_mb <= 0:
        raise ValueError("worker_memory_mb must be positive")
    budget_kwargs = SearchBudget.validate_kwargs(
        dict(budget_per_count or {"max_iterations": 60})
    )
    get_searcher_class(strategy)  # typed ACE212 error on a bad name
    if options is None:
        options = build_options(strategy, strategy_kwargs)
    elif strategy_kwargs:
        raise ValueError(
            "pass either options or strategy_kwargs, not both"
        )
    worker_fn = _worker_fn or _stage_count_worker
    jitter_seed = options.seed if options is not None else 0

    context = {
        "num_ops": graph.num_ops,
        "num_gpus": cluster.num_gpus,
    }
    if strategy != "greedy":
        # Only non-default strategies stamp the checkpoint, so greedy
        # checkpoints stay byte-identical to pre-refactor files and old
        # checkpoints keep resuming.
        context["strategy"] = strategy
    checkpoint = None
    restored: List[StageCountResult] = []
    if checkpoint_path is not None:
        import os

        if resume and os.path.exists(checkpoint_path):
            checkpoint = SearchCheckpoint.load_or_quarantine(
                checkpoint_path
            )
        if checkpoint is None:
            checkpoint = SearchCheckpoint.new(
                counts, budget_kwargs, context, checkpoint_path
            )
            checkpoint.save()
        else:
            checkpoint.ensure_compatible(counts, budget_kwargs, context)
            restored = [
                run
                for run in checkpoint.restore_runs(perf_model)
                if run.num_stages in counts
            ]
    done_counts = {run.num_stages for run in restored}
    todo = [count for count in counts if count not in done_counts]

    started = time.perf_counter()
    outcome = MultiStageSearchResult(workers=min(workers, len(counts)))

    # Checkpoint recording subscribes to the driver's lifecycle events
    # instead of threading ad-hoc callbacks through the scheduler: the
    # serial loop and the multiprocess scheduler publish the same
    # ``driver.count.completed`` / ``driver.count.failed`` events, and
    # this sink (whose presence activates the bus) persists them.
    bus = get_bus()
    checkpoint_sink = None
    if checkpoint is not None:
        snapshot = checkpoint

        def record(event: Event) -> None:
            if event.name == DRIVER_COUNT_COMPLETED:
                run = event.attrs["_result"]
                if run.result.partial:
                    # A deadline-cut plan is best-so-far, not the
                    # budget's answer; resuming must re-search it.
                    return
                snapshot.record_run(run)
            else:
                snapshot.record_failure(event.attrs["_failure"])

        checkpoint_sink = bus.add_sink(CallbackSink(
            record,
            names=(DRIVER_COUNT_COMPLETED, DRIVER_COUNT_FAILED),
        ))

    bus.emit(
        DRIVER_BEGIN,
        source="driver",
        stage_counts=list(counts),
        workers=min(workers, len(counts)),
        restored=sorted(done_counts),
    )
    for run in restored:
        bus.emit(
            DRIVER_COUNT_RESTORED,
            source="driver",
            num_stages=run.num_stages,
        )

    results: dict = {run.num_stages: run for run in restored}
    failures: dict = {}
    try:
        if workers <= 1 or len(todo) <= 1:
            for count in todo:
                if deadline is not None and deadline.expired():
                    failures[count] = SearchFailure(
                        num_stages=count,
                        error="deadline expired before this stage count "
                        "was searched",
                        attempts=0,
                        kind="deadline",
                    )
                    bus.emit(
                        DRIVER_COUNT_FAILED,
                        source="driver",
                        level=WARNING,
                        num_stages=count,
                        attempts=0,
                        error=failures[count].error,
                        failure_kind="deadline",
                        _failure=failures[count],
                    )
                    continue
                attempt = 0
                while True:
                    try:
                        init = balanced_config(graph, cluster, count)
                        search = get_searcher_class(strategy)(
                            graph, cluster, perf_model, options=options
                        )
                        result = search.run(
                            init,
                            SearchBudget(**budget_kwargs),
                            deadline=deadline,
                        )
                    except Exception as exc:  # noqa: BLE001 - degrade, record
                        error = f"{type(exc).__name__}: {exc}"
                        out_of_time = (
                            deadline is not None and deadline.expired()
                        )
                        if attempt < max_retries and not out_of_time:
                            delay = retry_delay(
                                retry_backoff, count, attempt, jitter_seed
                            )
                            bus.emit(
                                DRIVER_WORKER_RETRY,
                                source="driver",
                                level=WARNING,
                                num_stages=count,
                                attempt=attempt,
                                delay=delay,
                                error=error,
                            )
                            time.sleep(delay)
                            attempt += 1
                            continue
                        failures[count] = SearchFailure(
                            num_stages=count,
                            error=error,
                            attempts=attempt + 1,
                            kind=_failure_kind_from_error(error),
                        )
                        bus.emit(
                            DRIVER_COUNT_FAILED,
                            source="driver",
                            level=WARNING,
                            num_stages=count,
                            attempts=attempt + 1,
                            error=error,
                            failure_kind=failures[count].kind,
                            _failure=failures[count],
                        )
                        break
                    run = StageCountResult(num_stages=count, result=result)
                    results[count] = run
                    bus.emit(
                        DRIVER_COUNT_COMPLETED,
                        source="driver",
                        num_stages=count,
                        attempt=attempt,
                        _result=run,
                    )
                    break
        elif todo:
            model_kwargs = {
                "cache_size": perf_model._cache_size,
                "stage_cache_size": perf_model._stage_cache_size,
                "reserve_safety_factor": perf_model.reserve_safety_factor,
            }
            # The heavy problem state crosses into pool workers exactly
            # once (inherited at fork, or shipped per worker under
            # spawn); each dispatched task is only (count, remaining).
            shared = (graph, cluster, perf_model.database, options,
                      budget_kwargs, model_kwargs, strategy)

            def task_for(count: int) -> Tuple[int, Optional[float]]:
                remaining = (
                    deadline.remaining() if deadline is not None else None
                )
                return (count, remaining)

            fresh, failures, pool_stats = _run_counts_in_pool(
                todo,
                task_for,
                worker_fn,
                functools.partial(_payload_from_task, shared),
                max_workers=min(workers, len(todo)),
                timeout_per_count=timeout_per_count,
                max_retries=max_retries,
                retry_backoff=retry_backoff,
                jitter_seed=jitter_seed,
                deadline=deadline,
                worker_memory_mb=worker_memory_mb,
                bus=bus,
            )
            results.update(fresh)
            outcome.pool_forks = pool_stats["forks"]
            outcome.pool_tasks = pool_stats["tasks"]
    finally:
        if checkpoint_sink is not None:
            bus.remove_sink(checkpoint_sink)

    # Deterministic merge in stage-count order, regardless of the order
    # workers finished (or which half came from a resumed checkpoint).
    outcome.runs.extend(results[count] for count in counts if count in results)
    outcome.failures.extend(
        failures[count] for count in counts if count in failures
    )
    outcome.wall_seconds = time.perf_counter() - started
    bus.emit(
        DRIVER_END,
        source="driver",
        completed=sorted(results),
        failed=sorted(failures),
        partial=outcome.partial,
        wall_seconds=outcome.wall_seconds,
    )
    return outcome
