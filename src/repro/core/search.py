"""Top-level Aceso search (Algorithm 1) and the stage-count driver.

``AcesoSearch`` iterates: identify the bottleneck, run the multi-hop
primitive search, fall back to secondary bottlenecks, apply op-level
fine-tuning, and restart from the best unexplored configuration when an
iteration stalls — until the budget runs out or nothing is left to
explore.

``search_all_stage_counts`` reproduces §4.3's "parallel search of
configurations under different pipeline stage numbers": independent
searches per stage count whose *parallel* cost is the slowest single
search (reported alongside the serial total).

The multiprocess driver is crash-safe and self-healing: every stage
count runs in its own subprocess with an optional per-count timeout,
failed or hung workers are retried with exponential backoff, surviving
results are always returned (failures become structured
:class:`SearchFailure` records instead of exceptions), and — with a
checkpoint path — completed stage counts persist to JSON so an
interrupted search resumes without repeating work.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..parallel.initializer import balanced_config
from ..perfmodel.model import PerfModel
from ..perfmodel.report import PerfReport
from ..telemetry import WARNING, CallbackSink, Event, get_bus
from .bottleneck import rank_bottlenecks
from .budget import SearchBudget
from .dedup import UnexploredPool, VisitedSet
from .finetune import finetune
from .multihop import MultiHopSearcher
from .trace import SearchTrace


@dataclass
class SearchResult:
    """Outcome of one search run.

    ``num_estimates`` counts the estimates *this run* consumed (the
    delta of the model's counter over the run), so serial searches
    sharing one :class:`PerfModel` and parallel workers with fresh
    models report the same quantity.  ``visited_signatures`` snapshots
    the dedup set for checkpointing.
    """

    best_config: ParallelConfig
    best_objective: float
    best_report: PerfReport
    trace: SearchTrace
    top_configs: List[Tuple[float, ParallelConfig]]
    num_estimates: int
    elapsed_seconds: float
    converged: bool
    visited_signatures: Tuple[str, ...] = ()

    @property
    def is_feasible(self) -> bool:
        return not self.best_report.is_oom


@dataclass
class AcesoSearchOptions:
    """Tunable knobs of the search (paper defaults).

    ``finetune_dirty_only`` scopes the op-level fine-tuning pass to the
    stages the multi-hop result actually changed (plus its current top
    bottleneck) instead of sweeping every stage — a one-stage edit on a
    deep pipeline then re-costs a handful of stages, not all of them.
    """

    max_hops: int = 7
    max_bottlenecks: int = 3
    top_k: int = 5
    enable_finetune: bool = True
    use_heuristic2: bool = True
    seed: int = 0
    finetune_split_points: int = 8
    beam_width: int = 2
    max_nodes_per_iteration: int = 60
    attach_recompute: bool = True
    finetune_dirty_only: bool = True


class AcesoSearch:
    """Algorithm 1: iterative bottleneck alleviation."""

    def __init__(
        self,
        graph: OpGraph,
        cluster: ClusterSpec,
        perf_model: PerfModel,
        *,
        options: Optional[AcesoSearchOptions] = None,
    ) -> None:
        self.graph = graph
        self.cluster = cluster
        self.perf_model = perf_model
        self.options = options or AcesoSearchOptions()

    def run(
        self,
        init_config: ParallelConfig,
        budget: SearchBudget,
    ) -> SearchResult:
        """Search from ``init_config`` until ``budget`` is exhausted.

        Every iteration outcome is emitted as a ``search.iteration``
        telemetry event; the returned :class:`SearchTrace` is rebuilt
        from that event stream (``SearchTrace.from_events``), so run
        logs, checkpoints, and ablation benches all read the same
        numbers.
        """
        opts = self.options
        bus = get_bus()
        events: List[Event] = []

        def emit(name: str, **attrs) -> None:
            event = Event(
                name=name,
                ts=bus.clock(),
                pid=bus.pid,
                source="search",
                attrs=attrs,
            )
            events.append(event)
            if bus.active:
                bus.emit_event(event)

        estimates_start = self.perf_model.num_estimates
        budget.start(estimates_start)
        rng = (
            None
            if opts.use_heuristic2
            else np.random.default_rng(opts.seed)
        )

        visited = VisitedSet()
        unexplored = UnexploredPool()
        searcher = MultiHopSearcher(
            self.graph,
            self.cluster,
            self.perf_model,
            max_hops=opts.max_hops,
            rng=rng,
            should_stop=lambda: budget.exhausted(
                estimates=self.perf_model.num_estimates
            ),
            beam_width=opts.beam_width,
            max_nodes=opts.max_nodes_per_iteration,
            attach_recompute=opts.attach_recompute,
        )

        config = init_config
        best = init_config
        best_objective = self.perf_model.objective(init_config)
        top: List[Tuple[float, ParallelConfig]] = [(best_objective, best)]
        emit(
            "search.begin",
            best_objective=best_objective,
            num_stages=init_config.num_stages,
        )
        iteration = 0
        converged = False

        while not budget.exhausted(
            iterations=iteration, estimates=self.perf_model.num_estimates
        ):
            iteration += 1
            report = self.perf_model.estimate(config)
            bottlenecks = rank_bottlenecks(report)[: opts.max_bottlenecks]
            result = None
            tried = 0
            for bottleneck in bottlenecks:
                tried += 1
                result = searcher.search(
                    config,
                    visited=visited,
                    unexplored=unexplored,
                    bottleneck=bottleneck,
                )
                if result is not None:
                    break
            if result is not None:
                new_config = result.config
                if opts.enable_finetune:
                    scope = None
                    if (
                        opts.finetune_dirty_only
                        and result.dirty_stages is not None
                    ):
                        new_report = self.perf_model.estimate(new_config)
                        hot = rank_bottlenecks(new_report)[0].stage
                        scope = sorted(set(result.dirty_stages) | {hot})
                    new_config = finetune(
                        new_config,
                        self.graph,
                        self.cluster,
                        self.perf_model,
                        max_split_points=opts.finetune_split_points,
                        stages=scope,
                    )
                objective = self.perf_model.objective(new_config)
                config = new_config
                if objective < best_objective:
                    best, best_objective = new_config, objective
                top = _update_top(top, objective, new_config, opts.top_k)
                emit(
                    "search.iteration",
                    index=iteration,
                    elapsed=budget.elapsed(),
                    bottlenecks_tried=tried,
                    hops_used=result.hops_used,
                    improved=True,
                    objective=objective,
                    best_objective=best_objective,
                )
            else:
                restart = unexplored.pop_best()
                emit(
                    "search.iteration",
                    index=iteration,
                    elapsed=budget.elapsed(),
                    bottlenecks_tried=tried,
                    hops_used=0,
                    improved=False,
                    objective=self.perf_model.objective(config),
                    best_objective=best_objective,
                )
                if restart is None:
                    converged = True
                    break
                config = restart

        emit(
            "search.end",
            iterations=iteration,
            converged=converged,
            best_objective=best_objective,
            num_estimates=self.perf_model.num_estimates - estimates_start,
        )
        if bus.active:
            self.perf_model.emit_counters(bus)
        trace = SearchTrace.from_events(events)
        return SearchResult(
            best_config=best,
            best_objective=best_objective,
            best_report=self.perf_model.estimate(best),
            trace=trace,
            top_configs=top,
            num_estimates=self.perf_model.num_estimates - estimates_start,
            elapsed_seconds=budget.elapsed(),
            converged=converged,
            visited_signatures=tuple(sorted(visited.signatures())),
        )


def _update_top(
    top: List[Tuple[float, ParallelConfig]],
    objective: float,
    config: ParallelConfig,
    k: int,
) -> List[Tuple[float, ParallelConfig]]:
    signatures = {c.signature() for _, c in top}
    if config.signature() not in signatures:
        top = top + [(objective, config)]
    top.sort(key=lambda pair: pair[0])
    return top[:k]


@dataclass
class StageCountResult:
    """Per-stage-count outcome of the parallel search driver."""

    num_stages: int
    result: SearchResult


class SearchFailedError(RuntimeError):
    """No stage-count search produced a result."""


@dataclass(frozen=True)
class SearchFailure:
    """Structured record of one stage count that never succeeded."""

    num_stages: int
    error: str
    attempts: int


@dataclass
class MultiStageSearchResult:
    """Aggregate of the per-stage-count searches.

    ``workers`` records how many processes searched concurrently and
    ``wall_seconds`` the measured wall-clock of the whole driver —
    with ``workers > 1`` the §4.3 "parallel cost" is observed rather
    than simulated.  ``failures`` lists stage counts whose workers
    crashed, raised, or timed out past their retry budget; the runs
    that survived are still reported.
    """

    runs: List[StageCountResult] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0
    failures: List[SearchFailure] = field(default_factory=list)

    def _require_runs(self, what: str) -> None:
        if not self.runs:
            failed = [f.num_stages for f in self.failures]
            detail = (
                f"stage counts {failed} all failed "
                f"({'; '.join(f.error for f in self.failures)})"
                if failed
                else "no stage counts were searched"
            )
            raise SearchFailedError(f"cannot report {what}: {detail}")

    @property
    def best(self) -> SearchResult:
        self._require_runs("best")
        return min(
            (run.result for run in self.runs),
            key=lambda r: r.best_objective,
        )

    @property
    def serial_seconds(self) -> float:
        """Total compute cost if searches ran one after another."""
        return sum(run.result.elapsed_seconds for run in self.runs)

    @property
    def parallel_seconds(self) -> float:
        """Wall-clock cost when stage counts search in parallel (§4.3)."""
        self._require_runs("parallel_seconds")
        return max(run.result.elapsed_seconds for run in self.runs)

    @property
    def num_estimates(self) -> int:
        """Total estimates consumed across all per-count runs.

        Each run reports its own delta (see :class:`SearchResult`), so
        the sum is directly comparable between the serial path (shared
        model) and the multiprocess path (fresh model per worker).
        """
        return sum(run.result.num_estimates for run in self.runs)

    def top_configs(self, k: int = 5) -> List[Tuple[float, ParallelConfig]]:
        merged: List[Tuple[float, ParallelConfig]] = []
        seen = set()
        for run in self.runs:
            for objective, config in run.result.top_configs:
                signature = config.signature()
                if signature not in seen:
                    seen.add(signature)
                    merged.append((objective, config))
        merged.sort(key=lambda pair: pair[0])
        return merged[:k]


def default_stage_counts(graph: OpGraph, cluster: ClusterSpec) -> List[int]:
    """Pipeline stage counts worth searching for this problem size."""
    limit = min(cluster.num_gpus, graph.num_ops)
    counts = []
    value = 1
    while value <= limit:
        counts.append(value)
        value *= 2
    return counts


def _stage_count_worker(payload: tuple) -> StageCountResult:
    """Search one stage count in a fresh process.

    Module-level so it pickles; rebuilds a :class:`PerfModel` from the
    (picklable) graph/cluster/database because live models carry cache
    state not worth shipping.  Budgets count estimate *deltas*, so a
    fresh model searches exactly like a shared serial one.
    """
    (graph, cluster, database, count, options, budget_kwargs,
     model_kwargs) = payload
    perf_model = PerfModel(graph, cluster, database, **model_kwargs)
    init = balanced_config(graph, cluster, count)
    search = AcesoSearch(graph, cluster, perf_model, options=options)
    result = search.run(init, SearchBudget(**budget_kwargs))
    return StageCountResult(num_stages=count, result=result)


def _subprocess_entry(worker_fn, payload, conn) -> None:
    """Run one worker and ship its outcome through a pipe.

    The child installs a fresh telemetry bus with a capture sink (the
    forked parent bus — and any file handles its sinks hold — is never
    written), so every event the worker emits travels back alongside
    the result and the parent can merge it into its own run log with
    worker attribution.  Raised exceptions travel back as ``("error",
    message, events)`` so the parent distinguishes a clean failure from
    a crashed process (which sends nothing and is detected by its exit
    code).
    """
    from ..telemetry import RingBufferSink, TelemetryBus, set_bus

    bus = TelemetryBus()
    capture = bus.add_sink(RingBufferSink())
    set_bus(bus)
    try:
        result = worker_fn(payload)
        conn.send(("ok", result, capture.events))
    except BaseException as exc:  # noqa: BLE001 - report, don't mask
        try:
            conn.send(
                ("error", f"{type(exc).__name__}: {exc}", capture.events)
            )
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


@dataclass
class _ActiveWorker:
    process: multiprocessing.Process
    conn: object
    deadline: Optional[float]
    attempt: int


def _run_counts_in_processes(
    counts: Sequence[int],
    payload_for,
    worker_fn,
    *,
    max_workers: int,
    timeout_per_count: Optional[float],
    max_retries: int,
    retry_backoff: float,
    bus=None,
):
    """Self-healing process-per-count scheduler.

    Unlike a ``ProcessPoolExecutor`` — where one dead worker breaks the
    pool and takes every pending future with it — each stage count owns
    a private process and pipe.  A worker that raises, crashes, or
    blows its per-count deadline is retried with exponential backoff up
    to ``max_retries`` extra attempts; the other counts never notice.
    Returns ``(results, failures)`` keyed by stage count.

    Worker lifecycle (spawn / retry / timeout / crash / completion)
    is published on the telemetry ``bus``; completed and finally-failed
    counts carry their payload objects in private ``_result`` /
    ``_failure`` attrs for in-process subscribers (checkpointing), and
    each worker's own captured event stream is re-emitted with
    ``num_stages``/``attempt`` attribution.
    """
    ctx = multiprocessing.get_context()
    bus = bus if bus is not None else get_bus()
    queue = deque((count, 0, 0.0) for count in counts)  # (count, attempt, not_before)
    active: dict = {}
    results: dict = {}
    failures: dict = {}

    def forward(worker_events, count: int, attempt: int) -> None:
        if not bus.active:
            return
        for event in worker_events:
            bus.emit_event(
                event.with_attrs(num_stages=count, attempt=attempt)
            )

    def register_failure(count: int, attempt: int, error: str) -> None:
        if attempt < max_retries:
            delay = retry_backoff * (2 ** attempt)
            queue.append((count, attempt + 1, time.monotonic() + delay))
            bus.emit(
                "driver.worker.retry",
                source="driver",
                level=WARNING,
                num_stages=count,
                attempt=attempt,
                delay=delay,
                error=error,
            )
        else:
            failures[count] = SearchFailure(
                num_stages=count, error=error, attempts=attempt + 1
            )
            bus.emit(
                "driver.count.failed",
                source="driver",
                level=WARNING,
                num_stages=count,
                attempts=attempt + 1,
                error=error,
                _failure=failures[count],
            )

    while queue or active:
        now = time.monotonic()
        # Launch whatever fits, skipping retries still in backoff.
        for _ in range(len(queue)):
            if len(active) >= max_workers:
                break
            count, attempt, not_before = queue[0]
            if not_before > now:
                queue.rotate(-1)
                continue
            queue.popleft()
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_subprocess_entry,
                args=(worker_fn, payload_for(count), child_conn),
                daemon=True,  # a hung worker must not block exit
            )
            process.start()
            child_conn.close()
            bus.emit(
                "driver.worker.spawn",
                source="driver",
                num_stages=count,
                attempt=attempt,
                worker_pid=process.pid,
            )
            active[count] = _ActiveWorker(
                process=process,
                conn=parent_conn,
                deadline=(
                    now + timeout_per_count
                    if timeout_per_count is not None
                    else None
                ),
                attempt=attempt,
            )

        finished = []
        for count, worker in active.items():
            message = None
            if worker.conn.poll(0):
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    message = None
            if message is None and not worker.process.is_alive():
                # The process exited between our poll and now — drain
                # the pipe once more before declaring a crash.
                if worker.conn.poll(0.05):
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        message = None
            if message is not None:
                worker.process.join()
                finished.append(count)
                status, value, worker_events = message
                forward(worker_events, count, worker.attempt)
                if status == "ok":
                    results[count] = value
                    bus.emit(
                        "driver.count.completed",
                        source="driver",
                        num_stages=count,
                        attempt=worker.attempt,
                        _result=value,
                    )
                else:
                    bus.emit(
                        "driver.worker.error",
                        source="driver",
                        level=WARNING,
                        num_stages=count,
                        attempt=worker.attempt,
                        error=value,
                    )
                    register_failure(count, worker.attempt, value)
            elif not worker.process.is_alive():
                worker.process.join()
                finished.append(count)
                bus.emit(
                    "driver.worker.crash",
                    source="driver",
                    level=WARNING,
                    num_stages=count,
                    attempt=worker.attempt,
                    exitcode=worker.process.exitcode,
                )
                register_failure(
                    count,
                    worker.attempt,
                    "worker process died with exit code "
                    f"{worker.process.exitcode}",
                )
            elif (
                worker.deadline is not None
                and time.monotonic() >= worker.deadline
            ):
                worker.process.terminate()
                worker.process.join()
                finished.append(count)
                bus.emit(
                    "driver.worker.timeout",
                    source="driver",
                    level=WARNING,
                    num_stages=count,
                    attempt=worker.attempt,
                    timeout=timeout_per_count,
                )
                register_failure(
                    count,
                    worker.attempt,
                    f"timed out after {timeout_per_count:.1f}s",
                )
        for count in finished:
            worker = active.pop(count)
            worker.conn.close()
        if active and not finished:
            time.sleep(0.005)

    return results, failures


def search_all_stage_counts(
    graph: OpGraph,
    cluster: ClusterSpec,
    perf_model: PerfModel,
    *,
    stage_counts: Optional[Sequence[int]] = None,
    options: Optional[AcesoSearchOptions] = None,
    budget_per_count: Optional[dict] = None,
    workers: int = 1,
    timeout_per_count: Optional[float] = None,
    max_retries: int = 1,
    retry_backoff: float = 0.05,
    checkpoint_path=None,
    resume: bool = False,
    _worker_fn: Optional[Callable] = None,
) -> MultiStageSearchResult:
    """Run one independent search per pipeline stage count.

    ``budget_per_count`` holds :class:`SearchBudget` keyword arguments
    applied to each stage count's search (default: 60 iterations); its
    keys are validated up front so a typo fails before any worker
    forks.  With ``workers > 1`` every stage count searches in its own
    subprocess under ``timeout_per_count`` seconds (``None`` = no
    limit); a worker that raises, crashes, or hangs is retried up to
    ``max_retries`` more times with exponential backoff, after which it
    becomes a :class:`SearchFailure` record while the surviving counts
    still return.  Results merge in stage-count order, so the outcome
    is deterministic and identical to the serial path.

    ``checkpoint_path`` persists completed stage counts to JSON after
    each one finishes; with ``resume=True`` an existing checkpoint's
    completed counts are restored instead of re-searched (failed counts
    are retried).  Serial runs (``workers == 1``) checkpoint too but
    cannot enforce timeouts.
    """
    from .checkpoint import SearchCheckpoint

    if stage_counts is None:
        counts = default_stage_counts(graph, cluster)
    else:
        counts = list(stage_counts)
    if not counts:
        raise ValueError("no stage counts to search")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    if retry_backoff < 0:
        raise ValueError("retry_backoff must be non-negative")
    if timeout_per_count is not None and timeout_per_count <= 0:
        raise ValueError("timeout_per_count must be positive")
    budget_kwargs = SearchBudget.validate_kwargs(
        dict(budget_per_count or {"max_iterations": 60})
    )
    worker_fn = _worker_fn or _stage_count_worker

    context = {
        "num_ops": graph.num_ops,
        "num_gpus": cluster.num_gpus,
    }
    checkpoint = None
    restored: List[StageCountResult] = []
    if checkpoint_path is not None:
        import os

        if resume and os.path.exists(checkpoint_path):
            checkpoint = SearchCheckpoint.load(checkpoint_path)
            checkpoint.ensure_compatible(counts, budget_kwargs, context)
            restored = [
                run
                for run in checkpoint.restore_runs(perf_model)
                if run.num_stages in counts
            ]
        else:
            checkpoint = SearchCheckpoint.new(
                counts, budget_kwargs, context, checkpoint_path
            )
            checkpoint.save()
    done_counts = {run.num_stages for run in restored}
    todo = [count for count in counts if count not in done_counts]

    started = time.perf_counter()
    outcome = MultiStageSearchResult(workers=min(workers, len(counts)))

    # Checkpoint recording subscribes to the driver's lifecycle events
    # instead of threading ad-hoc callbacks through the scheduler: the
    # serial loop and the multiprocess scheduler publish the same
    # ``driver.count.completed`` / ``driver.count.failed`` events, and
    # this sink (whose presence activates the bus) persists them.
    bus = get_bus()
    checkpoint_sink = None
    if checkpoint is not None:
        snapshot = checkpoint

        def record(event: Event) -> None:
            if event.name == "driver.count.completed":
                snapshot.record_run(event.attrs["_result"])
            else:
                snapshot.record_failure(event.attrs["_failure"])

        checkpoint_sink = bus.add_sink(CallbackSink(
            record,
            names=("driver.count.completed", "driver.count.failed"),
        ))

    bus.emit(
        "driver.begin",
        source="driver",
        stage_counts=list(counts),
        workers=min(workers, len(counts)),
        restored=sorted(done_counts),
    )
    for run in restored:
        bus.emit(
            "driver.count.restored",
            source="driver",
            num_stages=run.num_stages,
        )

    results: dict = {run.num_stages: run for run in restored}
    failures: dict = {}
    try:
        if workers <= 1 or len(todo) <= 1:
            for count in todo:
                attempt = 0
                while True:
                    try:
                        init = balanced_config(graph, cluster, count)
                        search = AcesoSearch(
                            graph, cluster, perf_model, options=options
                        )
                        result = search.run(
                            init, SearchBudget(**budget_kwargs)
                        )
                    except Exception as exc:  # noqa: BLE001 - degrade, record
                        error = f"{type(exc).__name__}: {exc}"
                        if attempt < max_retries:
                            delay = retry_backoff * (2 ** attempt)
                            bus.emit(
                                "driver.worker.retry",
                                source="driver",
                                level=WARNING,
                                num_stages=count,
                                attempt=attempt,
                                delay=delay,
                                error=error,
                            )
                            time.sleep(delay)
                            attempt += 1
                            continue
                        failures[count] = SearchFailure(
                            num_stages=count,
                            error=error,
                            attempts=attempt + 1,
                        )
                        bus.emit(
                            "driver.count.failed",
                            source="driver",
                            level=WARNING,
                            num_stages=count,
                            attempts=attempt + 1,
                            error=error,
                            _failure=failures[count],
                        )
                        break
                    run = StageCountResult(num_stages=count, result=result)
                    results[count] = run
                    bus.emit(
                        "driver.count.completed",
                        source="driver",
                        num_stages=count,
                        attempt=attempt,
                        _result=run,
                    )
                    break
        elif todo:
            model_kwargs = {
                "cache_size": perf_model._cache_size,
                "stage_cache_size": perf_model._stage_cache_size,
                "reserve_safety_factor": perf_model.reserve_safety_factor,
            }

            def payload_for(count: int) -> tuple:
                return (graph, cluster, perf_model.database, count, options,
                        budget_kwargs, model_kwargs)

            fresh, failures = _run_counts_in_processes(
                todo,
                payload_for,
                worker_fn,
                max_workers=min(workers, len(todo)),
                timeout_per_count=timeout_per_count,
                max_retries=max_retries,
                retry_backoff=retry_backoff,
                bus=bus,
            )
            results.update(fresh)
    finally:
        if checkpoint_sink is not None:
            bus.remove_sink(checkpoint_sink)

    # Deterministic merge in stage-count order, regardless of the order
    # workers finished (or which half came from a resumed checkpoint).
    outcome.runs.extend(results[count] for count in counts if count in results)
    outcome.failures.extend(
        failures[count] for count in counts if count in failures
    )
    outcome.wall_seconds = time.perf_counter() - started
    bus.emit(
        "driver.end",
        source="driver",
        completed=sorted(results),
        failed=sorted(failures),
        wall_seconds=outcome.wall_seconds,
    )
    return outcome
