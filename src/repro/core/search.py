"""Top-level Aceso search (Algorithm 1) and the stage-count driver.

``AcesoSearch`` iterates: identify the bottleneck, run the multi-hop
primitive search, fall back to secondary bottlenecks, apply op-level
fine-tuning, and restart from the best unexplored configuration when an
iteration stalls — until the budget runs out or nothing is left to
explore.

``search_all_stage_counts`` reproduces §4.3's "parallel search of
configurations under different pipeline stage numbers": independent
searches per stage count whose *parallel* cost is the slowest single
search (reported alongside the serial total).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..parallel.initializer import balanced_config
from ..perfmodel.model import PerfModel
from ..perfmodel.report import PerfReport
from .bottleneck import rank_bottlenecks
from .budget import SearchBudget
from .dedup import UnexploredPool, VisitedSet
from .finetune import finetune
from .multihop import MultiHopSearcher
from .trace import SearchTrace


@dataclass
class SearchResult:
    """Outcome of one search run."""

    best_config: ParallelConfig
    best_objective: float
    best_report: PerfReport
    trace: SearchTrace
    top_configs: List[Tuple[float, ParallelConfig]]
    num_estimates: int
    elapsed_seconds: float
    converged: bool

    @property
    def is_feasible(self) -> bool:
        return not self.best_report.is_oom


@dataclass
class AcesoSearchOptions:
    """Tunable knobs of the search (paper defaults).

    ``finetune_dirty_only`` scopes the op-level fine-tuning pass to the
    stages the multi-hop result actually changed (plus its current top
    bottleneck) instead of sweeping every stage — a one-stage edit on a
    deep pipeline then re-costs a handful of stages, not all of them.
    """

    max_hops: int = 7
    max_bottlenecks: int = 3
    top_k: int = 5
    enable_finetune: bool = True
    use_heuristic2: bool = True
    seed: int = 0
    finetune_split_points: int = 8
    beam_width: int = 2
    max_nodes_per_iteration: int = 60
    attach_recompute: bool = True
    finetune_dirty_only: bool = True


class AcesoSearch:
    """Algorithm 1: iterative bottleneck alleviation."""

    def __init__(
        self,
        graph: OpGraph,
        cluster: ClusterSpec,
        perf_model: PerfModel,
        *,
        options: Optional[AcesoSearchOptions] = None,
    ) -> None:
        self.graph = graph
        self.cluster = cluster
        self.perf_model = perf_model
        self.options = options or AcesoSearchOptions()

    def run(
        self,
        init_config: ParallelConfig,
        budget: SearchBudget,
    ) -> SearchResult:
        """Search from ``init_config`` until ``budget`` is exhausted."""
        opts = self.options
        budget.start(self.perf_model.num_estimates)
        rng = (
            None
            if opts.use_heuristic2
            else np.random.default_rng(opts.seed)
        )

        visited = VisitedSet()
        unexplored = UnexploredPool()
        trace = SearchTrace()
        searcher = MultiHopSearcher(
            self.graph,
            self.cluster,
            self.perf_model,
            max_hops=opts.max_hops,
            rng=rng,
            should_stop=lambda: budget.exhausted(
                estimates=self.perf_model.num_estimates
            ),
            beam_width=opts.beam_width,
            max_nodes=opts.max_nodes_per_iteration,
            attach_recompute=opts.attach_recompute,
        )

        config = init_config
        best = init_config
        best_objective = self.perf_model.objective(init_config)
        top: List[Tuple[float, ParallelConfig]] = [(best_objective, best)]
        trace.convergence.append((0.0, best_objective))
        iteration = 0
        converged = False

        while not budget.exhausted(
            iterations=iteration, estimates=self.perf_model.num_estimates
        ):
            iteration += 1
            report = self.perf_model.estimate(config)
            bottlenecks = rank_bottlenecks(report)[: opts.max_bottlenecks]
            result = None
            tried = 0
            for bottleneck in bottlenecks:
                tried += 1
                result = searcher.search(
                    config,
                    visited=visited,
                    unexplored=unexplored,
                    bottleneck=bottleneck,
                )
                if result is not None:
                    break
            if result is not None:
                new_config = result.config
                if opts.enable_finetune:
                    scope = None
                    if (
                        opts.finetune_dirty_only
                        and result.dirty_stages is not None
                    ):
                        new_report = self.perf_model.estimate(new_config)
                        hot = rank_bottlenecks(new_report)[0].stage
                        scope = sorted(set(result.dirty_stages) | {hot})
                    new_config = finetune(
                        new_config,
                        self.graph,
                        self.cluster,
                        self.perf_model,
                        max_split_points=opts.finetune_split_points,
                        stages=scope,
                    )
                objective = self.perf_model.objective(new_config)
                config = new_config
                if objective < best_objective:
                    best, best_objective = new_config, objective
                top = _update_top(top, objective, new_config, opts.top_k)
                trace.record_iteration(
                    index=iteration,
                    elapsed=budget.elapsed(),
                    bottlenecks_tried=tried,
                    hops_used=result.hops_used,
                    improved=True,
                    objective=objective,
                    best_objective=best_objective,
                )
            else:
                restart = unexplored.pop_best()
                trace.record_iteration(
                    index=iteration,
                    elapsed=budget.elapsed(),
                    bottlenecks_tried=tried,
                    hops_used=0,
                    improved=False,
                    objective=self.perf_model.objective(config),
                    best_objective=best_objective,
                )
                if restart is None:
                    converged = True
                    break
                config = restart

        return SearchResult(
            best_config=best,
            best_objective=best_objective,
            best_report=self.perf_model.estimate(best),
            trace=trace,
            top_configs=top,
            num_estimates=self.perf_model.num_estimates,
            elapsed_seconds=budget.elapsed(),
            converged=converged,
        )


def _update_top(
    top: List[Tuple[float, ParallelConfig]],
    objective: float,
    config: ParallelConfig,
    k: int,
) -> List[Tuple[float, ParallelConfig]]:
    signatures = {c.signature() for _, c in top}
    if config.signature() not in signatures:
        top = top + [(objective, config)]
    top.sort(key=lambda pair: pair[0])
    return top[:k]


@dataclass
class StageCountResult:
    """Per-stage-count outcome of the parallel search driver."""

    num_stages: int
    result: SearchResult


@dataclass
class MultiStageSearchResult:
    """Aggregate of the per-stage-count searches.

    ``workers`` records how many processes searched concurrently and
    ``wall_seconds`` the measured wall-clock of the whole driver —
    with ``workers > 1`` the §4.3 "parallel cost" is observed rather
    than simulated.
    """

    runs: List[StageCountResult] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0

    @property
    def best(self) -> SearchResult:
        return min(
            (run.result for run in self.runs),
            key=lambda r: r.best_objective,
        )

    @property
    def serial_seconds(self) -> float:
        """Total compute cost if searches ran one after another."""
        return sum(run.result.elapsed_seconds for run in self.runs)

    @property
    def parallel_seconds(self) -> float:
        """Wall-clock cost when stage counts search in parallel (§4.3)."""
        return max(run.result.elapsed_seconds for run in self.runs)

    @property
    def num_estimates(self) -> int:
        return max(run.result.num_estimates for run in self.runs)

    def top_configs(self, k: int = 5) -> List[Tuple[float, ParallelConfig]]:
        merged: List[Tuple[float, ParallelConfig]] = []
        seen = set()
        for run in self.runs:
            for objective, config in run.result.top_configs:
                signature = config.signature()
                if signature not in seen:
                    seen.add(signature)
                    merged.append((objective, config))
        merged.sort(key=lambda pair: pair[0])
        return merged[:k]


def default_stage_counts(graph: OpGraph, cluster: ClusterSpec) -> List[int]:
    """Pipeline stage counts worth searching for this problem size."""
    limit = min(cluster.num_gpus, graph.num_ops)
    counts = []
    value = 1
    while value <= limit:
        counts.append(value)
        value *= 2
    return counts


def _stage_count_worker(payload: tuple) -> StageCountResult:
    """Search one stage count in a fresh process.

    Module-level so it pickles; rebuilds a :class:`PerfModel` from the
    (picklable) graph/cluster/database because live models carry cache
    state not worth shipping.  Budgets count estimate *deltas*, so a
    fresh model searches exactly like a shared serial one.
    """
    (graph, cluster, database, count, options, budget_kwargs,
     model_kwargs) = payload
    perf_model = PerfModel(graph, cluster, database, **model_kwargs)
    init = balanced_config(graph, cluster, count)
    search = AcesoSearch(graph, cluster, perf_model, options=options)
    result = search.run(init, SearchBudget(**budget_kwargs))
    return StageCountResult(num_stages=count, result=result)


def search_all_stage_counts(
    graph: OpGraph,
    cluster: ClusterSpec,
    perf_model: PerfModel,
    *,
    stage_counts: Optional[Sequence[int]] = None,
    options: Optional[AcesoSearchOptions] = None,
    budget_per_count: Optional[dict] = None,
    workers: int = 1,
) -> MultiStageSearchResult:
    """Run one independent search per pipeline stage count.

    ``budget_per_count`` holds :class:`SearchBudget` keyword arguments
    applied to each stage count's search (default: 60 iterations).
    With ``workers > 1`` the per-count searches fan out over a
    ``ProcessPoolExecutor``; results merge in stage-count order, so
    the outcome is deterministic and identical to the serial path.
    """
    if stage_counts is None:
        counts = default_stage_counts(graph, cluster)
    else:
        counts = list(stage_counts)
    if not counts:
        raise ValueError("no stage counts to search")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    budget_kwargs = budget_per_count or {"max_iterations": 60}
    started = time.perf_counter()
    outcome = MultiStageSearchResult(workers=min(workers, len(counts)))
    if workers <= 1 or len(counts) == 1:
        for count in counts:
            init = balanced_config(graph, cluster, count)
            search = AcesoSearch(
                graph, cluster, perf_model, options=options
            )
            result = search.run(init, SearchBudget(**budget_kwargs))
            outcome.runs.append(
                StageCountResult(num_stages=count, result=result)
            )
    else:
        model_kwargs = {
            "cache_size": perf_model._cache_size,
            "stage_cache_size": perf_model._stage_cache_size,
            "reserve_safety_factor": perf_model.reserve_safety_factor,
        }
        payloads = [
            (graph, cluster, perf_model.database, count, options,
             budget_kwargs, model_kwargs)
            for count in counts
        ]
        with ProcessPoolExecutor(
            max_workers=min(workers, len(counts))
        ) as pool:
            # Executor.map preserves input order: deterministic merge.
            outcome.runs.extend(pool.map(_stage_count_worker, payloads))
    outcome.wall_seconds = time.perf_counter() - started
    return outcome
