"""Aceso's core contribution: iterative bottleneck-alleviation search."""

from .apply import (
    ApplyContext,
    apply_primitive,
    has_applier,
    move_ops,
    register_applier,
    unregister_applier,
)
from .arguments import (
    greedy_recompute,
    greedy_unrecompute,
    op_move_counts,
    stage_activation_bytes,
    tune_recompute,
)
from .bottleneck import Bottleneck, identify_bottleneck, rank_bottlenecks
from .budget import Deadline, SearchBudget
from .dedup import UnexploredPool, VisitedSet
from .finetune import finetune
from .multihop import MultiHopResult, MultiHopSearcher
from .primitives import (
    PRIMITIVE_TABLE,
    PRIMITIVES_BY_NAME,
    Granularity,
    PrimitiveSpec,
    Trend,
    all_primitives,
    eligible_primitives,
    get_primitive,
    register_primitive,
    unregister_primitive,
)
from .ranking import CandidateGroup, candidate_groups
from .checkpoint import CheckpointError, SearchCheckpoint
from .search import (
    AcesoSearch,
    AcesoSearchOptions,
    MultiStageSearchResult,
    SearchFailedError,
    SearchFailure,
    SearchResult,
    StageCountResult,
    default_stage_counts,
    retry_delay,
    search_all_stage_counts,
)
from .trace import IterationRecord, SearchTrace

__all__ = [
    "AcesoSearch",
    "AcesoSearchOptions",
    "ApplyContext",
    "Bottleneck",
    "CandidateGroup",
    "CheckpointError",
    "Deadline",
    "Granularity",
    "IterationRecord",
    "MultiHopResult",
    "MultiHopSearcher",
    "MultiStageSearchResult",
    "PRIMITIVES_BY_NAME",
    "PRIMITIVE_TABLE",
    "PrimitiveSpec",
    "SearchBudget",
    "SearchCheckpoint",
    "SearchFailedError",
    "SearchFailure",
    "SearchResult",
    "SearchTrace",
    "StageCountResult",
    "Trend",
    "UnexploredPool",
    "VisitedSet",
    "all_primitives",
    "apply_primitive",
    "has_applier",
    "register_applier",
    "register_primitive",
    "unregister_applier",
    "unregister_primitive",
    "candidate_groups",
    "default_stage_counts",
    "eligible_primitives",
    "finetune",
    "get_primitive",
    "greedy_recompute",
    "greedy_unrecompute",
    "identify_bottleneck",
    "move_ops",
    "op_move_counts",
    "rank_bottlenecks",
    "retry_delay",
    "search_all_stage_counts",
    "stage_activation_bytes",
    "tune_recompute",
]
