"""Crash-safe checkpointing of the stage-count search driver.

The paper's pitch — search cheap enough to re-run whenever the cluster
changes — only holds if an interrupted search doesn't lose its work.
A :class:`SearchCheckpoint` persists, as JSON, everything needed to
resume ``search_all_stage_counts`` bit-exactly: per-stage-count best and
top-k configurations (via :mod:`repro.parallel.serialization`), visited
signatures, estimate counts, and structured failure records.  The file
is rewritten atomically after every completed (or finally-failed) stage
count, so a crash between writes costs at most one stage count of work.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..ioutil import write_json_atomic
from ..parallel.serialization import config_from_dict, config_to_dict

#: Format marker so future layout changes stay loadable.
CHECKPOINT_FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file is unreadable or belongs to another search."""


def _result_to_dict(result) -> dict:
    """Serialize a :class:`repro.core.search.SearchResult`."""
    return {
        "best_config": config_to_dict(result.best_config),
        "best_objective": result.best_objective,
        "top_configs": [
            {"objective": objective, "config": config_to_dict(config)}
            for objective, config in result.top_configs
        ],
        "num_estimates": result.num_estimates,
        "elapsed_seconds": result.elapsed_seconds,
        "converged": result.converged,
        "visited_signatures": sorted(result.visited_signatures),
    }


def _result_from_dict(data: dict, perf_model):
    """Rebuild a ``SearchResult``; the report is re-derived from the
    (deterministic) performance model, everything else is stored."""
    from .search import SearchResult
    from .trace import SearchTrace

    best_config = config_from_dict(data["best_config"])
    return SearchResult(
        best_config=best_config,
        best_objective=float(data["best_objective"]),
        best_report=perf_model.estimate(best_config),
        trace=SearchTrace(),
        top_configs=[
            (float(entry["objective"]), config_from_dict(entry["config"]))
            for entry in data["top_configs"]
        ],
        num_estimates=int(data["num_estimates"]),
        elapsed_seconds=float(data["elapsed_seconds"]),
        converged=bool(data["converged"]),
        visited_signatures=tuple(data.get("visited_signatures", ())),
    )


@dataclass
class SearchCheckpoint:
    """Mutable on-disk state of one ``search_all_stage_counts`` run."""

    stage_counts: List[int]
    budget_kwargs: dict
    context: dict = field(default_factory=dict)
    completed: Dict[int, dict] = field(default_factory=dict)
    failures: List[dict] = field(default_factory=list)
    path: Optional[Path] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def new(
        cls,
        stage_counts,
        budget_kwargs: dict,
        context: dict,
        path: Union[str, Path],
    ) -> "SearchCheckpoint":
        return cls(
            stage_counts=list(stage_counts),
            budget_kwargs=dict(budget_kwargs),
            context=dict(context),
            path=Path(path),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SearchCheckpoint":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"cannot read search checkpoint {path}: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise CheckpointError(
                f"search checkpoint {path} is not a JSON object"
            )
        version = data.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format version: {version!r} "
                f"(expected {CHECKPOINT_FORMAT_VERSION})"
            )
        try:
            return cls(
                stage_counts=[int(c) for c in data["stage_counts"]],
                budget_kwargs=data["budget_kwargs"],
                context=data.get("context", {}),
                completed={
                    int(count): payload
                    for count, payload in data.get("completed", {}).items()
                },
                failures=list(data.get("failures", [])),
                path=Path(path),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CheckpointError(
                f"search checkpoint {path} is malformed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    @classmethod
    def load_or_quarantine(
        cls, path: Union[str, Path]
    ) -> Optional["SearchCheckpoint"]:
        """Load a checkpoint, quarantining an unreadable file.

        Atomic rename protects a checkpoint against crashes mid-write,
        but not against disk-full, a kill mid-write of an *older*
        non-atomic copy, or plain bit rot.  A resume must not die on
        such a file: the corrupt checkpoint is moved aside to
        ``<path>.corrupt`` (preserved for post-mortems), a
        ``checkpoint.corrupt`` telemetry event is emitted, and ``None``
        is returned so the caller starts a fresh search.  A missing
        file also returns ``None`` (nothing to quarantine).
        """
        from ..telemetry import WARNING, get_bus
        from ..telemetry.events import CHECKPOINT_CORRUPT

        path = Path(path)
        if not path.exists():
            return None
        try:
            return cls.load(path)
        except CheckpointError as exc:
            quarantine = path.with_name(path.name + ".corrupt")
            quarantined = True
            try:
                os.replace(path, quarantine)
            except OSError:
                quarantined = False
            get_bus().emit(
                CHECKPOINT_CORRUPT,
                source="checkpoint",
                level=WARNING,
                path=str(path),
                quarantined_to=str(quarantine) if quarantined else None,
                error=str(exc),
            )
            return None

    def save(self) -> None:
        """Atomic write (temp file + rename) so a crash mid-write never
        corrupts the previous checkpoint."""
        if self.path is None:
            raise CheckpointError("checkpoint has no path to save to")
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "stage_counts": self.stage_counts,
            "budget_kwargs": self.budget_kwargs,
            "context": self.context,
            "completed": {
                str(count): data for count, data in self.completed.items()
            },
            "failures": self.failures,
        }
        write_json_atomic(self.path, payload)

    # ------------------------------------------------------------------
    # compatibility
    # ------------------------------------------------------------------
    def ensure_compatible(
        self, stage_counts, budget_kwargs: dict, context: dict
    ) -> None:
        """Refuse to resume into a different search problem."""
        if self.budget_kwargs != dict(budget_kwargs):
            raise CheckpointError(
                f"checkpoint budget {self.budget_kwargs} does not match "
                f"requested budget {dict(budget_kwargs)}"
            )
        for key, value in context.items():
            stored = self.context.get(key)
            if stored != value:
                raise CheckpointError(
                    f"checkpoint {key}={stored!r} does not match the "
                    f"current search ({value!r})"
                )
        unknown = sorted(set(self.completed) - set(stage_counts))
        if unknown:
            raise CheckpointError(
                f"checkpoint contains stage counts {unknown} absent from "
                f"the requested {sorted(stage_counts)}"
            )

    # ------------------------------------------------------------------
    # recording / restoring
    # ------------------------------------------------------------------
    def record_run(self, run) -> None:
        """Store one completed ``StageCountResult`` and persist."""
        self.completed[run.num_stages] = _result_to_dict(run.result)
        # A later success supersedes any earlier failure record.
        self.failures = [
            f for f in self.failures if f.get("num_stages") != run.num_stages
        ]
        self.save()

    def record_failure(self, failure) -> None:
        """Store one final ``SearchFailure`` and persist."""
        self.failures = [
            f
            for f in self.failures
            if f.get("num_stages") != failure.num_stages
        ]
        self.failures.append(
            {
                "num_stages": failure.num_stages,
                "error": failure.error,
                "attempts": failure.attempts,
            }
        )
        self.save()

    def restore_runs(self, perf_model) -> list:
        """Rebuild the completed ``StageCountResult`` list, count order."""
        from .search import StageCountResult

        return [
            StageCountResult(
                num_stages=count,
                result=_result_from_dict(self.completed[count], perf_model),
            )
            for count in sorted(self.completed)
        ]
