"""Command-line entry points.

``repro-search`` runs the Aceso search on one model/cluster setting;
``repro-compare`` runs all three systems and prints a comparison table;
``repro-replan`` simulates a device failure and measures warm vs. cold
time-to-new-plan; ``repro-trace`` inspects the telemetry run logs the
other tools write with ``--run-log``.  All accept ``--json`` for
machine-readable output, and every run wires a fresh
:class:`~repro.telemetry.TelemetryBus` from the shared ``--quiet`` /
``--log-level`` / ``--run-log`` flags, so warnings and progress reach
the console through the same event stream that lands in the run log.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

from .analysis.compare import compare_systems
from .analysis.metrics import tflops_per_gpu
from .cluster.topology import paper_cluster
from .core.search import SearchFailedError, search_all_stage_counts
from .core.searcher import StrategyError, available_strategies
from .ir.models.registry import available_models, build_model
from .perfmodel.model import build_perf_model
from .runtime.executor import Executor
from .telemetry import (
    LEVELS_BY_NAME,
    ConsoleSink,
    JsonlSink,
    TelemetryBus,
    chrome_trace_from_events,
    chrome_trace_from_tasks,
    render_summary,
    summarize_events,
    using_bus,
    validate_run_log,
    write_chrome_trace,
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model",
        required=True,
        help=f"model name, e.g. {available_models()[:3]} or gpt-<N>l",
    )
    parser.add_argument(
        "--gpus", type=int, default=8, help="cluster size (default 8)"
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=30,
        help="search iterations per pipeline stage count (default 30)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    _add_telemetry_flags(parser)


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress telemetry console output (warnings included)",
    )
    parser.add_argument(
        "--log-level",
        choices=tuple(LEVELS_BY_NAME),
        default="warning",
        help="minimum event level echoed to stderr (default warning)",
    )
    parser.add_argument(
        "--run-log",
        default=None,
        metavar="EVENTS.jsonl",
        help="append the full telemetry event stream to this JSONL "
        "file (inspect with repro-trace)",
    )


@contextmanager
def _telemetry(args) -> Iterator[TelemetryBus]:
    """Fresh per-invocation bus wired from the common CLI flags.

    Installed as the process-global bus for the duration, so every
    subsystem the command touches emits onto it; closed (flushing the
    run log) on the way out.
    """
    bus = TelemetryBus()
    if not args.quiet:
        bus.add_sink(
            ConsoleSink(min_level=LEVELS_BY_NAME[args.log_level])
        )
    if args.run_log:
        bus.add_sink(JsonlSink(args.run_log))
    try:
        with using_bus(bus):
            yield bus
    finally:
        bus.close()


def _emit_output(args, payload: dict, lines: Sequence[str]) -> None:
    """The one output path shared by every entry point.

    ``--json`` prints the machine-readable payload; otherwise the
    pre-rendered text lines.
    """
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for line in lines:
            print(line)


def _parse_strategy_args(pairs: Optional[Sequence[str]]) -> dict:
    """Parse repeated ``--strategy-arg KEY=VALUE`` flags.

    Values are JSON where they parse as JSON (numbers, booleans,
    ``null``) and plain strings otherwise, so
    ``--strategy-arg cooling=0.9 --strategy-arg attach_recompute=false``
    both land with the types the options dataclasses expect.
    """
    kwargs = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(
                f"--strategy-arg expects KEY=VALUE, got {pair!r}"
            )
        try:
            kwargs[key] = json.loads(raw)
        except json.JSONDecodeError:
            kwargs[key] = raw
    return kwargs


def _add_strategy_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strategy",
        choices=available_strategies(),
        default="greedy",
        help="search strategy (default greedy — the paper's iterative "
        "bottleneck alleviation)",
    )
    parser.add_argument(
        "--strategy-arg",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="strategy option override, repeatable (e.g. "
        "--strategy-arg initial_temperature=0.5); unknown keys fail "
        "with an ACE213 diagnostic",
    )


def _format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    widths: Sequence[int],
) -> List[str]:
    """Fixed-width table: first column left-aligned, rest right."""

    def render(cells: Sequence[str]) -> str:
        parts = [f"{cells[0]:<{widths[0]}}"]
        parts.extend(
            f"{cell:>{width}}"
            for cell, width in zip(cells[1:], widths[1:])
        )
        return " ".join(parts)

    header = render(headers)
    lines = [header, "-" * len(header)]
    lines.extend(render([str(c) for c in row]) for row in rows)
    return lines


def search_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-search``."""
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description="Aceso configuration search (iterative bottleneck "
        "alleviation)",
    )
    _add_common(parser)
    _add_strategy_flags(parser)
    parser.add_argument(
        "--stage-counts",
        type=int,
        nargs="*",
        default=None,
        help="pipeline stage counts to search (default: powers of two)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PLAN.json",
        help="save the winning plan as a JSON deployment artifact",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes searching stage counts concurrently (default 1)",
    )
    parser.add_argument(
        "--timeout-per-count",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any stage-count worker that exceeds this "
        "wall-clock limit (multiprocess mode only)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help="extra attempts for a crashed/hung stage count (default 1)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="persist completed stage counts to this JSON file after "
        "each one finishes",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore completed stage counts from --checkpoint instead "
        "of re-searching them",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="anytime wall-clock cutoff: stop searching at this point "
        "and report the best plan found so far (marked partial)",
    )
    parser.add_argument(
        "--worker-memory-mb",
        type=float,
        default=None,
        metavar="MB",
        help="cap each stage-count worker's address space; a runaway "
        "search fails as an OOM instead of taking the host down",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")
    if args.worker_memory_mb is not None and args.worker_memory_mb <= 0:
        parser.error("--worker-memory-mb must be positive")
    try:
        strategy_kwargs = _parse_strategy_args(args.strategy_arg)
    except ValueError as exc:
        parser.error(str(exc))
    # The run seed also seeds the strategy unless pinned explicitly,
    # mirroring the planner daemon's convention.
    strategy_kwargs.setdefault("seed", args.seed)

    from .core.budget import Deadline
    from .core.checkpoint import CheckpointError

    deadline = (
        Deadline(args.deadline) if args.deadline is not None else None
    )

    graph = build_model(args.model)
    cluster = paper_cluster(args.gpus)
    perf_model = build_perf_model(graph, cluster, seed=args.seed)
    with _telemetry(args):
        try:
            multi = search_all_stage_counts(
                graph,
                cluster,
                perf_model,
                stage_counts=args.stage_counts,
                strategy=args.strategy,
                strategy_kwargs=strategy_kwargs,
                budget_per_count={"max_iterations": args.iterations},
                workers=args.workers,
                timeout_per_count=args.timeout_per_count,
                max_retries=args.max_retries,
                checkpoint_path=args.checkpoint,
                resume=args.resume,
                deadline=deadline,
                worker_memory_mb=args.worker_memory_mb,
            )
        except StrategyError as exc:
            for diagnostic in exc.diagnostics:
                print(
                    f"repro-search: {diagnostic.render()}",
                    file=sys.stderr,
                )
            return 2
        except CheckpointError as exc:
            print(f"repro-search: {exc}", file=sys.stderr)
            return 1
        try:
            best = multi.best
        except SearchFailedError as exc:
            print(f"repro-search: {exc}", file=sys.stderr)
            return 1
        executor = Executor(graph, cluster, seed=args.seed)
        run = executor.run(best.best_config)
    throughput = run.throughput(graph.global_batch_size)
    payload = {
        "model": args.model,
        "gpus": args.gpus,
        "strategy": args.strategy,
        "predicted_iteration_time": best.best_objective,
        "actual_iteration_time": run.iteration_time,
        "throughput_samples_per_s": throughput,
        "tflops_per_gpu": tflops_per_gpu(graph, throughput, args.gpus),
        "search_seconds_parallel": multi.parallel_seconds,
        "search_seconds_wall": multi.wall_seconds,
        "search_workers": multi.workers,
        "pool_forks": multi.pool_forks,
        "pool_tasks": multi.pool_tasks,
        "estimates": multi.num_estimates,
        "partial": multi.partial,
        "failures": [
            {
                "num_stages": f.num_stages,
                "error": f.error,
                "attempts": f.attempts,
                "kind": f.kind,
            }
            for f in multi.failures
        ],
        "config": best.best_config.describe(),
    }
    if args.output:
        from .parallel.serialization import save_config

        save_config(best.best_config, args.output)
        payload["plan_file"] = args.output
    lines = [
        f"model: {payload['model']}  cluster: {cluster.describe()}  "
        f"strategy: {args.strategy}",
        f"predicted {payload['predicted_iteration_time']:.3f}s / "
        f"measured {payload['actual_iteration_time']:.3f}s per iteration",
        f"throughput {throughput:.2f} samples/s "
        f"({payload['tflops_per_gpu']:.1f} TFLOPS/GPU)",
        f"search cost {multi.parallel_seconds:.1f}s "
        f"({multi.num_estimates} configurations estimated)",
        payload["config"],
    ]
    if multi.pool_forks:
        lines.insert(
            4,
            f"worker pool: {multi.pool_tasks} task(s) across "
            f"{multi.pool_forks} forked process(es)",
        )
    if multi.partial:
        lines.insert(
            1,
            "PARTIAL: the deadline expired before the search finished; "
            "this is the best plan found so far",
        )
    _emit_output(args, payload, lines)
    return 0


def compare_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-compare``."""
    parser = argparse.ArgumentParser(
        prog="repro-compare",
        description="Compare Megatron-LM / Alpa / Aceso on one setting",
    )
    _add_common(parser)
    args = parser.parse_args(argv)

    with _telemetry(args):
        result = compare_systems(
            args.model,
            args.gpus,
            aceso_iterations=args.iterations,
            seed=args.seed,
        )
    payload = {
        name: {
            "throughput": o.throughput,
            "tflops_per_gpu": o.tflops,
            "search_seconds": o.search_seconds,
            "oom": o.oom,
            "failed": o.failed,
        }
        for name, o in result.outcomes.items()
    }
    rows = []
    for name, outcome in result.outcomes.items():
        if outcome.failed:
            rows.append([name, "FAILED", "-", "-"])
        else:
            rows.append([
                name,
                f"{outcome.throughput:.2f}",
                f"{outcome.tflops:.1f}",
                f"{outcome.search_seconds:.1f}s",
            ])
    lines = [f"{args.model} on {args.gpus} GPUs"]
    lines.extend(_format_table(
        ["system", "samples/s", "TFLOPS", "search"],
        rows,
        [10, 10, 8, 10],
    ))
    _emit_output(args, payload, lines)
    return 0


def estimate_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-estimate``: predict + measure a saved plan."""
    parser = argparse.ArgumentParser(
        prog="repro-estimate",
        description="Evaluate a saved plan (from repro-search --output) "
        "with the performance model and the ground-truth executor",
    )
    _add_common(parser)
    parser.add_argument(
        "plan", help="path to a plan JSON written by repro-search --output"
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="FAULTS.json",
        help="inject deployment faults from a FaultPlan JSON file "
        "(see repro.faults.FaultPlan.save)",
    )
    parser.add_argument(
        "--chrome-trace",
        default=None,
        metavar="TRACE.json",
        help="export the measured 1F1B task timeline as a Chrome "
        "trace (open in chrome://tracing or Perfetto)",
    )
    args = parser.parse_args(argv)

    from .parallel.serialization import load_config
    from .parallel.validation import validate_config

    graph = build_model(args.model)
    cluster = paper_cluster(args.gpus)
    config = load_config(args.plan)
    validate_config(config, graph, cluster)
    fault_plan = None
    if args.fault_plan:
        from .faults import FaultPlan

        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(
                f"repro-estimate: cannot load fault plan "
                f"{args.fault_plan}: {exc}",
                file=sys.stderr,
            )
            return 1
    with _telemetry(args):
        perf_model = build_perf_model(graph, cluster, seed=args.seed)
        report = perf_model.estimate(config)
        run = Executor(graph, cluster, seed=args.seed).run(
            config,
            fault_plan=fault_plan,
            record_trace=True if args.chrome_trace else None,
        )
    payload = {
        "model": args.model,
        "gpus": args.gpus,
        "plan": args.plan,
        "predicted_iteration_time": report.iteration_time,
        "actual_iteration_time": run.iteration_time,
        "predicted_peak_memory_gb": [
            m / 2**30 for m in report.peak_memories
        ],
        "actual_peak_memory_gb": [
            m / 2**30 for m in run.stage_peak_memory
        ],
        "predicted_oom": report.is_oom,
        "actual_oom": run.oom,
        "throughput_samples_per_s": run.throughput(
            graph.global_batch_size
        ),
    }
    if fault_plan is not None:
        payload.update(
            {
                "fault_plan": args.fault_plan,
                "completed": run.completed,
                "degraded": run.degraded,
                "failure_time": run.failure_time,
                "failed_device": run.failed_device,
                "tasks_completed": run.tasks_completed,
                "tasks_total": run.tasks_total,
            }
        )
    if args.chrome_trace:
        write_chrome_trace(
            chrome_trace_from_tasks(run.tasks), args.chrome_trace
        )
        payload["chrome_trace"] = args.chrome_trace
    status = "OOM" if run.oom else "fits"
    lines = [
        config.describe(),
        f"predicted {report.iteration_time:.3f}s / measured "
        f"{run.iteration_time:.3f}s per iteration",
        "memory per stage (predicted/actual GB): "
        + ", ".join(
            f"{p:.1f}/{a:.1f}"
            for p, a in zip(
                payload["predicted_peak_memory_gb"],
                payload["actual_peak_memory_gb"],
            )
        ),
        f"deployment: {status}, "
        f"{payload['throughput_samples_per_s']:.2f} samples/s",
    ]
    if fault_plan is not None:
        if not run.completed:
            lines.append(
                f"FAULT: device {run.failed_device} failed at "
                f"t={run.failure_time:.3f}s — "
                f"{run.tasks_completed}/{run.tasks_total} tasks done"
            )
        elif run.degraded:
            lines.append(
                "FAULT: iteration completed under degraded "
                "conditions (stragglers/links/allocator stalls)"
            )
    if args.chrome_trace:
        lines.append(
            f"task timeline written to {args.chrome_trace} "
            f"({len(run.tasks)} tasks)"
        )
    _emit_output(args, payload, lines)
    return 0 if not run.oom and run.completed else 1


def _run_controller(graph, cluster, timeline, seed, iterations):
    """Drive the elastic controller through ``timeline`` (shared by
    ``repro-elastic run`` and ``repro-replan --churn-timeline``)."""
    from .elastic import ControllerPolicy, ElasticController

    controller = ElasticController(
        graph,
        cluster,
        seed=seed,
        policy=ControllerPolicy(replan_iterations=iterations),
    )
    return controller.run(timeline)


def _controller_lines(args, run) -> List[str]:
    """Human rendering of one controller run's decision record."""
    rows = []
    for d in run.decisions:
        events = ",".join(e["kind"] for e in d.events)
        rows.append([
            f"{d.time:.1f}s",
            events[:28],
            d.action,
            d.reason,
            str(d.cluster_gpus),
            f"{d.estimated_loss:.1%}",
            f"{d.throughput:.0f}",
            "yes" if d.feasible else "NO",
        ])
    lines = [
        f"{args.model}: {len(run.decisions)} decisions, "
        f"{run.num_replans} replans, seed {run.seed}",
    ]
    lines.extend(_format_table(
        ["t", "events", "action", "reason", "gpus", "loss",
         "samples/s", "feasible"],
        rows,
        [7, 28, 9, 16, 5, 7, 10, 9],
    ))
    lines.append(
        f"final plan {run.final_config.signature()[:12]} "
        f"({'feasible' if run.final_feasible else 'infeasible'})"
    )
    return lines


def elastic_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-elastic``: churn + continuous rebalancing.

    ``gen`` samples a seeded churn timeline to a ``*.churn.json`` file;
    ``run`` drives the elastic controller through a timeline (a saved
    one, or one sampled from ``--seed``) and reports every decision.
    """
    parser = argparse.ArgumentParser(
        prog="repro-elastic",
        description="Seeded cluster churn and the elastic "
        "rebalancing controller",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser(
        "gen", help="sample a seeded churn timeline to a file"
    )
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--nodes", type=int, default=4)
    p_gen.add_argument("--gpus-per-node", type=int, default=2)
    p_gen.add_argument("--events", type=int, default=8)
    p_gen.add_argument("--horizon", type=float, default=60.0)
    p_gen.add_argument(
        "--output",
        default=None,
        metavar="FILE.churn.json",
        help="write the timeline here (default stdout)",
    )

    p_run = sub.add_parser(
        "run", help="drive the controller through a churn timeline"
    )
    p_run.add_argument(
        "--model", default="gpt-4l",
        help="model name (default gpt-4l)",
    )
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--nodes", type=int, default=4)
    p_run.add_argument("--gpus-per-node", type=int, default=2)
    p_run.add_argument(
        "--mixed",
        action="store_true",
        help="heterogeneous cluster: upgrade the upper half of the "
        "nodes to A100s",
    )
    p_run.add_argument("--events", type=int, default=8)
    p_run.add_argument("--horizon", type=float, default=60.0)
    p_run.add_argument(
        "--timeline",
        default=None,
        metavar="FILE.churn.json",
        help="replay this saved timeline instead of sampling one",
    )
    p_run.add_argument(
        "--iterations",
        type=int,
        default=6,
        help="search iterations per replan (default 6)",
    )
    p_run.add_argument(
        "--output",
        default=None,
        metavar="RUN.json",
        help="also write the full decision record here",
    )
    p_run.add_argument(
        "--json", action="store_true",
        help="emit JSON instead of text",
    )
    _add_telemetry_flags(p_run)
    args = parser.parse_args(argv)

    if args.nodes < 1 or args.gpus_per_node < 1:
        parser.error("cluster dimensions must be positive")
    if args.events < 0:
        parser.error("--events must be non-negative")
    if args.horizon <= 0:
        parser.error("--horizon must be positive")

    from .elastic import ChurnTimeline, random_churn_timeline

    if args.command == "gen":
        timeline = random_churn_timeline(
            args.nodes,
            args.gpus_per_node,
            seed=args.seed,
            num_events=args.events,
            horizon_seconds=args.horizon,
        )
        if args.output:
            timeline.save(args.output)
            print(
                f"repro-elastic: wrote {len(timeline.events)} events "
                f"to {args.output}"
            )
        else:
            print(json.dumps(timeline.to_dict(), indent=2))
        return 0

    if args.timeline:
        try:
            timeline = ChurnTimeline.load(args.timeline)
        except (OSError, ValueError, KeyError) as exc:
            print(
                f"repro-elastic: cannot load {args.timeline}: {exc}",
                file=sys.stderr,
            )
            return 2
    else:
        timeline = random_churn_timeline(
            args.nodes,
            args.gpus_per_node,
            seed=args.seed,
            num_events=args.events,
            horizon_seconds=args.horizon,
        )
    if args.mixed:
        from .cluster import a100, mixed_cluster, v100

        half = args.nodes // 2
        cluster = mixed_cluster(
            [v100()] * (args.nodes - half) + [a100()] * half,
            gpus_per_node=args.gpus_per_node,
        )
    else:
        from .cluster import ClusterSpec

        cluster = ClusterSpec(
            num_nodes=args.nodes, gpus_per_node=args.gpus_per_node
        )
    graph = build_model(args.model)
    with _telemetry(args):
        run = _run_controller(
            graph, cluster, timeline, args.seed, args.iterations
        )
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(run.to_dict(), indent=2)
        )
    _emit_output(args, run.to_dict(), _controller_lines(args, run))
    return 0


def replan_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-replan``: device loss → time-to-new-plan."""
    parser = argparse.ArgumentParser(
        prog="repro-replan",
        description="Simulate a device failure mid-training, shrink the "
        "cluster, and compare warm-start vs. cold-restart re-planning",
    )
    _add_common(parser)
    parser.add_argument(
        "--fail-device",
        type=int,
        default=0,
        help="device lost mid-training (default 0)",
    )
    parser.add_argument(
        "--fail-time",
        type=float,
        default=1.0,
        help="failure time in seconds into the iteration (default 1.0)",
    )
    parser.add_argument(
        "--top-k",
        type=int,
        default=5,
        help="surviving configurations to warm-start from (default 5)",
    )
    parser.add_argument(
        "--churn-timeline",
        default=None,
        metavar="FILE.churn.json",
        help="replay a saved churn timeline through the elastic "
        "controller instead of the single-failure comparison",
    )
    args = parser.parse_args(argv)

    from .faults import (
        DeviceFailure,
        FaultPlan,
        elastic_replan,
        shrink_cluster,
    )

    if args.churn_timeline:
        from .elastic import ChurnTimeline

        try:
            timeline = ChurnTimeline.load(args.churn_timeline)
        except (OSError, ValueError, KeyError) as exc:
            print(
                f"repro-replan: cannot load churn timeline "
                f"{args.churn_timeline}: {exc}",
                file=sys.stderr,
            )
            return 2
        cluster = paper_cluster(args.gpus)
        graph = build_model(args.model)
        with _telemetry(args):
            run = _run_controller(
                graph, cluster, timeline, args.seed, args.iterations
            )
        _emit_output(args, run.to_dict(), _controller_lines(args, run))
        return 0

    if not 0 <= args.fail_device < args.gpus:
        parser.error(
            f"--fail-device {args.fail_device} is outside the "
            f"{args.gpus}-GPU cluster"
        )
    graph = build_model(args.model)
    cluster = paper_cluster(args.gpus)
    perf_model = build_perf_model(graph, cluster, seed=args.seed)
    budget = {"max_iterations": args.iterations}
    with _telemetry(args):
        initial = search_all_stage_counts(
            graph, cluster, perf_model, budget_per_count=budget
        )
        best = initial.best

        plan = FaultPlan(
            seed=args.seed,
            device_failures=(
                DeviceFailure(
                    device_id=args.fail_device, time=args.fail_time
                ),
            ),
        )
        run = Executor(graph, cluster, seed=args.seed).run(
            best.best_config, fault_plan=plan
        )
        survivors = initial.top_configs(args.top_k)
        shrunk = shrink_cluster(cluster, plan.failed_devices())
        comparison = elastic_replan(
            graph,
            shrunk,
            survivors,
            seed=args.seed,
            budget_per_count=budget,
        )

    payload = {
        "model": args.model,
        "gpus": args.gpus,
        "surviving_gpus": shrunk.num_gpus,
        "failed_device": args.fail_device,
        "failure_time": run.failure_time,
        "tasks_completed": run.tasks_completed,
        "tasks_total": run.tasks_total,
        "strategies": {
            outcome.strategy: {
                "best_objective": outcome.best_objective,
                "feasible": outcome.feasible,
                "num_estimates": outcome.num_estimates,
                "estimates_to_feasible": outcome.estimates_to_feasible,
                "wall_seconds": outcome.wall_seconds,
            }
            for outcome in (comparison.warm, comparison.cold)
        },
        "estimate_savings": comparison.estimate_savings,
    }
    if run.completed:
        # The measured iteration finished before the failure hit; the
        # device is still gone for every iteration after it.
        interruption = (
            f"device {args.fail_device} lost at t={args.fail_time:.3f}s"
        )
    else:
        interruption = (
            f"device {args.fail_device} lost at t={run.failure_time:.3f}s "
            f"({run.tasks_completed}/{run.tasks_total} tasks done)"
        )
    rows = []
    for outcome in (comparison.warm, comparison.cold):
        to_feasible = (
            str(outcome.estimates_to_feasible)
            if outcome.estimates_to_feasible is not None
            else "-"
        )
        rows.append([
            outcome.strategy,
            f"{outcome.best_objective:.6f}",
            str(outcome.num_estimates),
            to_feasible,
            f"{outcome.wall_seconds:.2f}s",
        ])
    lines = [
        f"{args.model}: {interruption}; "
        f"cluster {cluster.num_gpus} -> {shrunk.num_gpus} GPUs",
    ]
    lines.extend(_format_table(
        ["strategy", "objective", "estimates", "to-feasible", "wall"],
        rows,
        [8, 12, 10, 12, 8],
    ))
    lines.append(
        f"warm start avoided {comparison.estimate_savings:.0%} of the "
        "cold-restart estimates"
    )
    _emit_output(args, payload, lines)
    return 0


def arena_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-arena``: race strategies under one budget.

    Every entry (strategy × seed) searches the same model/cluster/stage
    count from the same initial configuration against a fresh
    performance model, under the same budget and per-entry deadline;
    the report is a ``BENCH_strategies.json``-shaped tournament record.
    """
    parser = argparse.ArgumentParser(
        prog="repro-arena",
        description="Tournament harness: race search strategies under "
        "equal budget and deadline on one setting",
    )
    parser.add_argument(
        "--model",
        required=True,
        help=f"model name, e.g. {available_models()[:3]} or gpt-<N>l",
    )
    parser.add_argument(
        "--gpus", type=int, default=8, help="cluster size (default 8)"
    )
    parser.add_argument(
        "--stage-count",
        type=int,
        default=4,
        help="pipeline stage count every entry searches (default 4)",
    )
    parser.add_argument(
        "--strategies",
        nargs="+",
        default=None,
        metavar="NAME",
        choices=available_strategies(),
        help="strategies to race (default: all registered)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[0],
        help="one tournament lane per strategy x seed (default 0)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="profile-database seed shared by every lane (default 0)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=30,
        help="iteration budget per entry (default 30)",
    )
    parser.add_argument(
        "--max-estimates",
        type=int,
        default=None,
        metavar="N",
        help="race on an equal estimate budget instead of iterations "
        "(the fair cross-strategy comparison)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-entry wall-clock deadline (anytime: partial results "
        "still report)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes racing entries concurrently (default 1)",
    )
    parser.add_argument(
        "--label", default="", help="free-form tournament label"
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="BENCH.json",
        help="write the full tournament record here (atomic)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    _add_telemetry_flags(parser)
    args = parser.parse_args(argv)
    if args.stage_count < 1:
        parser.error("--stage-count must be positive")
    if args.max_estimates is not None and args.max_estimates < 1:
        parser.error("--max-estimates must be positive")

    from .arena import ArenaEntry, run_tournament

    strategies = args.strategies or available_strategies()
    entries = [
        ArenaEntry(strategy=strategy, seed=seed)
        for strategy in strategies
        for seed in args.seeds
    ]
    budget = (
        {"max_estimates": args.max_estimates}
        if args.max_estimates is not None
        else {"max_iterations": args.iterations}
    )
    label = args.label or (
        f"{args.model}/gpus={args.gpus}/stages={args.stage_count}"
    )
    graph = build_model(args.model)
    cluster = paper_cluster(args.gpus)
    perf_model = build_perf_model(graph, cluster, seed=args.seed)
    with _telemetry(args):
        result = run_tournament(
            graph,
            cluster,
            perf_model.database,
            entries=entries,
            stage_count=args.stage_count,
            budget_per_entry=budget,
            deadline_seconds=args.deadline,
            workers=args.workers,
            label=label,
        )
    if args.output:
        result.write_json(args.output)
    payload = result.to_json()
    if args.output:
        payload["output"] = args.output
    rows = []
    for outcome in result.outcomes:
        if outcome.failed:
            rows.append([
                f"{outcome.strategy}#{outcome.seed}",
                "FAILED", "-", "-", "-", "-",
            ])
            continue
        rows.append([
            f"{outcome.strategy}#{outcome.seed}",
            f"{outcome.best_objective:.6f}",
            "yes" if outcome.feasible else "NO",
            str(outcome.num_estimates),
            str(outcome.estimates_to_best),
            str(outcome.iterations),
        ])
    lines = [
        f"{label}: {len(result.outcomes)} entries, "
        f"budget {result.budget}",
    ]
    lines.extend(_format_table(
        ["entry", "objective", "feasible", "estimates", "to-best",
         "iters"],
        rows,
        [14, 12, 8, 10, 8, 6],
    ))
    winner = result.winner
    if winner is not None:
        lines.append(
            f"winner: {winner.strategy}#{winner.seed} "
            f"({winner.best_objective:.6f}, "
            f"{winner.estimates_to_best} estimates to best)"
        )
    else:
        lines.append("winner: none (every entry failed)")
    if args.output:
        lines.append(f"tournament record written to {args.output}")
    _emit_output(args, payload, lines)
    return 0 if winner is not None else 1


def trace_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-trace``: inspect telemetry run logs."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarize, validate, or convert a JSONL telemetry "
        "run log written by the other tools' --run-log flag",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_summary = sub.add_parser(
        "summary", help="aggregate statistics from a run log"
    )
    p_summary.add_argument("run_log", help="path to an EVENTS.jsonl file")
    p_summary.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    p_validate = sub.add_parser(
        "validate", help="schema-check every line of a run log"
    )
    p_validate.add_argument("run_log", help="path to an EVENTS.jsonl file")
    p_chrome = sub.add_parser(
        "chrome",
        help="convert runtime.task events to a Chrome trace "
        "(chrome://tracing / Perfetto)",
    )
    p_chrome.add_argument("run_log", help="path to an EVENTS.jsonl file")
    p_chrome.add_argument(
        "--output", "-o", required=True, metavar="TRACE.json"
    )
    args = parser.parse_args(argv)

    try:
        events = validate_run_log(args.run_log)
    except (OSError, ValueError) as exc:
        print(f"repro-trace: {args.run_log}: {exc}", file=sys.stderr)
        return 1
    if args.command == "summary":
        summary = summarize_events(events)
        if args.json:
            print(json.dumps(summary, indent=2))
        else:
            for line in render_summary(summary):
                print(line)
    elif args.command == "validate":
        print(f"{args.run_log}: {len(events)} events, schema OK")
    else:
        trace = chrome_trace_from_events(events)
        write_chrome_trace(trace, args.output)
        print(
            f"wrote {args.output} "
            f"({len(trace['traceEvents'])} trace events)"
        )
    return 0


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-serve``: the resilient planner daemon.

    Serves the JSON plan protocol over HTTP until SIGTERM/SIGINT, then
    drains gracefully: sheds the queue with ``retry_after``, cancels
    in-flight deadlines so searches checkpoint at the next iteration
    boundary, and exits — a restarted daemon re-admits the journaled
    requests and resumes their completed stage counts.
    """
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Anytime planner service: admission-controlled, "
        "self-healing daemon over the Aceso search",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8347,
        help="TCP port (0 picks a free one; default 8347)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="planner worker threads (default 2)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="max queued requests before 429 rejection (default 8)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="persist plans, checkpoints, and the request journal here "
        "(enables crash/drain recovery)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive failures before a config's breaker opens "
        "(default 3)",
    )
    parser.add_argument(
        "--breaker-reset",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="open-breaker cool-down before a half-open probe "
        "(default 30)",
    )
    parser.add_argument(
        "--search-workers",
        type=int,
        default=1,
        help="stage-count subprocesses per request (default 1)",
    )
    parser.add_argument(
        "--timeout-per-count",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any stage-count worker exceeding this",
    )
    parser.add_argument(
        "--worker-memory-mb",
        type=float,
        default=None,
        metavar="MB",
        help="address-space cap per stage-count worker",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="max wait for in-flight searches to checkpoint on "
        "SIGTERM (default 30)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="run N planner replicas behind a fleet router instead of "
        "one daemon (default 1)",
    )
    _add_telemetry_flags(parser)
    args = parser.parse_args(argv)
    if args.worker_memory_mb is not None and args.worker_memory_mb <= 0:
        parser.error("--worker-memory-mb must be positive")
    if args.replicas < 1:
        parser.error("--replicas must be >= 1")
    if args.replicas > 1:
        return _run_fleet(args, prog="repro-serve")

    import signal
    import threading

    from .service import PlannerDaemon, serve

    with _telemetry(args):
        daemon = PlannerDaemon(
            workers=args.workers,
            queue_limit=args.queue_limit,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_seconds=args.breaker_reset,
            state_dir=args.state_dir,
            search_workers=args.search_workers,
            timeout_per_count=args.timeout_per_count,
            worker_memory_mb=args.worker_memory_mb,
        ).start()
        server = serve(daemon, host=args.host, port=args.port)

        def _handle_signal(signum, _frame):
            # serve_forever runs in this (main) thread; shutdown() must
            # come from another one or it deadlocks on its own loop.
            threading.Thread(
                target=server.shutdown, daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _handle_signal)
        signal.signal(signal.SIGINT, _handle_signal)
        host, port = server.server_address[:2]
        print(
            f"repro-serve: listening on http://{host}:{port}",
            flush=True,
        )
        try:
            server.serve_forever(poll_interval=0.2)
        finally:
            daemon.drain(timeout=args.drain_timeout)
            server.server_close()
    return 0


def _run_fleet(args, *, prog: str) -> int:
    """Shared launcher behind ``repro-fleet`` and
    ``repro-serve --replicas N``: boot N in-process planner replicas,
    shard them behind a :class:`FleetRouter`, serve the same JSON
    protocol on one port."""
    import signal
    import threading
    from pathlib import Path

    from .service import FleetConfig, FleetRouter, InProcessReplica, \
        serve_fleet

    state_root = Path(args.state_dir) if args.state_dir else None
    config = FleetConfig(
        vnodes=getattr(args, "vnodes", 128),
        retries=getattr(args, "retries", 1),
        hedge_factor=getattr(args, "hedge_factor", 1.5),
        seed=getattr(args, "seed", 0),
    )
    with _telemetry(args):
        replicas = {}
        for index in range(args.replicas):
            name = f"replica-{index}"
            replicas[name] = InProcessReplica(
                name,
                state_dir=state_root / name if state_root else None,
                daemon_kwargs={
                    "workers": args.workers,
                    "queue_limit": args.queue_limit,
                    "breaker_threshold": args.breaker_threshold,
                    "breaker_reset_seconds": args.breaker_reset,
                    "search_workers": args.search_workers,
                    "timeout_per_count": args.timeout_per_count,
                    "worker_memory_mb": args.worker_memory_mb,
                },
            ).start()
        router = FleetRouter(
            replicas,
            config=config,
            state_path=(
                state_root / "fleet.fleet.json" if state_root else None
            ),
        ).start()
        server = serve_fleet(router, host=args.host, port=args.port)

        def _handle_signal(signum, _frame):
            threading.Thread(
                target=server.shutdown, daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _handle_signal)
        signal.signal(signal.SIGINT, _handle_signal)
        host, port = server.server_address[:2]
        print(
            f"{prog}: fleet of {args.replicas} replicas listening on "
            f"http://{host}:{port}",
            flush=True,
        )
        try:
            server.serve_forever(poll_interval=0.2)
        finally:
            router.stop(close_replicas=True)
            server.server_close()
    return 0


def fleet_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-fleet``: N planner replicas behind a
    consistent-hash router with failover, hedging, coalescing, and
    graceful degradation — one port, same JSON protocol as
    ``repro-serve``."""
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Resilient planner fleet: consistent-hash sharding "
        "across N planner replicas with failover and hedged requests",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8348,
        help="TCP port (0 picks a free one; default 8348)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="planner replicas behind the router (default 2)",
    )
    parser.add_argument(
        "--vnodes",
        type=int,
        default=128,
        help="virtual nodes per replica on the hash ring (default 128)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="transport retries per replica before failover (default 1)",
    )
    parser.add_argument(
        "--hedge-factor",
        type=float,
        default=1.5,
        help="hedge a request once its replica exceeds p99 × this "
        "(default 1.5)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the deterministic retry jitter (default 0)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="planner worker threads per replica (default 2)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=8,
        help="per-replica queued requests before 429 (default 8)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="root directory for per-replica state and the fleet "
        "state artifact",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive failures before a config's breaker opens",
    )
    parser.add_argument(
        "--breaker-reset", type=float, default=30.0, metavar="SECONDS",
        help="open-breaker cool-down before a half-open probe",
    )
    parser.add_argument(
        "--search-workers", type=int, default=1,
        help="stage-count subprocesses per request (default 1)",
    )
    parser.add_argument(
        "--timeout-per-count", type=float, default=None,
        metavar="SECONDS",
        help="kill and retry any stage-count worker exceeding this",
    )
    parser.add_argument(
        "--worker-memory-mb", type=float, default=None, metavar="MB",
        help="address-space cap per stage-count worker",
    )
    _add_telemetry_flags(parser)
    args = parser.parse_args(argv)
    if args.replicas < 1:
        parser.error("--replicas must be >= 1")
    if args.worker_memory_mb is not None and args.worker_memory_mb <= 0:
        parser.error("--worker-memory-mb must be positive")
    return _run_fleet(args, prog="repro-fleet")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(search_main())
