"""Command-line entry points.

``repro-search`` runs the Aceso search on one model/cluster setting;
``repro-compare`` runs all three systems and prints a comparison table;
``repro-replan`` simulates a device failure and measures warm vs. cold
time-to-new-plan.  All accept ``--json`` for machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis.compare import compare_systems
from .analysis.metrics import tflops_per_gpu
from .cluster.topology import paper_cluster
from .core.search import SearchFailedError, search_all_stage_counts
from .ir.models.registry import available_models, build_model
from .perfmodel.model import build_perf_model
from .runtime.executor import Executor


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model",
        required=True,
        help=f"model name, e.g. {available_models()[:3]} or gpt-<N>l",
    )
    parser.add_argument(
        "--gpus", type=int, default=8, help="cluster size (default 8)"
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=30,
        help="search iterations per pipeline stage count (default 30)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )


def search_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-search``."""
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description="Aceso configuration search (iterative bottleneck "
        "alleviation)",
    )
    _add_common(parser)
    parser.add_argument(
        "--stage-counts",
        type=int,
        nargs="*",
        default=None,
        help="pipeline stage counts to search (default: powers of two)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PLAN.json",
        help="save the winning plan as a JSON deployment artifact",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes searching stage counts concurrently (default 1)",
    )
    parser.add_argument(
        "--timeout-per-count",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any stage-count worker that exceeds this "
        "wall-clock limit (multiprocess mode only)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help="extra attempts for a crashed/hung stage count (default 1)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="persist completed stage counts to this JSON file after "
        "each one finishes",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore completed stage counts from --checkpoint instead "
        "of re-searching them",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")

    from .core.checkpoint import CheckpointError

    graph = build_model(args.model)
    cluster = paper_cluster(args.gpus)
    perf_model = build_perf_model(graph, cluster, seed=args.seed)
    try:
        multi = search_all_stage_counts(
            graph,
            cluster,
            perf_model,
            stage_counts=args.stage_counts,
            budget_per_count={"max_iterations": args.iterations},
            workers=args.workers,
            timeout_per_count=args.timeout_per_count,
            max_retries=args.max_retries,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
        )
    except CheckpointError as exc:
        print(f"repro-search: {exc}", file=sys.stderr)
        return 1
    try:
        best = multi.best
    except SearchFailedError as exc:
        print(f"repro-search: {exc}", file=sys.stderr)
        return 1
    executor = Executor(graph, cluster, seed=args.seed)
    run = executor.run(best.best_config)
    throughput = run.throughput(graph.global_batch_size)
    payload = {
        "model": args.model,
        "gpus": args.gpus,
        "predicted_iteration_time": best.best_objective,
        "actual_iteration_time": run.iteration_time,
        "throughput_samples_per_s": throughput,
        "tflops_per_gpu": tflops_per_gpu(graph, throughput, args.gpus),
        "search_seconds_parallel": multi.parallel_seconds,
        "search_seconds_wall": multi.wall_seconds,
        "search_workers": multi.workers,
        "estimates": multi.num_estimates,
        "failures": [
            {
                "num_stages": f.num_stages,
                "error": f.error,
                "attempts": f.attempts,
            }
            for f in multi.failures
        ],
        "config": best.best_config.describe(),
    }
    if args.output:
        from .parallel.serialization import save_config

        save_config(best.best_config, args.output)
        payload["plan_file"] = args.output
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"model: {payload['model']}  cluster: {cluster.describe()}")
        print(
            f"predicted {payload['predicted_iteration_time']:.3f}s / "
            f"measured {payload['actual_iteration_time']:.3f}s per iteration"
        )
        print(
            f"throughput {throughput:.2f} samples/s "
            f"({payload['tflops_per_gpu']:.1f} TFLOPS/GPU)"
        )
        print(
            f"search cost {multi.parallel_seconds:.1f}s "
            f"({multi.num_estimates} configurations estimated)"
        )
        for failure in multi.failures:
            print(
                f"warning: {failure.num_stages}-stage search failed "
                f"after {failure.attempts} attempt(s): {failure.error}",
                file=sys.stderr,
            )
        print(payload["config"])
    return 0


def compare_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-compare``."""
    parser = argparse.ArgumentParser(
        prog="repro-compare",
        description="Compare Megatron-LM / Alpa / Aceso on one setting",
    )
    _add_common(parser)
    args = parser.parse_args(argv)

    result = compare_systems(
        args.model,
        args.gpus,
        aceso_iterations=args.iterations,
        seed=args.seed,
    )
    if args.json:
        payload = {
            name: {
                "throughput": o.throughput,
                "tflops_per_gpu": o.tflops,
                "search_seconds": o.search_seconds,
                "oom": o.oom,
                "failed": o.failed,
            }
            for name, o in result.outcomes.items()
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{args.model} on {args.gpus} GPUs")
    header = f"{'system':<10} {'samples/s':>10} {'TFLOPS':>8} {'search':>10}"
    print(header)
    print("-" * len(header))
    for name, outcome in result.outcomes.items():
        if outcome.failed:
            print(f"{name:<10} {'FAILED':>10} {'-':>8} {'-':>10}")
            continue
        print(
            f"{name:<10} {outcome.throughput:>10.2f} "
            f"{outcome.tflops:>8.1f} {outcome.search_seconds:>9.1f}s"
        )
    return 0


def estimate_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-estimate``: predict + measure a saved plan."""
    parser = argparse.ArgumentParser(
        prog="repro-estimate",
        description="Evaluate a saved plan (from repro-search --output) "
        "with the performance model and the ground-truth executor",
    )
    _add_common(parser)
    parser.add_argument(
        "plan", help="path to a plan JSON written by repro-search --output"
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="FAULTS.json",
        help="inject deployment faults from a FaultPlan JSON file "
        "(see repro.faults.FaultPlan.save)",
    )
    args = parser.parse_args(argv)

    from .parallel.serialization import load_config
    from .parallel.validation import validate_config

    graph = build_model(args.model)
    cluster = paper_cluster(args.gpus)
    config = load_config(args.plan)
    validate_config(config, graph, cluster)
    fault_plan = None
    if args.fault_plan:
        from .faults import FaultPlan

        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(
                f"repro-estimate: cannot load fault plan "
                f"{args.fault_plan}: {exc}",
                file=sys.stderr,
            )
            return 1
    perf_model = build_perf_model(graph, cluster, seed=args.seed)
    report = perf_model.estimate(config)
    run = Executor(graph, cluster, seed=args.seed).run(
        config, fault_plan=fault_plan
    )
    payload = {
        "model": args.model,
        "gpus": args.gpus,
        "plan": args.plan,
        "predicted_iteration_time": report.iteration_time,
        "actual_iteration_time": run.iteration_time,
        "predicted_peak_memory_gb": [
            m / 2**30 for m in report.peak_memories
        ],
        "actual_peak_memory_gb": [
            m / 2**30 for m in run.stage_peak_memory
        ],
        "predicted_oom": report.is_oom,
        "actual_oom": run.oom,
        "throughput_samples_per_s": run.throughput(
            graph.global_batch_size
        ),
    }
    if fault_plan is not None:
        payload.update(
            {
                "fault_plan": args.fault_plan,
                "completed": run.completed,
                "degraded": run.degraded,
                "failure_time": run.failure_time,
                "failed_device": run.failed_device,
                "tasks_completed": run.tasks_completed,
                "tasks_total": run.tasks_total,
            }
        )
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(config.describe())
        print(
            f"predicted {report.iteration_time:.3f}s / measured "
            f"{run.iteration_time:.3f}s per iteration"
        )
        print(
            f"memory per stage (predicted/actual GB): "
            + ", ".join(
                f"{p:.1f}/{a:.1f}"
                for p, a in zip(
                    payload["predicted_peak_memory_gb"],
                    payload["actual_peak_memory_gb"],
                )
            )
        )
        status = "OOM" if run.oom else "fits"
        print(
            f"deployment: {status}, "
            f"{payload['throughput_samples_per_s']:.2f} samples/s"
        )
        if fault_plan is not None:
            if not run.completed:
                print(
                    f"FAULT: device {run.failed_device} failed at "
                    f"t={run.failure_time:.3f}s — "
                    f"{run.tasks_completed}/{run.tasks_total} tasks done"
                )
            elif run.degraded:
                print(
                    "FAULT: iteration completed under degraded "
                    "conditions (stragglers/links/allocator stalls)"
                )
    return 0 if not run.oom and run.completed else 1


def replan_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-replan``: device loss → time-to-new-plan."""
    parser = argparse.ArgumentParser(
        prog="repro-replan",
        description="Simulate a device failure mid-training, shrink the "
        "cluster, and compare warm-start vs. cold-restart re-planning",
    )
    _add_common(parser)
    parser.add_argument(
        "--fail-device",
        type=int,
        default=0,
        help="device lost mid-training (default 0)",
    )
    parser.add_argument(
        "--fail-time",
        type=float,
        default=1.0,
        help="failure time in seconds into the iteration (default 1.0)",
    )
    parser.add_argument(
        "--top-k",
        type=int,
        default=5,
        help="surviving configurations to warm-start from (default 5)",
    )
    args = parser.parse_args(argv)

    from .faults import (
        DeviceFailure,
        FaultPlan,
        elastic_replan,
        shrink_cluster,
    )

    if not 0 <= args.fail_device < args.gpus:
        parser.error(
            f"--fail-device {args.fail_device} is outside the "
            f"{args.gpus}-GPU cluster"
        )
    graph = build_model(args.model)
    cluster = paper_cluster(args.gpus)
    perf_model = build_perf_model(graph, cluster, seed=args.seed)
    budget = {"max_iterations": args.iterations}
    initial = search_all_stage_counts(
        graph, cluster, perf_model, budget_per_count=budget
    )
    best = initial.best

    plan = FaultPlan(
        seed=args.seed,
        device_failures=(
            DeviceFailure(
                device_id=args.fail_device, time=args.fail_time
            ),
        ),
    )
    run = Executor(graph, cluster, seed=args.seed).run(
        best.best_config, fault_plan=plan
    )
    survivors = initial.top_configs(args.top_k)
    shrunk = shrink_cluster(cluster, plan.failed_devices())
    comparison = elastic_replan(
        graph,
        shrunk,
        survivors,
        seed=args.seed,
        budget_per_count=budget,
    )

    payload = {
        "model": args.model,
        "gpus": args.gpus,
        "surviving_gpus": shrunk.num_gpus,
        "failed_device": args.fail_device,
        "failure_time": run.failure_time,
        "tasks_completed": run.tasks_completed,
        "tasks_total": run.tasks_total,
        "strategies": {
            outcome.strategy: {
                "best_objective": outcome.best_objective,
                "feasible": outcome.feasible,
                "num_estimates": outcome.num_estimates,
                "estimates_to_feasible": outcome.estimates_to_feasible,
                "wall_seconds": outcome.wall_seconds,
            }
            for outcome in (comparison.warm, comparison.cold)
        },
        "estimate_savings": comparison.estimate_savings,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    if run.completed:
        # The measured iteration finished before the failure hit; the
        # device is still gone for every iteration after it.
        interruption = (
            f"device {args.fail_device} lost at t={args.fail_time:.3f}s"
        )
    else:
        interruption = (
            f"device {args.fail_device} lost at t={run.failure_time:.3f}s "
            f"({run.tasks_completed}/{run.tasks_total} tasks done)"
        )
    print(
        f"{args.model}: {interruption}; "
        f"cluster {cluster.num_gpus} -> {shrunk.num_gpus} GPUs"
    )
    header = (
        f"{'strategy':<8} {'objective':>12} {'estimates':>10} "
        f"{'to-feasible':>12} {'wall':>8}"
    )
    print(header)
    print("-" * len(header))
    for outcome in (comparison.warm, comparison.cold):
        to_feasible = (
            str(outcome.estimates_to_feasible)
            if outcome.estimates_to_feasible is not None
            else "-"
        )
        print(
            f"{outcome.strategy:<8} {outcome.best_objective:>12.6f} "
            f"{outcome.num_estimates:>10} {to_feasible:>12} "
            f"{outcome.wall_seconds:>7.2f}s"
        )
    print(
        f"warm start avoided {comparison.estimate_savings:.0%} of the "
        "cold-restart estimates"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(search_main())
