"""Command-line entry points.

``repro-search`` runs the Aceso search on one model/cluster setting;
``repro-compare`` runs all three systems and prints a comparison table.
Both accept ``--json`` for machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis.compare import compare_systems
from .analysis.metrics import tflops_per_gpu
from .cluster.topology import paper_cluster
from .core.search import search_all_stage_counts
from .ir.models.registry import available_models, build_model
from .perfmodel.model import build_perf_model
from .runtime.executor import Executor


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model",
        required=True,
        help=f"model name, e.g. {available_models()[:3]} or gpt-<N>l",
    )
    parser.add_argument(
        "--gpus", type=int, default=8, help="cluster size (default 8)"
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=30,
        help="search iterations per pipeline stage count (default 30)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )


def search_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-search``."""
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description="Aceso configuration search (iterative bottleneck "
        "alleviation)",
    )
    _add_common(parser)
    parser.add_argument(
        "--stage-counts",
        type=int,
        nargs="*",
        default=None,
        help="pipeline stage counts to search (default: powers of two)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PLAN.json",
        help="save the winning plan as a JSON deployment artifact",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes searching stage counts concurrently (default 1)",
    )
    args = parser.parse_args(argv)

    graph = build_model(args.model)
    cluster = paper_cluster(args.gpus)
    perf_model = build_perf_model(graph, cluster, seed=args.seed)
    multi = search_all_stage_counts(
        graph,
        cluster,
        perf_model,
        stage_counts=args.stage_counts,
        budget_per_count={"max_iterations": args.iterations},
        workers=args.workers,
    )
    best = multi.best
    executor = Executor(graph, cluster, seed=args.seed)
    run = executor.run(best.best_config)
    throughput = run.throughput(graph.global_batch_size)
    payload = {
        "model": args.model,
        "gpus": args.gpus,
        "predicted_iteration_time": best.best_objective,
        "actual_iteration_time": run.iteration_time,
        "throughput_samples_per_s": throughput,
        "tflops_per_gpu": tflops_per_gpu(graph, throughput, args.gpus),
        "search_seconds_parallel": multi.parallel_seconds,
        "search_seconds_wall": multi.wall_seconds,
        "search_workers": multi.workers,
        "estimates": multi.num_estimates,
        "config": best.best_config.describe(),
    }
    if args.output:
        from .parallel.serialization import save_config

        save_config(best.best_config, args.output)
        payload["plan_file"] = args.output
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"model: {payload['model']}  cluster: {cluster.describe()}")
        print(
            f"predicted {payload['predicted_iteration_time']:.3f}s / "
            f"measured {payload['actual_iteration_time']:.3f}s per iteration"
        )
        print(
            f"throughput {throughput:.2f} samples/s "
            f"({payload['tflops_per_gpu']:.1f} TFLOPS/GPU)"
        )
        print(
            f"search cost {multi.parallel_seconds:.1f}s "
            f"({multi.num_estimates} configurations estimated)"
        )
        print(payload["config"])
    return 0


def compare_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-compare``."""
    parser = argparse.ArgumentParser(
        prog="repro-compare",
        description="Compare Megatron-LM / Alpa / Aceso on one setting",
    )
    _add_common(parser)
    args = parser.parse_args(argv)

    result = compare_systems(
        args.model,
        args.gpus,
        aceso_iterations=args.iterations,
        seed=args.seed,
    )
    if args.json:
        payload = {
            name: {
                "throughput": o.throughput,
                "tflops_per_gpu": o.tflops,
                "search_seconds": o.search_seconds,
                "oom": o.oom,
                "failed": o.failed,
            }
            for name, o in result.outcomes.items()
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{args.model} on {args.gpus} GPUs")
    header = f"{'system':<10} {'samples/s':>10} {'TFLOPS':>8} {'search':>10}"
    print(header)
    print("-" * len(header))
    for name, outcome in result.outcomes.items():
        if outcome.failed:
            print(f"{name:<10} {'FAILED':>10} {'-':>8} {'-':>10}")
            continue
        print(
            f"{name:<10} {outcome.throughput:>10.2f} "
            f"{outcome.tflops:>8.1f} {outcome.search_seconds:>9.1f}s"
        )
    return 0


def estimate_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-estimate``: predict + measure a saved plan."""
    parser = argparse.ArgumentParser(
        prog="repro-estimate",
        description="Evaluate a saved plan (from repro-search --output) "
        "with the performance model and the ground-truth executor",
    )
    _add_common(parser)
    parser.add_argument(
        "plan", help="path to a plan JSON written by repro-search --output"
    )
    args = parser.parse_args(argv)

    from .parallel.serialization import load_config
    from .parallel.validation import validate_config

    graph = build_model(args.model)
    cluster = paper_cluster(args.gpus)
    config = load_config(args.plan)
    validate_config(config, graph, cluster)
    perf_model = build_perf_model(graph, cluster, seed=args.seed)
    report = perf_model.estimate(config)
    run = Executor(graph, cluster, seed=args.seed).run(config)
    payload = {
        "model": args.model,
        "gpus": args.gpus,
        "plan": args.plan,
        "predicted_iteration_time": report.iteration_time,
        "actual_iteration_time": run.iteration_time,
        "predicted_peak_memory_gb": [
            m / 2**30 for m in report.peak_memories
        ],
        "actual_peak_memory_gb": [
            m / 2**30 for m in run.stage_peak_memory
        ],
        "predicted_oom": report.is_oom,
        "actual_oom": run.oom,
        "throughput_samples_per_s": run.throughput(
            graph.global_batch_size
        ),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(config.describe())
        print(
            f"predicted {report.iteration_time:.3f}s / measured "
            f"{run.iteration_time:.3f}s per iteration"
        )
        print(
            f"memory per stage (predicted/actual GB): "
            + ", ".join(
                f"{p:.1f}/{a:.1f}"
                for p, a in zip(
                    payload["predicted_peak_memory_gb"],
                    payload["actual_peak_memory_gb"],
                )
            )
        )
        status = "OOM" if run.oom else "fits"
        print(
            f"deployment: {status}, "
            f"{payload['throughput_samples_per_s']:.2f} samples/s"
        )
    return 0 if not run.oom else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(search_main())
