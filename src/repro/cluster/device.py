"""Accelerator device model.

A ``DeviceSpec`` captures the roofline characteristics the cost model
needs: peak FLOP rates per precision (with an achievable-efficiency
knob), memory capacity, memory bandwidth, and fixed per-kernel launch
overhead.  The default matches the paper's NVIDIA V100-32GB testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

GB = 1024 ** 3


@dataclass(frozen=True)
class DeviceSpec:
    """One accelerator's capability envelope.

    Attributes:
        name: human-readable device name.
        peak_flops: precision -> peak FLOP/s (tensor cores for fp16).
        memory_bytes: usable HBM capacity in bytes.
        memory_bandwidth: HBM bandwidth in bytes/s.
        efficiency: fraction of peak sustained by large matmul kernels.
        kernel_overhead: fixed seconds per kernel launch.
    """

    name: str = "V100-32GB"
    peak_flops: Dict[str, float] = field(
        default_factory=lambda: {"fp16": 125e12, "bf16": 125e12, "fp32": 15.7e12}
    )
    memory_bytes: int = 32 * GB
    memory_bandwidth: float = 900e9
    efficiency: float = 0.55
    kernel_overhead: float = 8e-6

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if any(v <= 0 for v in self.peak_flops.values()):
            raise ValueError("peak_flops entries must be positive")

    def sustained_flops(self, precision: str) -> float:
        """Achievable FLOP/s for compute-bound kernels at ``precision``."""
        try:
            peak = self.peak_flops[precision]
        except KeyError:
            raise KeyError(
                f"{self.name} has no peak FLOPs entry for {precision!r}"
            ) from None
        return peak * self.efficiency

    def compute_time(
        self, flops: float, bytes_moved: float, precision: str
    ) -> float:
        """Roofline kernel time: max of compute- and bandwidth-bound.

        ``bytes_moved`` is the kernel's HBM traffic (reads + writes).
        """
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops and bytes_moved must be non-negative")
        compute = flops / self.sustained_flops(precision)
        memory = bytes_moved / self.memory_bandwidth
        return max(compute, memory) + self.kernel_overhead


def v100() -> DeviceSpec:
    """The paper's evaluation device."""
    return DeviceSpec()


def a100() -> DeviceSpec:
    """A newer device for what-if studies (not used in paper tables)."""
    return DeviceSpec(
        name="A100-40GB",
        peak_flops={"fp16": 312e12, "bf16": 312e12, "fp32": 19.5e12},
        memory_bytes=40 * GB,
        memory_bandwidth=1555e9,
        efficiency=0.5,
    )
