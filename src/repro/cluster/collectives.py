"""alpha-beta cost models for collective communication.

All large deep-learning collectives on NVLink/IB fabrics are well
modelled by ring algorithms: an all-reduce of ``B`` bytes over ``n``
ranks moves ``2 * (n-1)/n * B`` bytes through the slowest link, an
all-gather / reduce-scatter moves half of that.  These formulas (plus
per-step latency) are what NCCL's own tuner assumes and are accurate
enough for planning purposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from .topology import ClusterSpec, LinkSpec


@dataclass(frozen=True)
class CollectiveCostModel:
    """Collective cost oracle bound to one cluster topology.

    Group placement convention: parallel groups occupy contiguous
    device-id ranges starting at ``0`` (the planner's canonical
    placement), so group size alone determines the bottleneck link.
    """

    cluster: ClusterSpec

    def _link(self, group_size: int) -> LinkSpec:
        return self.cluster.link_for_group_size(group_size)

    def allreduce_time(self, num_bytes: float, group_size: int) -> float:
        """Ring all-reduce time for ``num_bytes`` over ``group_size``."""
        self._validate(num_bytes, group_size)
        if group_size == 1 or num_bytes == 0:
            return 0.0
        link = self._link(group_size)
        steps = 2 * (group_size - 1)
        wire_bytes = 2.0 * (group_size - 1) / group_size * num_bytes
        return steps * link.latency + wire_bytes / link.bandwidth

    def allgather_time(self, num_bytes: float, group_size: int) -> float:
        """Ring all-gather time; ``num_bytes`` is the *full* tensor."""
        self._validate(num_bytes, group_size)
        if group_size == 1 or num_bytes == 0:
            return 0.0
        link = self._link(group_size)
        steps = group_size - 1
        wire_bytes = (group_size - 1) / group_size * num_bytes
        return steps * link.latency + wire_bytes / link.bandwidth

    def reducescatter_time(self, num_bytes: float, group_size: int) -> float:
        """Ring reduce-scatter time; same wire cost as all-gather."""
        return self.allgather_time(num_bytes, group_size)

    def broadcast_time(self, num_bytes: float, group_size: int) -> float:
        """Pipelined-ring broadcast time."""
        self._validate(num_bytes, group_size)
        if group_size == 1 or num_bytes == 0:
            return 0.0
        link = self._link(group_size)
        return (group_size - 1) * link.latency + num_bytes / link.bandwidth

    def p2p_time(
        self, num_bytes: float, src: int = 0, dst: int = 1
    ) -> float:
        """Point-to-point (pipeline send/recv) transfer time."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.cluster.p2p_link(src, dst).transfer_time(num_bytes)

    def p2p_time_between_stages(
        self, num_bytes: float, boundary_device: int
    ) -> float:
        """Transfer time across a stage boundary at ``boundary_device``.

        When the boundary crosses a node edge the transfer uses the
        inter-node link; otherwise NVLink.
        """
        if num_bytes <= 0:
            return 0.0
        src = max(0, min(boundary_device, self.cluster.num_gpus - 1))
        dst = max(0, min(boundary_device + 1, self.cluster.num_gpus - 1))
        if src == dst:
            return self.cluster.intra_node.transfer_time(num_bytes)
        return self.p2p_time(num_bytes, src, dst)

    @staticmethod
    def _validate(num_bytes: float, group_size: int) -> None:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
