"""Hardware substrate: devices, topology, collective cost models."""

from .collectives import CollectiveCostModel
from .device import GB, DeviceSpec, a100, v100
from .topology import (
    DEFAULT_IB,
    DEFAULT_NVLINK,
    ClusterSpec,
    LinkSpec,
    mixed_cluster,
    paper_cluster,
    single_node,
)

__all__ = [
    "DEFAULT_IB",
    "DEFAULT_NVLINK",
    "GB",
    "ClusterSpec",
    "CollectiveCostModel",
    "DeviceSpec",
    "LinkSpec",
    "a100",
    "mixed_cluster",
    "paper_cluster",
    "single_node",
    "v100",
]
