"""Cluster topology: nodes of devices with intra/inter-node links.

Matches the paper's testbed shape: servers of 8 GPUs connected by
NVLink inside a node and 100 Gb/s InfiniBand between nodes.  The
planner only needs, for any *device group*, the bottleneck bandwidth
and latency of collectives spanning that group — ``ClusterSpec``
answers those queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from .device import DeviceSpec, v100


@dataclass(frozen=True)
class LinkSpec:
    """A communication link class.

    Attributes:
        bandwidth: effective bytes/s available to one GPU using the link.
        latency: seconds of fixed per-message cost.
    """

    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(self, num_bytes: float) -> float:
        """alpha-beta time to move ``num_bytes`` point-to-point."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.latency + num_bytes / self.bandwidth


#: NVLink effective per-GPU bandwidth inside a DGX-1-style node.
DEFAULT_NVLINK = LinkSpec(bandwidth=130e9, latency=5e-6)
#: 100 Gb/s InfiniBand per server, shared by that server's GPUs.
DEFAULT_IB = LinkSpec(bandwidth=12.5e9, latency=20e-6)


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``num_nodes`` x ``gpus_per_node``.

    Device ids are dense integers, node-major: GPU ``i`` lives on node
    ``i // gpus_per_node``.
    """

    num_nodes: int = 4
    gpus_per_node: int = 8
    device: DeviceSpec = field(default_factory=v100)
    intra_node: LinkSpec = DEFAULT_NVLINK
    inter_node: LinkSpec = DEFAULT_IB

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError("cluster dimensions must be positive")

    @property
    def num_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def node_of(self, device_id: int) -> int:
        """Node index hosting ``device_id``."""
        if not 0 <= device_id < self.num_gpus:
            raise IndexError(
                f"device {device_id} out of range [0, {self.num_gpus})"
            )
        return device_id // self.gpus_per_node

    def group_spans_nodes(self, devices: Sequence[int]) -> bool:
        """Whether the device group touches more than one node."""
        nodes = {self.node_of(d) for d in devices}
        return len(nodes) > 1

    def group_link(self, devices: Sequence[int]) -> LinkSpec:
        """Bottleneck link class for a collective over ``devices``.

        A group confined to one node communicates over NVLink.  A group
        spanning nodes is bottlenecked by the inter-node NIC, which is
        *shared* by all of the group's GPUs on one node, so the
        effective per-GPU bandwidth shrinks accordingly.
        """
        if not devices:
            raise ValueError("device group must be non-empty")
        if not self.group_spans_nodes(devices):
            return self.intra_node
        per_node = max(
            sum(1 for d in devices if self.node_of(d) == n)
            for n in {self.node_of(d) for d in devices}
        )
        return LinkSpec(
            bandwidth=self.inter_node.bandwidth / per_node,
            latency=self.inter_node.latency,
        )

    def link_for_group_size(
        self, group_size: int, *, contiguous_start: int = 0
    ) -> LinkSpec:
        """Link class for a contiguous group of ``group_size`` devices.

        The planner places parallel groups on contiguous device ranges;
        this is the fast path that avoids materializing id lists.
        """
        if group_size < 1:
            raise ValueError("group_size must be positive")
        devices = range(contiguous_start, contiguous_start + group_size)
        if devices.stop > self.num_gpus:
            raise ValueError(
                f"group [{devices.start}, {devices.stop}) exceeds cluster "
                f"size {self.num_gpus}"
            )
        return self.group_link(devices)

    def p2p_link(self, src: int, dst: int) -> LinkSpec:
        """Link class for a point-to-point transfer between two GPUs."""
        if self.node_of(src) == self.node_of(dst):
            return self.intra_node
        return self.inter_node

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"{self.num_nodes}x{self.gpus_per_node} {self.device.name} "
            f"(NVLink {self.intra_node.bandwidth / 1e9:.0f} GB/s, "
            f"IB {self.inter_node.bandwidth * 8 / 1e9:.0f} Gb/s)"
        )


def single_node(num_gpus: int = 8, device: DeviceSpec = None) -> ClusterSpec:
    """Convenience constructor for a one-node cluster."""
    return ClusterSpec(
        num_nodes=1,
        gpus_per_node=num_gpus,
        device=device or v100(),
    )


def paper_cluster(num_gpus: int = 32) -> ClusterSpec:
    """The paper's testbed shape, truncated to ``num_gpus`` devices.

    Uses full 8-GPU nodes when possible; a smaller single node
    otherwise (the paper's 1/4-GPU settings fit one server).
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be positive")
    if num_gpus <= 8:
        return single_node(num_gpus)
    if num_gpus % 8:
        raise ValueError("multi-node clusters must use full 8-GPU nodes")
    return ClusterSpec(num_nodes=num_gpus // 8, gpus_per_node=8)
