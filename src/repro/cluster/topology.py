"""Cluster topology: nodes of devices with intra/inter-node links.

Matches the paper's testbed shape: servers of 8 GPUs connected by
NVLink inside a node and 100 Gb/s InfiniBand between nodes.  The
planner only needs, for any *device group*, the bottleneck bandwidth
and latency of collectives spanning that group — ``ClusterSpec``
answers those queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .device import DeviceSpec, v100


@dataclass(frozen=True)
class LinkSpec:
    """A communication link class.

    Attributes:
        bandwidth: effective bytes/s available to one GPU using the link.
        latency: seconds of fixed per-message cost.
    """

    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(self, num_bytes: float) -> float:
        """alpha-beta time to move ``num_bytes`` point-to-point."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.latency + num_bytes / self.bandwidth


#: NVLink effective per-GPU bandwidth inside a DGX-1-style node.
DEFAULT_NVLINK = LinkSpec(bandwidth=130e9, latency=5e-6)
#: 100 Gb/s InfiniBand per server, shared by that server's GPUs.
DEFAULT_IB = LinkSpec(bandwidth=12.5e9, latency=20e-6)


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster of ``num_nodes`` x ``gpus_per_node`` devices.

    Device ids are dense integers, node-major: GPU ``i`` lives on node
    ``i // gpus_per_node``.

    Clusters are homogeneous by default: every node hosts ``device``.
    A heterogeneous mix (e.g. some V100 nodes, some A100 nodes) sets
    ``node_devices`` to one :class:`DeviceSpec` per node; ``device``
    then acts as the *reference* device the profile database was built
    on, and per-node rooflines are expressed as scale factors relative
    to it.  ``node_devices=None`` is the homogeneous fast path — every
    existing query answers exactly as before.
    """

    num_nodes: int = 4
    gpus_per_node: int = 8
    device: DeviceSpec = field(default_factory=v100)
    intra_node: LinkSpec = DEFAULT_NVLINK
    inter_node: LinkSpec = DEFAULT_IB
    node_devices: Optional[Tuple[DeviceSpec, ...]] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError("cluster dimensions must be positive")
        if self.node_devices is not None:
            if not isinstance(self.node_devices, tuple):
                object.__setattr__(
                    self, "node_devices", tuple(self.node_devices)
                )
            if len(self.node_devices) != self.num_nodes:
                raise ValueError(
                    f"node_devices has {len(self.node_devices)} entries "
                    f"for {self.num_nodes} nodes"
                )

    @property
    def num_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    # ------------------------------------------------------------------
    # heterogeneity
    # ------------------------------------------------------------------
    @property
    def is_heterogeneous(self) -> bool:
        """Whether any node's device differs from the reference."""
        return self.node_devices is not None and any(
            spec != self.device for spec in self.node_devices
        )

    def node_device(self, node: int) -> DeviceSpec:
        """The device spec hosted by ``node``."""
        if not 0 <= node < self.num_nodes:
            raise IndexError(
                f"node {node} out of range [0, {self.num_nodes})"
            )
        if self.node_devices is None:
            return self.device
        return self.node_devices[node]

    def device_for(self, device_id: int) -> DeviceSpec:
        """The device spec of one GPU."""
        return self.node_device(self.node_of(device_id))

    def span_compute_scale(
        self, first_device: int, num_devices: int, precision: str
    ) -> float:
        """Compute-time scale of a contiguous device span vs. reference.

        A pipeline stage advances at the pace of its *slowest* occupied
        device, so the span's scale is the max over occupied nodes of
        ``reference_sustained / node_sustained`` at ``precision``
        (``1.0`` on a homogeneous cluster; ``< 1.0`` when every occupied
        device is faster than the reference).
        """
        if self.node_devices is None:
            return 1.0
        if num_devices < 1:
            raise ValueError("num_devices must be positive")
        last_device = first_device + num_devices - 1
        if not (0 <= first_device and last_device < self.num_gpus):
            raise ValueError(
                f"span [{first_device}, {last_device}] exceeds cluster "
                f"size {self.num_gpus}"
            )
        reference = self.device.sustained_flops(precision)
        return max(
            reference / self.node_devices[n].sustained_flops(precision)
            for n in range(
                first_device // self.gpus_per_node,
                last_device // self.gpus_per_node + 1,
            )
        )

    def span_memory_limit(
        self, first_device: int, num_devices: int
    ) -> float:
        """Usable bytes per device over a contiguous span.

        The tightest (minimum) capacity over the occupied nodes: a
        stage's shards are symmetric, so the smallest device bounds
        what the whole stage may allocate per GPU.
        """
        if self.node_devices is None:
            return float(self.device.memory_bytes)
        if num_devices < 1:
            raise ValueError("num_devices must be positive")
        last_device = first_device + num_devices - 1
        if not (0 <= first_device and last_device < self.num_gpus):
            raise ValueError(
                f"span [{first_device}, {last_device}] exceeds cluster "
                f"size {self.num_gpus}"
            )
        return float(min(
            self.node_devices[n].memory_bytes
            for n in range(
                first_device // self.gpus_per_node,
                last_device // self.gpus_per_node + 1,
            )
        ))

    @property
    def min_memory_bytes(self) -> float:
        """Smallest per-device memory anywhere in the cluster."""
        if self.node_devices is None:
            return float(self.device.memory_bytes)
        return float(min(spec.memory_bytes for spec in self.node_devices))

    def node_of(self, device_id: int) -> int:
        """Node index hosting ``device_id``."""
        if not 0 <= device_id < self.num_gpus:
            raise IndexError(
                f"device {device_id} out of range [0, {self.num_gpus})"
            )
        return device_id // self.gpus_per_node

    def group_spans_nodes(self, devices: Sequence[int]) -> bool:
        """Whether the device group touches more than one node."""
        nodes = {self.node_of(d) for d in devices}
        return len(nodes) > 1

    def group_link(self, devices: Sequence[int]) -> LinkSpec:
        """Bottleneck link class for a collective over ``devices``.

        A group confined to one node communicates over NVLink.  A group
        spanning nodes is bottlenecked by the inter-node NIC, which is
        *shared* by all of the group's GPUs on one node, so the
        effective per-GPU bandwidth shrinks accordingly.
        """
        if not devices:
            raise ValueError("device group must be non-empty")
        if not self.group_spans_nodes(devices):
            return self.intra_node
        per_node = max(
            sum(1 for d in devices if self.node_of(d) == n)
            for n in {self.node_of(d) for d in devices}
        )
        return LinkSpec(
            bandwidth=self.inter_node.bandwidth / per_node,
            latency=self.inter_node.latency,
        )

    def link_for_group_size(
        self, group_size: int, *, contiguous_start: int = 0
    ) -> LinkSpec:
        """Link class for a contiguous group of ``group_size`` devices.

        The planner places parallel groups on contiguous device ranges;
        this is the fast path that avoids materializing id lists.
        """
        if group_size < 1:
            raise ValueError("group_size must be positive")
        devices = range(contiguous_start, contiguous_start + group_size)
        if devices.stop > self.num_gpus:
            raise ValueError(
                f"group [{devices.start}, {devices.stop}) exceeds cluster "
                f"size {self.num_gpus}"
            )
        return self.group_link(devices)

    def p2p_link(self, src: int, dst: int) -> LinkSpec:
        """Link class for a point-to-point transfer between two GPUs."""
        if self.node_of(src) == self.node_of(dst):
            return self.intra_node
        return self.inter_node

    def describe(self) -> str:
        """One-line human summary."""
        if self.is_heterogeneous:
            names = []
            for spec in self.node_devices:
                if not names or names[-1][0] != spec.name:
                    names.append([spec.name, 1])
                else:
                    names[-1][1] += 1
            device_text = "+".join(
                f"{count}x{name}" for name, count in names
            )
        else:
            device_text = self.device.name
        return (
            f"{self.num_nodes}x{self.gpus_per_node} {device_text} "
            f"(NVLink {self.intra_node.bandwidth / 1e9:.0f} GB/s, "
            f"IB {self.inter_node.bandwidth * 8 / 1e9:.0f} Gb/s)"
        )


def single_node(num_gpus: int = 8, device: DeviceSpec = None) -> ClusterSpec:
    """Convenience constructor for a one-node cluster."""
    return ClusterSpec(
        num_nodes=1,
        gpus_per_node=num_gpus,
        device=device or v100(),
    )


def mixed_cluster(
    node_devices: Sequence[DeviceSpec],
    gpus_per_node: int = 8,
    *,
    reference: Optional[DeviceSpec] = None,
) -> ClusterSpec:
    """A heterogeneous cluster from an explicit per-node device list.

    ``reference`` names the device the profile database is built on
    (defaults to the first node's device).
    """
    specs = tuple(node_devices)
    if not specs:
        raise ValueError("node_devices must be non-empty")
    return ClusterSpec(
        num_nodes=len(specs),
        gpus_per_node=gpus_per_node,
        device=reference or specs[0],
        node_devices=specs,
    )


def paper_cluster(num_gpus: int = 32) -> ClusterSpec:
    """The paper's testbed shape, truncated to ``num_gpus`` devices.

    Uses full 8-GPU nodes when possible; a smaller single node
    otherwise (the paper's 1/4-GPU settings fit one server).
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be positive")
    if num_gpus <= 8:
        return single_node(num_gpus)
    if num_gpus % 8:
        raise ValueError("multi-node clusters must use full 8-GPU nodes")
    return ClusterSpec(num_nodes=num_gpus // 8, gpus_per_node=8)
