"""Random-primitive search: the Heuristic-2 ablation (Exp#5).

Identical machinery to Aceso's search, but primitive/candidate
exploration order is randomized instead of consumption- and
performance-ranked.  The paper runs it three times and compares
convergence trends (Fig. 12).
"""

from __future__ import annotations

from typing import Optional

from ..cluster.topology import ClusterSpec
from ..core.budget import SearchBudget
from ..core.search import AcesoSearch, AcesoSearchOptions, SearchResult
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..perfmodel.model import PerfModel


def random_search(
    graph: OpGraph,
    cluster: ClusterSpec,
    perf_model: PerfModel,
    init_config: ParallelConfig,
    budget: SearchBudget,
    *,
    seed: int = 0,
    options: Optional[AcesoSearchOptions] = None,
) -> SearchResult:
    """One random-order search run (seed selects the shuffle)."""
    base = options or AcesoSearchOptions()
    opts = AcesoSearchOptions(
        max_hops=base.max_hops,
        max_bottlenecks=base.max_bottlenecks,
        top_k=base.top_k,
        enable_finetune=base.enable_finetune,
        use_heuristic2=False,
        seed=seed,
        finetune_split_points=base.finetune_split_points,
        beam_width=base.beam_width,
        max_nodes_per_iteration=base.max_nodes_per_iteration,
    )
    search = AcesoSearch(graph, cluster, perf_model, options=opts)
    return search.run(init_config, budget)
