"""Megatron-LM baseline: global-setting grid search.

Megatron-LM exposes five global knobs — tensor degree ``tp``, data
degree ``dp``, pipeline stages ``pp``, per-GPU microbatch size ``b``,
and a model-wide recomputation flag — shared by every layer.  It has no
automated search, so (exactly as §5 of the paper does) we grid-search
those knobs with Aceso's performance model and keep the best feasible
plan.  The expressiveness gaps vs. Aceso are structural: even stages
only, one (tp, dp) everywhere, all-or-nothing recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..parallel.initializer import split_ops_balanced
from ..parallel.stage import StageConfig
from ..parallel.validation import is_valid
from ..perfmodel.model import PerfModel


@dataclass(frozen=True)
class MegatronPlan:
    """One grid point."""

    tp: int
    dp: int
    pp: int
    microbatch_per_gpu: int
    recompute: bool

    @property
    def aggregated_microbatch(self) -> int:
        return self.microbatch_per_gpu * self.dp


@dataclass
class GridSearchResult:
    """Best plan plus the full evaluated grid."""

    best_config: Optional[ParallelConfig]
    best_plan: Optional[MegatronPlan]
    best_objective: float
    evaluated: int
    table: List[Tuple[MegatronPlan, float]] = field(default_factory=list)


def plan_to_config(
    plan: MegatronPlan, graph: OpGraph, cluster: ClusterSpec
) -> Optional[ParallelConfig]:
    """Materialize a Megatron plan as a :class:`ParallelConfig`.

    Stages split the op chain into ``pp`` spans balanced by *op count*
    (Megatron divides by layer count, not profiled cost).
    """
    devices_per_stage = cluster.num_gpus // plan.pp
    if devices_per_stage * plan.pp != cluster.num_gpus:
        return None
    if plan.tp * plan.dp != devices_per_stage:
        return None
    if plan.pp > graph.num_ops:
        return None
    ones = np.ones(graph.num_ops)
    boundaries = split_ops_balanced(graph, plan.pp, weights=ones)
    stages = [
        StageConfig.uniform(
            boundaries[i],
            boundaries[i + 1],
            devices_per_stage,
            tp=plan.tp,
            recompute=plan.recompute,
        )
        for i in range(plan.pp)
    ]
    config = ParallelConfig(
        stages=stages, microbatch_size=plan.aggregated_microbatch
    )
    if not is_valid(config, graph, cluster):
        return None
    return config


def enumerate_plans(
    graph: OpGraph,
    cluster: ClusterSpec,
    *,
    max_tp: int = 8,
    max_microbatch_per_gpu: int = 16,
) -> List[MegatronPlan]:
    """All grid points with power-of-two degrees filling the cluster."""
    gpus = cluster.num_gpus
    plans = []
    pp = 1
    while pp <= min(gpus, graph.num_ops):
        per_stage = gpus // pp
        if per_stage * pp == gpus:
            tp = 1
            while tp <= min(per_stage, max_tp):
                dp = per_stage // tp
                b = 1
                while (
                    b <= max_microbatch_per_gpu
                    and b * dp <= graph.global_batch_size
                ):
                    if graph.global_batch_size % (b * dp) == 0:
                        for recompute in (False, True):
                            plans.append(
                                MegatronPlan(tp, dp, pp, b, recompute)
                            )
                    b *= 2
                tp *= 2
        pp *= 2
    return plans


def megatron_grid_search(
    graph: OpGraph,
    cluster: ClusterSpec,
    perf_model: PerfModel,
    *,
    max_tp: int = 8,
    max_microbatch_per_gpu: int = 16,
) -> GridSearchResult:
    """Evaluate the full grid; return the best feasible plan."""
    result = GridSearchResult(
        best_config=None,
        best_plan=None,
        best_objective=float("inf"),
        evaluated=0,
    )
    for plan in enumerate_plans(
        graph,
        cluster,
        max_tp=max_tp,
        max_microbatch_per_gpu=max_microbatch_per_gpu,
    ):
        config = plan_to_config(plan, graph, cluster)
        if config is None:
            continue
        objective = perf_model.objective(config)
        result.evaluated += 1
        result.table.append((plan, objective))
        if objective < result.best_objective:
            result.best_objective = objective
            result.best_config = config
            result.best_plan = plan
    return result
