"""Explicit dynamic-programming solver (the Exp#4 comparison point).

A mathematical-programming search over the same mechanism space as
Aceso: optimal contiguous op partitions over power-of-two device
meshes, per-stage uniform (tp, dp), global microbatch size, and
per-stage all-or-nothing recomputation — with the same pruning the
paper applied (bounded microbatch sizes, bounded tp).  The solver
reports the number of *complete configurations its recurrence covers*
(the path count through the DP table), which is the "explored
configurations" metric Figure 10a compares against Aceso's estimate
count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..parallel.stage import StageConfig
from ..parallel.validation import is_valid
from ..perfmodel.model import PerfModel


@dataclass
class DPSolverOptions:
    """Pruning knobs (mirrors the paper's DP implementation notes)."""

    microbatch_sizes: Optional[List[int]] = None
    max_tp: int = 8
    max_stages: int = 8
    min_ops_per_stage: int = 1
    in_flight_estimate: int = 4
    unit: str = "op"  # "op" or "layer"


@dataclass
class DPSolverResult:
    """Solver outcome plus exploration accounting."""

    best_config: Optional[ParallelConfig]
    best_objective: float
    explored_configs: float
    table_evaluations: int
    wall_seconds: float


class _UnitCoster:
    """Prefix-sum machinery over partition units for one (mbs, rc)."""

    def __init__(
        self,
        graph: OpGraph,
        perf_model: PerfModel,
        units: List[Tuple[int, int]],
        microbatch: int,
        recompute: bool,
        tp_values: List[int],
    ) -> None:
        arrays = graph.arrays
        pg = perf_model.profiled
        elem = graph.elem_bytes
        idx = np.arange(graph.num_ops)
        dim0 = np.zeros(graph.num_ops, dtype=np.int64)
        self.units = units
        self.microbatch = microbatch
        self.recompute = recompute
        self.time_fixed: Dict[int, np.ndarray] = {}
        self.time_slope: Dict[int, np.ndarray] = {}
        self.weight_bytes: Dict[int, np.ndarray] = {}
        self.act_slope: Dict[int, np.ndarray] = {}

        def unit_prefix(per_op: np.ndarray) -> np.ndarray:
            sums = np.array(
                [per_op[a:b].sum() for a, b in units], dtype=np.float64
            )
            return np.concatenate([[0.0], np.cumsum(sums)])

        for tp in tp_values:
            lv = tp.bit_length() - 1
            etp = np.minimum(tp, arrays.max_tp)
            fixed = pg.fwd_fixed[idx, lv, dim0] + pg.bwd_fixed[idx, lv, dim0]
            slope = pg.fwd_slope[idx, lv, dim0] + pg.bwd_slope[idx, lv, dim0]
            if recompute:
                fixed = fixed + pg.fwd_fixed[idx, lv, dim0]
                slope = slope + pg.fwd_slope[idx, lv, dim0]
            state_bytes = (
                arrays.params
                * (elem + graph.optimizer_bytes_per_param)
                / etp
            )
            act = arrays.saved_numel * elem / etp
            self.time_fixed[tp] = unit_prefix(fixed)
            self.time_slope[tp] = unit_prefix(slope)
            self.weight_bytes[tp] = unit_prefix(state_bytes)
            self.act_slope[tp] = unit_prefix(act)

    def stage_cost(
        self,
        unit_lo: int,
        unit_hi: int,
        devices: int,
        tp: int,
        memory_limit: float,
        in_flight: int,
    ) -> float:
        """Per-microbatch stage latency, or +inf when infeasible."""
        dp = devices // tp
        if self.microbatch % dp:
            return float("inf")
        samples = self.microbatch / dp
        weights = self.weight_bytes[tp][unit_hi] - self.weight_bytes[tp][unit_lo]
        act = (
            self.act_slope[tp][unit_hi] - self.act_slope[tp][unit_lo]
        ) * samples
        if self.recompute:
            first = (
                self.act_slope[tp][unit_lo + 1] - self.act_slope[tp][unit_lo]
            ) * samples
            act = first
        if weights + act * in_flight > memory_limit:
            return float("inf")
        fixed = self.time_fixed[tp][unit_hi] - self.time_fixed[tp][unit_lo]
        slope = self.time_slope[tp][unit_hi] - self.time_slope[tp][unit_lo]
        return fixed + samples * slope


def _units(graph: OpGraph, unit: str) -> List[Tuple[int, int]]:
    if unit == "op":
        return [(i, i + 1) for i in range(graph.num_ops)]
    if unit != "layer":
        raise ValueError(f"unknown unit {unit!r}")
    spans = list(graph.layer_spans) or [(i, i + 1) for i in range(graph.num_ops)]
    spans[0] = (0, spans[0][1])
    spans[-1] = (spans[-1][0], graph.num_ops)
    fixed = []
    cursor = 0
    for _, end in spans:
        fixed.append((cursor, max(end, cursor + 1)))
        cursor = fixed[-1][1]
    fixed[-1] = (fixed[-1][0], graph.num_ops)
    return fixed


def dp_solve(
    graph: OpGraph,
    cluster: ClusterSpec,
    perf_model: PerfModel,
    *,
    options: Optional[DPSolverOptions] = None,
) -> DPSolverResult:
    """Run the DP over every (microbatch, recompute) combination."""
    opts = options or DPSolverOptions()
    start_time = time.monotonic()
    units = _units(graph, opts.unit)
    num_units = len(units)
    gpus = cluster.num_gpus
    tp_values = []
    tp = 1
    while tp <= min(opts.max_tp, gpus):
        tp_values.append(tp)
        tp *= 2
    microbatches = opts.microbatch_sizes or _default_microbatches(graph, gpus)
    memory_limit = float(cluster.device.memory_bytes)

    best_config = None
    best_objective = float("inf")
    explored = 0.0
    evaluations = 0
    for mbs in microbatches:
        for recompute in (False, True):
            coster = _UnitCoster(
                graph, perf_model, units, mbs, recompute, tp_values
            )
            outcome = _run_dp(
                coster, num_units, gpus, tp_values, memory_limit, opts
            )
            if outcome is None:
                continue
            stages, paths, evals = outcome
            explored += paths
            evaluations += evals
            config = _materialize(graph, cluster, units, stages, mbs, recompute)
            if config is None:
                continue
            objective = perf_model.objective(config)
            if objective < best_objective:
                best_objective = objective
                best_config = config
    return DPSolverResult(
        best_config=best_config,
        best_objective=best_objective,
        explored_configs=explored,
        table_evaluations=evaluations,
        wall_seconds=time.monotonic() - start_time,
    )


def _run_dp(
    coster: _UnitCoster,
    num_units: int,
    gpus: int,
    tp_values: List[int],
    memory_limit: float,
    opts: DPSolverOptions,
):
    """DP over (units consumed, gpus consumed, stages used).

    Returns the best stage list, the number of complete configurations
    the recurrence covered (path count), and table evaluations.
    """
    INF = float("inf")
    gpu_options = []
    k = 1
    while k <= gpus:
        gpu_options.append(k)
        k *= 2
    best: Dict[Tuple[int, int, int], float] = {(0, 0, 0): 0.0}
    paths: Dict[Tuple[int, int, int], float] = {(0, 0, 0): 1.0}
    parent: Dict[Tuple[int, int, int], tuple] = {}
    evaluations = 0
    max_span = max(
        opts.min_ops_per_stage, -(-num_units // 1)
    )
    for i in range(num_units):
        for g_used in range(gpus + 1):
            for s_used in range(opts.max_stages):
                state = (i, g_used, s_used)
                if state not in best:
                    continue
                base = best[state]
                base_paths = paths[state]
                hi_limit = min(num_units, i + max_span)
                for j in range(i + opts.min_ops_per_stage, hi_limit + 1):
                    for devices in gpu_options:
                        if g_used + devices > gpus:
                            break
                        branch_count = 0
                        branch_best = INF
                        branch_tp = None
                        for tp in tp_values:
                            if tp > devices:
                                break
                            cost = coster.stage_cost(
                                i, j, devices, tp, memory_limit,
                                opts.in_flight_estimate,
                            )
                            evaluations += 1
                            if cost < INF:
                                branch_count += 1
                            if cost < branch_best:
                                branch_best = cost
                                branch_tp = tp
                        if branch_tp is None:
                            continue
                        nxt = (j, g_used + devices, s_used + 1)
                        candidate = max(base, branch_best)
                        if candidate < best.get(nxt, INF):
                            best[nxt] = candidate
                            parent[nxt] = (state, (i, j, devices, branch_tp))
                        paths[nxt] = paths.get(nxt, 0.0) + (
                            base_paths * branch_count
                        )
    goal_states = [
        s for s in best
        if s[0] == num_units and s[1] == gpus and best[s] < INF
    ]
    if not goal_states:
        return None
    goal = min(goal_states, key=lambda s: best[s])
    total_paths = sum(
        paths[s] for s in paths if s[0] == num_units and s[1] == gpus
    )
    stages = []
    state = goal
    while state != (0, 0, 0):
        state, key = parent[state]
        stages.append(key)
    stages.reverse()
    return stages, total_paths, evaluations


def _default_microbatches(graph: OpGraph, gpus: int) -> List[int]:
    values = []
    m = 1
    while m <= min(graph.global_batch_size, 8 * gpus):
        if graph.global_batch_size % m == 0:
            values.append(m)
        m *= 2
    return values


def _materialize(
    graph: OpGraph,
    cluster: ClusterSpec,
    units: List[Tuple[int, int]],
    stages: List[Tuple[int, int, int, int]],
    microbatch: int,
    recompute: bool,
) -> Optional[ParallelConfig]:
    stage_configs = []
    for unit_lo, unit_hi, devices, tp in stages:
        start = units[unit_lo][0]
        end = units[unit_hi - 1][1]
        stage_configs.append(
            StageConfig.uniform(
                start, end, devices, tp=tp, recompute=recompute
            )
        )
    config = ParallelConfig(
        stages=stage_configs, microbatch_size=microbatch
    )
    if not is_valid(config, graph, cluster):
        return None
    return config
