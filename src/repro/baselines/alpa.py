"""Alpa-style baseline: two-level mathematical-programming search.

Reproduces Alpa's structure as the paper describes it (§2.2, §5.1):

* operators are first fused into ``l`` *layer groups* (a grid-searched
  hyper-parameter, like Alpa's manual ``l``);
* an **inter-op** dynamic program partitions the groups into pipeline
  stages over power-of-two device meshes, minimizing the slowest
  stage;
* an **intra-op** solver picks each stage's (dp, tp) — using Alpa's
  documented simplification: operator *compute-time differences are
  ignored* and only communication cost is compared, which is exactly
  the gap §5.1 credits for part of Aceso's wins;
* microbatch size and model-wide recomputation are grid-searched
  outside the solver (Alpa sets them manually).

**Search-cost substitution**: real Alpa spends its hours repeatedly
compiling and profiling XLA stage candidates.  Without GPUs or XLA we
charge a fixed simulated cost per unique (span, mesh, tp) candidate —
``per_compile_seconds`` — and report the total as the baseline's search
cost (Fig. 8/9).  The count of candidates is measured, not modelled.
Alpa's reported compilation failure beyond 64 layers (Exp#3) is
emulated by :class:`AlpaCompilationError` at the same threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..parallel.config import ParallelConfig
from ..parallel.stage import StageConfig
from ..parallel.validation import is_valid
from ..perfmodel.model import PerfModel


class AlpaCompilationError(RuntimeError):
    """Raised when the emulated XLA compilation limit is exceeded."""


@dataclass
class AlpaOptions:
    """Knobs of the baseline search."""

    layer_group_counts: Optional[List[int]] = None
    microbatch_sizes: Optional[List[int]] = None
    max_tp: int = 8
    per_compile_seconds: float = 0.09
    max_supported_layers: int = 64
    ilp_seconds_per_candidate: float = 1e-4


@dataclass
class AlpaResult:
    """Best plan found plus the simulated search-cost accounting."""

    best_config: Optional[ParallelConfig]
    best_objective: float
    compilations: int
    simulated_search_seconds: float
    evaluated_plans: int
    table: List[Tuple[str, float]] = field(default_factory=list)


def _group_layers(graph: OpGraph, num_groups: int) -> List[Tuple[int, int]]:
    """Fuse the graph's layer spans into ``num_groups`` op spans."""
    spans = graph.layer_spans or [(i, i + 1) for i in range(graph.num_ops)]
    # Extend the first/last spans to absorb pre/post ops (embeddings,
    # heads, losses) exactly like Alpa's layer clustering does.
    spans = list(spans)
    spans[0] = (0, spans[0][1])
    spans[-1] = (spans[-1][0], graph.num_ops)
    num_groups = max(1, min(num_groups, len(spans)))
    edges = np.linspace(0, len(spans), num_groups + 1).astype(int)
    groups = []
    for a, b in zip(edges[:-1], edges[1:]):
        if b > a:
            groups.append((spans[a][0], spans[b - 1][1]))
    # Make the groups contiguous and covering.
    fixed = []
    cursor = 0
    for start, end in groups:
        fixed.append((cursor, max(end, cursor + 1)))
        cursor = fixed[-1][1]
    fixed[-1] = (fixed[-1][0], graph.num_ops)
    return fixed


class _StageCoster:
    """Vectorized stage-candidate costing over one layer grouping."""

    def __init__(
        self,
        graph: OpGraph,
        perf_model: PerfModel,
        groups: List[Tuple[int, int]],
        microbatch: int,
        recompute: bool,
        max_tp: int,
    ) -> None:
        self.groups = groups
        self.microbatch = microbatch
        self.num_microbatches = graph.global_batch_size // microbatch
        self.recompute = recompute
        arrays = graph.arrays
        pg = perf_model.profiled
        elem = graph.elem_bytes
        n = graph.num_ops
        idx = np.arange(n)
        dim0 = np.zeros(n, dtype=np.int64)
        levels = pg.num_tp_levels
        self.tp_values = [
            1 << lv for lv in range(levels) if (1 << lv) <= max_tp
        ]
        # Per-op prefix sums of fwd+bwd time at each tp level, taking
        # samples as a linear argument: time = fixed + samples * slope.
        self.fixed = {}
        self.slope = {}
        self.comm_bytes = {}
        self.state_bytes = {}
        self.act_bytes = {}
        for lv, tp in enumerate(self.tp_values):
            fixed = pg.fwd_fixed[idx, lv, dim0] + pg.bwd_fixed[idx, lv, dim0]
            slope = pg.fwd_slope[idx, lv, dim0] + pg.bwd_slope[idx, lv, dim0]
            if recompute:
                fixed = fixed + pg.fwd_fixed[idx, lv, dim0]
                slope = slope + pg.fwd_slope[idx, lv, dim0]
            comm = (
                (arrays.fwd_comm_numel[idx, 0] + arrays.bwd_comm_numel[idx, 0])
                * elem
            )
            etp = np.minimum(tp, arrays.max_tp)
            state = (
                arrays.params * (elem + graph.optimizer_bytes_per_param) / etp
            )
            act = arrays.saved_numel * elem / etp
            self.fixed[tp] = np.concatenate([[0.0], np.cumsum(fixed)])
            self.slope[tp] = np.concatenate([[0.0], np.cumsum(slope)])
            self.comm_bytes[tp] = np.concatenate([[0.0], np.cumsum(comm)])
            self.state_bytes[tp] = np.concatenate([[0.0], np.cumsum(state)])
            self.act_bytes[tp] = np.concatenate([[0.0], np.cumsum(act)])
        params = arrays.params * elem
        self.param_bytes = np.concatenate([[0.0], np.cumsum(params)])
        self.memory_limit = float(perf_model.memory_limit)
        self._ar_lat = perf_model._ar_lat
        self._ar_ibw = perf_model._ar_ibw

    def choose_tp(self, group_lo: int, group_hi: int, devices: int) -> int:
        """Alpa's simplified intra-op pick: communication only.

        Compute-time differences between partition choices are treated
        as zero (the paper's description of Alpa's intra-stage
        estimator), so the chooser minimizes tp-collective traffic plus
        gradient-sync cost alone.
        """
        lo = self.groups[group_lo][0]
        hi = self.groups[group_hi - 1][1]
        best_tp, best_comm = 1, float("inf")
        for tp in self.tp_values:
            if tp > devices:
                break
            dp = devices // tp
            samples = self.microbatch / dp
            comm = 0.0
            if tp > 1:
                lv = tp.bit_length() - 1
                traffic = (
                    (self.comm_bytes[tp][hi] - self.comm_bytes[tp][lo])
                    * samples
                    * self.num_microbatches  # per-iteration traffic
                )
                comm += traffic * self._ar_ibw[lv]
            if dp > 1:
                lv = dp.bit_length() - 1
                grads = (self.param_bytes[hi] - self.param_bytes[lo]) / tp
                comm += grads * self._ar_ibw[lv]
            if comm < best_comm:
                best_tp, best_comm = tp, comm
        return best_tp

    def stage_time(
        self,
        group_lo: int,
        group_hi: int,
        devices: int,
        tp: int,
        *,
        in_flight: int = 4,
    ) -> float:
        """Per-microbatch latency, or +inf when the stage can't fit.

        The memory filter uses a conservative in-flight estimate (the
        final stage index is unknown inside the DP), exactly the kind
        of bound real Alpa's memory constraint applies per submesh.
        """
        lo = self.groups[group_lo][0]
        hi = self.groups[group_hi - 1][1]
        dp = devices // tp
        samples = self.microbatch / dp
        state = self.state_bytes[tp][hi] - self.state_bytes[tp][lo]
        if self.recompute:
            act = (
                self.act_bytes[tp][lo + 1] - self.act_bytes[tp][lo]
            ) * samples
        else:
            act = (self.act_bytes[tp][hi] - self.act_bytes[tp][lo]) * samples
        if state + act * min(in_flight, self.num_microbatches) > self.memory_limit:
            return float("inf")
        fixed = self.fixed[tp][hi] - self.fixed[tp][lo]
        slope = self.slope[tp][hi] - self.slope[tp][lo]
        return fixed + samples * slope


def _inter_op_dp(
    coster: _StageCoster,
    num_groups: int,
    num_gpus: int,
    compiled: Dict[Tuple[int, int, int, int], float],
) -> Optional[List[Tuple[int, int, int, int]]]:
    """DP over (groups consumed, gpus consumed).

    Minimizes the 1F1B pipeline objective
    ``sum_i t_i + (N - 1) * max_i t_i`` that Alpa's inter-op level
    optimizes.  The max term makes the problem non-Markovian, so the
    state keeps the best (total, sum, max) triple — a standard
    approximation of Alpa's t_max enumeration.

    Returns the stage list as (group_lo, group_hi, devices, tp).
    """
    INF = float("inf")
    num_mb = coster.num_microbatches
    gpu_options = []
    k = 1
    while k <= num_gpus:
        gpu_options.append(k)
        k *= 2
    # state -> (total, sum, max)
    best = {(0, 0): (0.0, 0.0, 0.0)}
    parent = {}
    for i in range(num_groups):
        for used in list(best):
            if used[0] != i:
                continue
            _, base_sum, base_max = best[used]
            for j in range(i + 1, num_groups + 1):
                for devices in gpu_options:
                    if used[1] + devices > num_gpus:
                        break
                    tp = coster.choose_tp(i, j, devices)
                    key = (i, j, devices, tp)
                    if key not in compiled:
                        compiled[key] = coster.stage_time(i, j, devices, tp)
                    t = compiled[key]
                    if t == INF:
                        continue
                    new_sum = base_sum + t
                    new_max = max(base_max, t)
                    total = new_sum + (num_mb - 1) * new_max
                    state = (j, used[1] + devices)
                    if total < best.get(state, (INF,))[0]:
                        best[state] = (total, new_sum, new_max)
                        parent[state] = (used, key)
    goal = (num_groups, num_gpus)
    if goal not in best:
        return None
    stages = []
    state = goal
    while state != (0, 0):
        state, key = parent[state]
        stages.append(key)
    stages.reverse()
    return stages


def alpa_search(
    graph: OpGraph,
    cluster: ClusterSpec,
    perf_model: PerfModel,
    *,
    options: Optional[AlpaOptions] = None,
) -> AlpaResult:
    """Run the full two-level search over the (l, b, recompute) grid."""
    opts = options or AlpaOptions()
    num_layers = max(1, graph.num_layers)
    if num_layers > opts.max_supported_layers:
        raise AlpaCompilationError(
            f"emulated XLA compilation failure: {num_layers} layers exceed "
            f"the supported {opts.max_supported_layers} (Exp#3 behaviour)"
        )
    group_counts = opts.layer_group_counts or sorted(
        {
            max(1, num_layers),
            max(1, num_layers // 2),
            max(1, num_layers // 4),
        }
    )
    microbatches = opts.microbatch_sizes or _default_microbatches(
        graph, cluster
    )

    result = AlpaResult(
        best_config=None,
        best_objective=float("inf"),
        compilations=0,
        simulated_search_seconds=0.0,
        evaluated_plans=0,
    )
    for l in group_counts:
        groups = _group_layers(graph, l)
        for mbs in microbatches:
            for recompute in (False, True):
                compiled: Dict[Tuple[int, int, int, int], float] = {}
                coster = _StageCoster(
                    graph, perf_model, groups, mbs, recompute, opts.max_tp
                )
                stages = _inter_op_dp(
                    coster, len(groups), cluster.num_gpus, compiled
                )
                result.compilations += len(compiled)
                result.simulated_search_seconds += (
                    len(compiled) * opts.per_compile_seconds
                    + len(compiled) * opts.ilp_seconds_per_candidate
                )
                if stages is None:
                    continue
                config = _materialize(
                    graph, cluster, groups, stages, mbs, recompute
                )
                if config is None:
                    continue
                objective = perf_model.objective(config)
                result.evaluated_plans += 1
                result.table.append(
                    (f"l={l} mbs={mbs} rc={recompute}", objective)
                )
                if objective < result.best_objective:
                    result.best_objective = objective
                    result.best_config = config
    return result


def _default_microbatches(graph: OpGraph, cluster: ClusterSpec) -> List[int]:
    values = []
    m = 1
    while m <= min(graph.global_batch_size, 8 * cluster.num_gpus):
        if graph.global_batch_size % m == 0:
            values.append(m)
        m *= 2
    return values


def _materialize(
    graph: OpGraph,
    cluster: ClusterSpec,
    groups: List[Tuple[int, int]],
    stages: List[Tuple[int, int, int, int]],
    microbatch: int,
    recompute: bool,
) -> Optional[ParallelConfig]:
    stage_configs = []
    for group_lo, group_hi, devices, tp in stages:
        start = groups[group_lo][0]
        end = groups[group_hi - 1][1]
        dp = devices // tp
        if microbatch % dp:
            return None
        stage_configs.append(
            StageConfig.uniform(
                start, end, devices, tp=tp, recompute=recompute
            )
        )
    config = ParallelConfig(
        stages=stage_configs, microbatch_size=microbatch
    )
    if not is_valid(config, graph, cluster):
        return None
    return config
