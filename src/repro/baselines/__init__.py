"""Baseline systems: Megatron-LM grid, Alpa-style solver, DP, random."""

from .alpa import (
    AlpaCompilationError,
    AlpaOptions,
    AlpaResult,
    alpa_search,
)
from .dp_solver import DPSolverOptions, DPSolverResult, dp_solve
from .megatron import (
    GridSearchResult,
    MegatronPlan,
    enumerate_plans,
    megatron_grid_search,
    plan_to_config,
)
from .random_search import random_search

__all__ = [
    "AlpaCompilationError",
    "AlpaOptions",
    "AlpaResult",
    "DPSolverOptions",
    "DPSolverResult",
    "GridSearchResult",
    "MegatronPlan",
    "alpa_search",
    "dp_solve",
    "enumerate_plans",
    "megatron_grid_search",
    "plan_to_config",
    "random_search",
]
