"""Typed diagnostics shared by every analyzer tier.

A :class:`Diagnostic` is one violated invariant: a stable code from the
``ACE***`` taxonomy, a severity, a human message, an optional location
and fix hint.  Analyzers *collect* diagnostics instead of raising on
the first one; callers that want raise-on-first semantics (the legacy
``validate_config`` contract) wrap the first error themselves.

Code taxonomy:

* ``ACE1xx`` — structural configuration invariants (§3.1/§5.1).
* ``ACE2xx`` — feasibility: Eq. 1 memory vs. device capacity,
  primitive legality, request-level lower bounds.
* ``ACE3xx`` — on-disk artifacts: plans, plan-cache entries,
  checkpoints, request journals, telemetry run logs.
* ``ACE4xx`` — fleet artifacts: ``*.fleet.json`` state files and the
  cross-event ``fleet.*`` invariants of router run logs.
* ``ACE9xx`` — codebase invariants enforced by the Tier-B ``ast`` lint.

Codes are append-only: a shipped code never changes meaning, so tests,
CI filters, and admission clients can match on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

ERROR = "error"
WARNING = "warning"

_SEVERITY_RANK = {WARNING: 1, ERROR: 2}

#: Stable code -> short title.  The single source of truth for which
#: codes exist; ``Diagnostic`` refuses codes not registered here.
CODES: Dict[str, str] = {
    # -- ACE1xx: structural configuration invariants ------------------
    "ACE101": "stage span does not start where the previous one ended",
    "ACE102": "stage has an empty op span",
    "ACE103": "stage spans do not cover the op graph exactly",
    "ACE110": "stage device count is not a power of two",
    "ACE111": "stage device counts do not sum to the cluster size",
    "ACE120": "op has non-positive tp or dp",
    "ACE121": "op has non-power-of-two tp or dp",
    "ACE122": "op tp * dp does not equal the stage device count",
    "ACE123": "op tp exceeds the cluster size",
    "ACE130": "op has negative tp_dim",
    "ACE131": "op tp_dim indexes beyond its partition options",
    "ACE140": "microbatch size does not divide the global batch",
    "ACE141": "microbatch size not divisible by an op's dp",
    # -- ACE2xx: feasibility ------------------------------------------
    "ACE201": "stage peak memory (Eq. 1) exceeds device capacity",
    "ACE202": "model weight+optimizer state cannot fit the cluster",
    "ACE203": "requested cluster size is not constructible",
    "ACE204": "requested model is not in the registry",
    "ACE210": "unknown resource-adjustment primitive",
    "ACE211": "primitive has no registered applier",
    "ACE212": "unknown search strategy",
    "ACE213": "unknown search-strategy or budget keyword argument",
    "ACE220": "surviving devices exceed the usable power-of-two snap",
    "ACE221": "no devices survive the fault plan",
    # -- ACE3xx: on-disk artifacts ------------------------------------
    "ACE301": "artifact is not readable JSON",
    "ACE302": "plan format_version is unsupported",
    "ACE303": "plan JSON violates the serialization schema",
    "ACE310": "plan-cache entry violates the cache schema",
    "ACE311": "plan-cache filename is not a request fingerprint",
    "ACE320": "checkpoint is corrupt or not readable JSON",
    "ACE321": "checkpoint format_version is unsupported",
    "ACE322": "checkpoint JSON violates the checkpoint schema",
    "ACE323": "checkpoint cross-field state is inconsistent",
    "ACE330": "journaled request violates the PlanRequest schema",
    "ACE331": "journal filename does not match the request fingerprint",
    "ACE340": "run log line is not readable JSON",
    "ACE341": "run log event violates the event schema",
    "ACE342": "run log event has an unknown kind",
    "ACE343": "run log event name is not in the telemetry registry",
    "ACE350": "churn timeline is not readable or violates the schema",
    "ACE351": "churn timeline format_version is unsupported",
    "ACE352": "churn timeline events are not time-ordered",
    "ACE353": "churn timeline event has an invalid kind or payload",
    "ACE354": "churn timeline preempts every node",
    # -- ACE4xx: fleet artifacts --------------------------------------
    "ACE401": "fleet state is not readable or violates the schema",
    "ACE402": "fleet state declares duplicate replica names",
    "ACE403": "fleet config value is out of range",
    "ACE410": "routed fleet request has no terminal completion event",
    "ACE411": "fleet event references an undeclared replica",
    # -- ACE9xx: codebase invariants ----------------------------------
    "ACE901": "nondeterministic call in a deterministic module",
    "ACE902": "telemetry emit with a non-literal event name",
    "ACE903": "telemetry emit with an unregistered event name",
    "ACE904": "dataclass defines to_json without a matching from_json",
    "ACE905": "bare except clause",
    # -- ACE92x: Tier-C determinism taint -----------------------------
    "ACE920": "nondeterministic value reaches a serialized JSON artifact",
    "ACE921": "nondeterministic value reaches a digest or fingerprint",
    "ACE922": "nondeterministic value reaches a telemetry event payload",
    # -- ACE93x: Tier-C concurrency discipline ------------------------
    "ACE930": "off-lock write to a lock-protected attribute from "
              "thread-reachable code",
    "ACE931": "blocking call while holding a lock",
    "ACE932": "fork or worker-pool start after a non-daemon thread "
              "was started",
    "ACE933": "non-daemon thread started but never joined",
    "ACE934": "worker pool or executor without guaranteed shutdown",
    "ACE935": "unsynchronized read-modify-write on a shared attribute",
    "ACE936": "module global mutated without synchronization",
    # -- ACE94x: Tier-C resource lifecycle ----------------------------
    "ACE940": "file opened outside with and not closed on every path",
    "ACE941": "socket opened outside with and not closed on every path",
    "ACE942": "temporary file or fd not cleaned up on every path",
}


@dataclass(frozen=True)
class Diagnostic:
    """One violated invariant, with a stable machine-matchable code."""

    code: str
    message: str
    severity: str = ERROR
    location: str = ""
    hint: str = ""
    attrs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def title(self) -> str:
        return CODES[self.code]

    def to_json(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.location:
            data["location"] = self.location
        if self.hint:
            data["hint"] = self.hint
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        return data

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "Diagnostic":
        return cls(
            code=str(data["code"]),
            message=str(data["message"]),
            severity=str(data.get("severity", ERROR)),
            location=str(data.get("location", "")),
            hint=str(data.get("hint", "")),
            attrs=dict(data.get("attrs", {})),
        )

    def render(self) -> str:
        """One-line human rendering (``repro-lint --format text``)."""
        parts = [f"{self.code}", self.severity]
        if self.location:
            parts.append(self.location)
        line = " ".join(parts) + f": {self.message}"
        if self.hint:
            line += f"  [hint: {self.hint}]"
        return line


def sort_key(diag: Diagnostic):
    """Total order over diagnostics: (path, line, col, code, message).

    Analyzer scheduling must never leak into report ordering —
    ``repro-lint -o report.json`` over the same inputs is byte-identical
    no matter which tier or analyzer produced each finding first.
    Location-less diagnostics (config/request analysis) sort before any
    located one on the empty path, then by code.
    """
    location = diag.location
    path, line, col = location, -1, -1
    head, sep, tail = path.rpartition(":")
    if sep and tail.isdigit():
        path, last = head, int(tail)
        head, sep, tail = path.rpartition(":")
        if sep and tail.isdigit():
            path, line, col = head, int(tail), last
        else:
            line = last
    return (path, line, col, diag.code, diag.message, diag.severity)


def sorted_diagnostics(
    diagnostics: Iterable[Diagnostic],
) -> List[Diagnostic]:
    """``diagnostics`` under the total :func:`sort_key` order."""
    return sorted(diagnostics, key=sort_key)


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[str]:
    """Highest severity present, or ``None`` for a clean result."""
    best: Optional[str] = None
    for diag in diagnostics:
        if best is None or _SEVERITY_RANK[diag.severity] > _SEVERITY_RANK[best]:
            best = diag.severity
    return best


def errors_only(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Just the error-severity diagnostics."""
    return [d for d in diagnostics if d.severity == ERROR]
