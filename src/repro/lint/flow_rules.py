"""Tier-C rule packs: determinism taint, concurrency, resources.

Three packs over the :mod:`repro.lint.flow` machinery, each emitting
the same :class:`~repro.lint.diagnostics.Diagnostic` core as Tiers A/B:

* **ACE92x — determinism taint.**  Runs the
  :class:`~repro.lint.flow.TaintEngine` over every function with call
  summaries enabled and reports each sink a nondeterministic value
  reaches: JSON serialization (``json.dump``/``write_json_atomic``/
  ``to_json`` returns) is ACE920, digests and fingerprints are ACE921,
  telemetry payloads are ACE922.
* **ACE93x — concurrency discipline.**  Per class: the
  lock-protected attribute set is inferred from ``with self._lock:``
  bodies, thread-entry methods from ``Thread(target=self.m)`` /
  ``executor.submit(self.m)`` call sites, and the intra-class call
  closure from entries defines *thread-reachable* code.  Off-lock
  writes to protected attributes (ACE930) and off-lock
  read-modify-writes on shared attributes (ACE935) are flagged only in
  thread-reachable methods; blocking calls while any inferred lock is
  held (ACE931), forks after non-daemon thread starts (ACE932),
  unjoined non-daemon threads (ACE933), pools without a guaranteed
  shutdown (ACE934), and off-lock module-global mutation (ACE936)
  complete the pack.
* **ACE94x — resource lifecycle.**  Files/sockets/tempfiles acquired
  outside ``with`` must escape the function (returned, stored on
  ``self``, handed to a consuming call like ``os.fdopen``) or be
  released inside a ``finally`` block.

Diagnostic **messages never contain line numbers** — a baseline entry
is the ``(path, code, message)`` triple, and it must survive unrelated
edits shifting line numbers; the line lives in ``location`` only.

Known false-negative limits (documented, deliberate):

* Call resolution is lexical — aliased callables, callbacks, and
  ``getattr`` dispatch are invisible.
* Taint summaries give one level of interprocedural reach; three-deep
  helper chains can launder taint.
* Blocking-call detection under a lock is direct-call only.
* A pool or thread stored on ``self`` shifts lifecycle responsibility
  to the owning class and is exempt from ACE933/ACE934.
* ``time.monotonic``/``perf_counter`` are *not* taint sources:
  durations in artifacts are accepted nondeterminism (run logs record
  elapsed time by design).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from .diagnostics import Diagnostic, sorted_diagnostics
from .flow import (
    ClassModel,
    FunctionModel,
    ModuleModel,
    Project,
    TaintEngine,
    real_kinds,
)
from .source import filter_suppressed

# ---------------------------------------------------------------------
# ACE92x: determinism taint
# ---------------------------------------------------------------------
_SINK_HINTS = {
    "ACE920": "sort/seed the value or move it out of the payload",
    "ACE921": "digests must be computed over deterministic bytes only",
    "ACE922": "emit monotonic/derived values, not wall-clock or RNG",
}


def _taint_pack(
    project: Project, module: ModuleModel
) -> List[Diagnostic]:
    out: List[Diagnostic] = []

    for qualname in module.functions:
        fn = module.functions[qualname]

        def report(
            code: str, node: ast.AST, kinds: FrozenSet[str], via: str
        ) -> None:
            kinds_str = ", ".join(sorted(real_kinds(kinds)))
            if not kinds_str:
                return
            out.append(Diagnostic(
                code,
                f"{kinds_str} value reaches {via} in {fn.qualname}",
                location=_loc(module, node),
                hint=_SINK_HINTS[code],
            ))

        TaintEngine(project, module, fn, report=report).run({})
    return out


def _loc(module: ModuleModel, node: ast.AST) -> str:
    col = getattr(node, "col_offset", 0) + 1
    return f"{module.filename}:{node.lineno}:{col}"


# ---------------------------------------------------------------------
# ACE93x: concurrency discipline
# ---------------------------------------------------------------------
#: Resolved call paths that block the calling thread.
_BLOCKING_PATHS = frozenset((
    "time.sleep",
    "socket.create_connection",
    "select.select",
    "os.waitpid",
))
_BLOCKING_PREFIXES = ("subprocess.",)
#: Attribute names that block when called on a connection-ish object.
_BLOCKING_ATTRS = frozenset((
    "recv", "sendall", "accept", "makefile",
))


def _protected_attrs(cls: ClassModel) -> Tuple[str, ...]:
    """Attributes assigned under ``with self.<lock>`` outside __init__."""
    lock_attrs = set(cls.lock_attrs)
    protected: List[str] = []
    for name in cls.methods:
        if name == "__init__":
            continue
        fn = cls.methods[name]
        for node in ast.walk(fn.node):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not _holds_self_lock(node, lock_attrs):
                continue
            for inner in ast.walk(node):
                target = None
                if isinstance(inner, ast.Assign) and inner.targets:
                    target = inner.targets[0]
                elif isinstance(inner, (ast.AugAssign, ast.AnnAssign)):
                    target = inner.target
                attr = _self_attr(target)
                if (
                    attr is not None
                    and attr not in lock_attrs
                    and attr not in protected
                ):
                    protected.append(attr)
    return tuple(protected)


def _holds_self_lock(node, lock_attrs: Set[str]) -> bool:
    for item in node.items:
        ctx = item.context_expr
        if (
            isinstance(ctx, ast.Attribute)
            and isinstance(ctx.value, ast.Name)
            and ctx.value.id == "self"
            and ctx.attr in lock_attrs
        ):
            return True
    return False


def _self_attr(node) -> Optional[str]:
    """Attribute name for a ``self.X`` or ``self.X[...]`` target."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _thread_entries(module: ModuleModel, cls: ClassModel) -> Tuple[str, ...]:
    """Methods of ``cls`` that run on worker threads.

    ``threading.Thread(target=self.m)``, ``Timer(..., self.m)``,
    ``executor.submit(self.m, ...)`` anywhere in the class body, plus
    ``run`` when the class subclasses ``threading.Thread``.
    """
    entries: List[str] = []

    def add(expr) -> None:
        attr = _self_attr(expr)
        if attr is not None and attr in cls.methods and attr not in entries:
            entries.append(attr)

    for node in ast.walk(cls.node):
        if not isinstance(node, ast.Call):
            continue
        ctor = module.imports.resolve(node.func)
        if ctor in ("threading.Thread", "threading.Timer"):
            for kw in node.keywords:
                if kw.arg == "target":
                    add(kw.value)
            for arg in node.args:
                add(arg)
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("submit", "call_soon", "add_done_callback")
            and node.args
        ):
            add(node.args[0])
    for base in cls.node.bases:
        dotted = module.imports.resolve(base)
        if dotted == "threading.Thread" and "run" in cls.methods:
            if "run" not in entries:
                entries.append("run")
    return tuple(entries)


def _call_closure(cls: ClassModel, roots: Tuple[str, ...]) -> Set[str]:
    """Methods reachable from ``roots`` via ``self.m(...)`` calls."""
    edges: Dict[str, List[str]] = {}
    for name in cls.methods:
        callees: List[str] = []
        for node in ast.walk(cls.methods[name].node):
            if isinstance(node, ast.Call):
                attr = _self_attr(node.func)
                if attr in cls.methods and attr not in callees:
                    callees.append(attr)
        edges[name] = callees
    seen: Set[str] = set()
    stack = list(roots)
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        stack.extend(edges.get(name, ()))
    return seen


class _LockWalker:
    """Walks one function body tracking which inferred locks are held."""

    def __init__(
        self,
        module: ModuleModel,
        fn: FunctionModel,
        cls: Optional[ClassModel],
        protected: Tuple[str, ...],
        reachable: bool,
        out: List[Diagnostic],
    ) -> None:
        self.module = module
        self.fn = fn
        self.cls = cls
        self.protected = protected
        self.reachable = reachable
        self.out = out
        self._lock_attrs = set(cls.lock_attrs) if cls else set()
        self._lock_globals = set(module.lock_globals)

    def walk(self) -> None:
        self._walk_body(self.fn.node.body, held=())

    # -- traversal -----------------------------------------------------
    def _walk_body(self, body, held) -> None:
        for stmt in body:
            self._walk_stmt(stmt, held)

    def _walk_stmt(self, stmt, held) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = list(held)
            for item in stmt.items:
                name = self._lock_name(item.context_expr)
                if name is not None and name not in acquired:
                    acquired.append(name)
            self._walk_body(stmt.body, tuple(acquired))
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are separate functions
        self._check_stmt(stmt, held)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._walk_stmt(child, held)
            elif isinstance(child, ast.expr):
                self._walk_expr(child, held)
            elif isinstance(
                child, (ast.excepthandler, ast.withitem)
            ):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self._walk_stmt(sub, held)
                    elif isinstance(sub, ast.expr):
                        self._walk_expr(sub, held)

    def _walk_expr(self, expr, held) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._check_call(node, held)

    def _lock_name(self, ctx) -> Optional[str]:
        attr = _self_attr(ctx)
        if attr is not None and attr in self._lock_attrs:
            return f"self.{attr}"
        if isinstance(ctx, ast.Name) and ctx.id in self._lock_globals:
            return ctx.id
        return None

    # -- checks --------------------------------------------------------
    def _check_stmt(self, stmt, held) -> None:
        if isinstance(stmt, ast.Assign) and stmt.targets:
            self._check_write(
                stmt, stmt.targets[0], stmt.value, held, aug=False
            )
        elif isinstance(stmt, ast.AugAssign):
            self._check_write(
                stmt, stmt.target, stmt.value, held, aug=True
            )

    def _check_write(self, stmt, target, value, held, *, aug) -> None:
        if self.fn.name == "__init__" or held:
            return
        attr = _self_attr(target)
        if attr is not None and self.cls is not None:
            if not self.reachable:
                return
            if attr in self.protected:
                self.out.append(Diagnostic(
                    "ACE930",
                    f"write to lock-protected attribute self.{attr} "
                    f"without the lock in thread-reachable "
                    f"{self.fn.qualname}",
                    location=_loc(self.module, stmt),
                    hint="take the lock that protects this attribute",
                ))
                return
            if self._lock_attrs and (
                aug or self._reads_attr(value, attr)
            ):
                self.out.append(Diagnostic(
                    "ACE935",
                    f"unsynchronized read-modify-write of self.{attr} "
                    f"in thread-reachable {self.fn.qualname}",
                    location=_loc(self.module, stmt),
                    hint="guard the update with the instance lock",
                ))
            return
        # Module-global mutation (requires a `global X` declaration in
        # this function so plain locals never trip it).
        if isinstance(target, ast.Name) and self._declared_global(
            target.id
        ):
            self.out.append(Diagnostic(
                "ACE936",
                f"module global {target.id} assigned without "
                f"synchronization in {self.fn.qualname}",
                location=_loc(self.module, stmt),
                hint=(
                    "hold a module-level threading.Lock across the "
                    "mutation (or justify with a lint: allow comment)"
                ),
            ))

    @staticmethod
    def _reads_attr(value, attr: str) -> bool:
        """``value`` reads ``self.<attr>`` — the R in an off-lock RMW."""
        if value is None:
            return False
        for node in ast.walk(value):
            if isinstance(node, ast.Attribute) and _self_attr(node) == (
                attr
            ):
                return True
        return False

    def _declared_global(self, name: str) -> bool:
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Global) and name in node.names:
                return True
        return False

    def _check_call(self, node: ast.Call, held) -> None:
        if not held:
            return
        desc = self._blocking_desc(node)
        if desc is None:
            return
        self.out.append(Diagnostic(
            "ACE931",
            f"blocking call {desc} while holding {held[-1]} "
            f"in {self.fn.qualname}",
            location=_loc(self.module, node),
            hint="move the blocking work outside the locked region",
        ))

    def _blocking_desc(self, node: ast.Call) -> Optional[str]:
        path = self.module.imports.resolve(node.func)
        if path is not None:
            if path in _BLOCKING_PATHS:
                return f"{path}()"
            for prefix in _BLOCKING_PREFIXES:
                if path.startswith(prefix):
                    return f"{path}()"
            if path == "write_json_atomic" or path.endswith(
                ".write_json_atomic"
            ):
                return "write_json_atomic() (disk I/O)"
        if isinstance(node.func, ast.Name) and node.func.id == (
            "write_json_atomic"
        ):
            return "write_json_atomic() (disk I/O)"
        if not isinstance(node.func, ast.Attribute):
            return None
        attr_name = node.func.attr
        receiver = _self_attr(node.func.value)
        if attr_name in ("wait", "wait_for"):
            # Condition.wait releases the lock — that is the idiom.
            if (
                self.cls is not None
                and receiver is not None
                and receiver in self.cls.condition_attrs
            ):
                return None
            if receiver is not None:
                return f"self.{receiver}.{attr_name}()"
            return None
        if attr_name == "join":
            if (
                self.cls is not None
                and receiver is not None
                and receiver in self.cls.thread_attrs
            ):
                return f"self.{receiver}.join()"
            return None
        if attr_name in _BLOCKING_ATTRS:
            owner = receiver if receiver is None else f"self.{receiver}"
            name = owner or ast.unparse(node.func.value)
            return f"{name}.{attr_name}()"
        return None


def _concurrency_pack(module: ModuleModel) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for qualname in module.functions:
        fn = module.functions[qualname]
        cls = module.classes.get(fn.class_name) if fn.class_name else None
        protected: Tuple[str, ...] = ()
        reachable = False
        if cls is not None:
            protected = _protected_attrs(cls)
            entries = _thread_entries(module, cls)
            reachable = fn.name in _call_closure(cls, entries)
        _LockWalker(module, fn, cls, protected, reachable, out).walk()
        out.extend(_thread_and_pool_scan(module, fn))
    return out


# -- threads started / pools shut down --------------------------------
_POOL_CTORS = frozenset((
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool",
))
_FORK_CALLS = frozenset(("os.fork", "os.forkpty"))
_CLOSE_ATTRS = frozenset(("shutdown", "close", "terminate", "join"))


def _thread_and_pool_scan(
    module: ModuleModel, fn: FunctionModel
) -> List[Diagnostic]:
    """ACE932/ACE933/ACE934 over one function, in source order."""
    out: List[Diagnostic] = []
    threads: Dict[str, Dict[str, object]] = {}
    pools: Dict[str, Dict[str, object]] = {}
    finally_calls: List[Tuple[str, str]] = []  # (var, attr) in finalbody
    with_vars: Set[str] = set()
    escaped: Set[str] = set()
    nondaemon_started_line: Optional[int] = None
    fork_sites: List[Tuple[int, str, ast.AST]] = []

    def ctor_kind(call: ast.Call) -> Optional[str]:
        dotted = module.imports.resolve(call.func)
        if dotted is None and isinstance(call.func, ast.Name):
            dotted = call.func.id
        if dotted is None:
            return None
        if dotted in ("threading.Thread", "threading.Timer"):
            return "thread"
        if dotted in _POOL_CTORS or dotted.split(".")[-1] in (
            "ThreadPoolExecutor", "ProcessPoolExecutor", "WorkerPool",
        ):
            return "pool"
        return None

    def is_daemon(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg == "daemon" and isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
        return False

    for node in ast.walk(fn.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    with_vars.add(item.optional_vars.id)
                if isinstance(item.context_expr, ast.Call):
                    kind = ctor_kind(item.context_expr)
                    if kind is not None:
                        # with-scoped: lifecycle is guaranteed.
                        pass
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(node.value, ast.Call) and isinstance(
                target, ast.Name
            ):
                kind = ctor_kind(node.value)
                if kind == "thread":
                    threads[target.id] = {
                        "node": node,
                        "daemon": is_daemon(node.value),
                        "started": None,
                        "joined": False,
                    }
                elif kind == "pool":
                    pools[target.id] = {"node": node}
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                if isinstance(node.value, ast.Name):
                    escaped.add(node.value.id)
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "daemon"
                and isinstance(target.value, ast.Name)
                and target.value.id in threads
            ):
                value = node.value
                if isinstance(value, ast.Constant) and value.value:
                    threads[target.value.id]["daemon"] = True
        elif isinstance(node, ast.Return) and isinstance(
            node.value, ast.Name
        ):
            escaped.add(node.value.id)
        elif isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for call in ast.walk(stmt):
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and isinstance(call.func.value, ast.Name)
                        and call.func.attr in _CLOSE_ATTRS
                    ):
                        finally_calls.append(
                            (call.func.value.id, call.func.attr)
                        )
        elif isinstance(node, ast.Call):
            dotted = module.imports.resolve(node.func)
            if dotted in _FORK_CALLS:
                fork_sites.append((node.lineno, dotted, node))
            if isinstance(node.func, ast.Attribute) and isinstance(
                node.func.value, ast.Name
            ):
                var, attr = node.func.value.id, node.func.attr
                if var in threads:
                    if attr == "start":
                        threads[var]["started"] = node.lineno
                        if not threads[var]["daemon"]:
                            line = node.lineno
                            if (
                                nondaemon_started_line is None
                                or line < nondaemon_started_line
                            ):
                                nondaemon_started_line = line
                    elif attr == "join":
                        threads[var]["joined"] = True
                elif var in pools and attr in ("spawn", "start"):
                    fork_sites.append(
                        (node.lineno, f"{var}.{attr}", node)
                    )
            # A variable passed as an argument escapes.
            for arg in list(node.args) + [
                kw.value for kw in node.keywords
            ]:
                if isinstance(arg, ast.Name):
                    escaped.add(arg.id)

    # ACE932: fork/pool-start after a non-daemon thread start.
    if nondaemon_started_line is not None:
        for lineno, desc, node in fork_sites:
            if lineno > nondaemon_started_line:
                out.append(Diagnostic(
                    "ACE932",
                    f"{desc} after a non-daemon thread start in "
                    f"{fn.qualname}",
                    location=_loc(module, node),
                    hint=(
                        "fork before starting threads, or make the "
                        "thread a daemon"
                    ),
                ))

    # ACE933: non-daemon thread started but never joined.
    for var in threads:
        info = threads[var]
        if (
            info["started"] is not None
            and not info["daemon"]
            and not info["joined"]
            and var not in escaped
        ):
            out.append(Diagnostic(
                "ACE933",
                f"non-daemon thread {var} started in {fn.qualname} "
                f"but never joined",
                location=_loc(module, info["node"]),
                hint="join it, daemonize it, or hand it to an owner",
            ))

    # ACE934: pool without a guaranteed shutdown.
    closers = {var for var, _ in finally_calls}
    for var in pools:
        if var in escaped or var in with_vars:
            continue
        if var not in closers:
            out.append(Diagnostic(
                "ACE934",
                f"pool or executor {var} created in {fn.qualname} "
                f"without a guaranteed shutdown",
                location=_loc(module, pools[var]["node"]),
                hint=(
                    "use a with block or shutdown/close in a finally"
                ),
            ))
    return out


# ---------------------------------------------------------------------
# ACE94x: resource lifecycle
# ---------------------------------------------------------------------
_RESOURCE_CTORS: Dict[str, Tuple[str, str]] = {
    "open": ("ACE940", "file"),
    "socket.socket": ("ACE941", "socket"),
    "socket.create_connection": ("ACE941", "socket"),
    "tempfile.NamedTemporaryFile": ("ACE942", "temporary file"),
    "tempfile.TemporaryFile": ("ACE942", "temporary file"),
    "tempfile.mkstemp": ("ACE942", "temporary file"),
    "tempfile.mkdtemp": ("ACE942", "temporary directory"),
}
#: Calls that consume/adopt a resource argument (ownership transfer).
_RESOURCE_CONSUMERS = frozenset((
    "os.fdopen", "os.close", "os.unlink", "os.remove", "os.replace",
    "os.rmdir", "shutil.rmtree", "shutil.move", "contextlib.closing",
))
_RELEASE_ATTRS = frozenset(("close", "cleanup", "detach", "shutdown"))


def _resource_pack(module: ModuleModel) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for qualname in module.functions:
        out.extend(
            _resource_scan(module, module.functions[qualname])
        )
    return out


def _resource_scan(
    module: ModuleModel, fn: FunctionModel
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    with_calls: Set[int] = set()   # id() of ctor calls inside with items
    bound_calls: Set[int] = set()  # id() of ctor calls that are assigned
    acquired: Dict[str, Dict[str, object]] = {}
    escaped: Set[str] = set()
    finally_released: Set[str] = set()
    bare: List[Tuple[ast.Call, str, str]] = []

    def resource_of(call: ast.Call) -> Optional[Tuple[str, str]]:
        dotted = module.imports.resolve(call.func)
        if dotted is None and isinstance(call.func, ast.Name):
            dotted = call.func.id
        if dotted is None:
            return None
        return _RESOURCE_CTORS.get(dotted)

    for node in ast.walk(fn.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for call in ast.walk(item.context_expr):
                    if isinstance(call, ast.Call):
                        with_calls.add(id(call))
        elif isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for call in ast.walk(stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    if (
                        isinstance(call.func, ast.Attribute)
                        and isinstance(call.func.value, ast.Name)
                        and call.func.attr in _RELEASE_ATTRS
                    ):
                        finally_released.add(call.func.value.id)
                    dotted = module.imports.resolve(call.func)
                    if dotted in _RESOURCE_CONSUMERS:
                        for arg in call.args:
                            if isinstance(arg, ast.Name):
                                finally_released.add(arg.id)

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(node.value, ast.Call):
                resource = resource_of(node.value)
                if resource is not None:
                    bound_calls.add(id(node.value))
                if resource is not None and id(node.value) not in (
                    with_calls
                ):
                    names: List[str] = []
                    if isinstance(target, ast.Name):
                        names = [target.id]
                    elif isinstance(target, ast.Tuple):
                        names = [
                            e.id for e in target.elts
                            if isinstance(e, ast.Name)
                        ]
                    elif isinstance(target, (ast.Attribute, ast.Subscript)):
                        # Stored beyond the function: owner's problem.
                        continue
                    for name in names:
                        acquired[name] = {
                            "node": node,
                            "code": resource[0],
                            "what": resource[1],
                        }
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                if isinstance(node.value, ast.Name):
                    escaped.add(node.value.id)
        elif isinstance(node, ast.Return) and isinstance(
            node.value, ast.Name
        ):
            escaped.add(node.value.id)
        elif isinstance(node, ast.Call):
            resource = resource_of(node)
            if (
                resource is not None
                and id(node) not in with_calls
                and id(node) not in bound_calls
            ):
                # Acquired without binding a name: leak unless the
                # value is immediately adopted by a consumer (the
                # nested-in-consumer pass below removes those).
                bare.append((node, resource[0], resource[1]))
            dotted = module.imports.resolve(node.func)
            if dotted in _RESOURCE_CONSUMERS:
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    if isinstance(arg, ast.Name):
                        escaped.add(arg.id)
            if isinstance(node.func, ast.Attribute) and isinstance(
                node.func.value, ast.Name
            ):
                if node.func.attr in _RELEASE_ATTRS:
                    # Only a finally-block release is *guaranteed*,
                    # but a straight-line close keeps the common
                    # acquire/use/close pattern clean; "on every
                    # path" is enforced for code with try/except.
                    escaped.add(node.func.value.id)

    # Bare ctor calls: exempt the ones nested inside a consumer call.
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            dotted = module.imports.resolve(node.func)
            if dotted in _RESOURCE_CONSUMERS:
                for arg in ast.walk(node):
                    for entry in list(bare):
                        if entry[0] is arg:
                            bare.remove(entry)

    for name in acquired:
        info = acquired[name]
        if name in escaped or name in finally_released:
            continue
        out.append(Diagnostic(
            str(info["code"]),
            f"{info['what']} {name} acquired in {fn.qualname} outside "
            f"with and not released on every path",
            location=_loc(module, info["node"]),
            hint="use a with block or release in a finally",
        ))
    for call, code, what in bare:
        out.append(Diagnostic(
            code,
            f"{what} acquired in {fn.qualname} and never bound or "
            f"released",
            location=_loc(module, call),
            hint="bind it and close it, or use a with block",
        ))
    return out


# ---------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------
def analyze_project(project: Project) -> List[Diagnostic]:
    """Every Tier-C rule over every module, suppressed and sorted."""
    out: List[Diagnostic] = []
    for module_path in sorted(project.modules):
        module = project.modules[module_path]
        diags: List[Diagnostic] = []
        diags.extend(_taint_pack(project, module))
        diags.extend(_concurrency_pack(module))
        diags.extend(_resource_pack(module))
        out.extend(filter_suppressed(diags, module.source))
    return sorted_diagnostics(out)


def analyze_flow_source(
    source: str,
    filename: str,
    *,
    module_path: Optional[str] = None,
) -> List[Diagnostic]:
    """Tier-C analysis of a single module in isolation."""
    project = Project.from_sources([(source, filename, module_path)])
    return analyze_project(project)


def analyze_flow_paths(
    paths: List[Union[str, Path]],
) -> List[Diagnostic]:
    """Tier-C analysis of a file set as one project (shared call graph)."""
    if not paths:
        return []
    return analyze_project(Project.from_paths(paths))


def analyze_flow_tree(root: Union[str, Path]) -> List[Diagnostic]:
    """Tier-C analysis of every ``*.py`` under ``root`` (or one file)."""
    root = Path(root)
    if root.is_file():
        return analyze_flow_paths([root])
    return analyze_flow_paths(sorted(root.rglob("*.py")))
