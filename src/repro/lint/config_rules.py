"""Tier-A domain analyzers over in-memory planning objects.

``analyze_structure`` is the collect-all twin of the historical
``validate_config`` raise-on-first checker: same invariants (§3.1 and
§5.1 of the paper), same check order, byte-identical message text —
``validate_config`` now wraps this analyzer's first error, so the two
can never drift.  ``analyze_memory`` is the static Eq. 1 feasibility
pass: it prices every stage with the performance model and reports
which stages would OOM and by how much.  ``analyze_primitives`` is the
Table 1 preflight: every registered primitive must have an applier and
a resolvable partner spec before the search may expand it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .diagnostics import Diagnostic


def _stage_loc(i: int) -> str:
    return f"stage {i}"


# ----------------------------------------------------------------------
# structural invariants (ACE1xx)
# ----------------------------------------------------------------------
def analyze_structure(config, graph, cluster) -> List[Diagnostic]:
    """Collect every violated structural invariant of ``config``.

    Diagnostics appear in the exact order the legacy raise-on-first
    checker tested them (spans, devices, parallel degrees, tp_dims,
    microbatch), so ``diagnostics[0]`` is always the violation
    ``validate_config`` historically raised.
    """
    out: List[Diagnostic] = []
    _check_spans(config, graph, out)
    _check_devices(config, cluster, out)
    _check_parallel_degrees(config, cluster, out)
    _check_tp_dims(config, graph, out)
    _check_microbatch(config, graph, out)
    return out


def _check_spans(config, graph, out: List[Diagnostic]) -> None:
    expected = 0
    for i, stage in enumerate(config.stages):
        if stage.start != expected:
            out.append(Diagnostic(
                "ACE101",
                f"stage {i} starts at op {stage.start}, expected {expected}",
                location=_stage_loc(i),
                hint="stage spans must tile the op chain contiguously",
            ))
        if stage.end <= stage.start:
            out.append(Diagnostic(
                "ACE102",
                f"stage {i} has empty span",
                location=_stage_loc(i),
                hint="every stage must own at least one op",
            ))
        expected = stage.end
    if expected != graph.num_ops:
        out.append(Diagnostic(
            "ACE103",
            f"stages cover {expected} ops but the graph has "
            f"{graph.num_ops}",
            hint="the last stage must end at num_ops",
        ))


def _check_devices(config, cluster, out: List[Diagnostic]) -> None:
    total = 0
    for i, stage in enumerate(config.stages):
        n = stage.num_devices
        if n < 1 or (n & (n - 1)):
            out.append(Diagnostic(
                "ACE110",
                f"stage {i} device count {stage.num_devices} is not a "
                f"power of two",
                location=_stage_loc(i),
            ))
        total += stage.num_devices
    if total != cluster.num_gpus:
        out.append(Diagnostic(
            "ACE111",
            f"stages use {total} devices but the cluster has "
            f"{cluster.num_gpus}",
            hint="device counts must sum to the cluster size",
        ))


def _check_parallel_degrees(config, cluster, out: List[Diagnostic]) -> None:
    for i, stage in enumerate(config.stages):
        for name, arr in (("tp", stage.tp), ("dp", stage.dp)):
            if np.any(arr < 1):
                out.append(Diagnostic(
                    "ACE120",
                    f"stage {i} has non-positive {name}",
                    location=_stage_loc(i),
                ))
            bad = arr & (arr - 1)
            if np.any(bad):
                out.append(Diagnostic(
                    "ACE121",
                    f"stage {i} has non-power-of-two {name} values",
                    location=_stage_loc(i),
                ))
        if np.any(stage.tp * stage.dp != stage.num_devices):
            out.append(Diagnostic(
                "ACE122",
                f"stage {i}: tp * dp != num_devices ({stage.num_devices})",
                location=_stage_loc(i),
            ))
        if np.any(stage.tp > cluster.num_gpus):
            out.append(Diagnostic(
                "ACE123",
                f"stage {i} tp exceeds cluster size",
                location=_stage_loc(i),
            ))


def _check_tp_dims(config, graph, out: List[Diagnostic]) -> None:
    num_options = graph.arrays.num_options
    for i, stage in enumerate(config.stages):
        if np.any(stage.tp_dim < 0):
            out.append(Diagnostic(
                "ACE130",
                f"stage {i} has negative tp_dim",
                location=_stage_loc(i),
            ))
        limit = num_options[stage.start:stage.end]
        # When the span itself is broken the slice can be the wrong
        # length; the span diagnostics above already cover that case.
        if limit.shape == stage.tp_dim.shape and np.any(
            stage.tp_dim >= limit
        ):
            out.append(Diagnostic(
                "ACE131",
                f"stage {i} has tp_dim beyond an op's partition options",
                location=_stage_loc(i),
            ))


def _check_microbatch(config, graph, out: List[Diagnostic]) -> None:
    mbs = config.microbatch_size
    if graph.global_batch_size % mbs:
        out.append(Diagnostic(
            "ACE140",
            f"microbatch {mbs} does not divide global batch "
            f"{graph.global_batch_size}",
        ))
    for i, stage in enumerate(config.stages):
        if np.any(mbs % stage.dp):
            out.append(Diagnostic(
                "ACE141",
                f"stage {i}: microbatch {mbs} not divisible by some op dp",
                location=_stage_loc(i),
                hint="every op's per-GPU share mbs/dp must be integral",
            ))


# ----------------------------------------------------------------------
# memory feasibility (ACE2xx, Eq. 1)
# ----------------------------------------------------------------------
def analyze_memory(
    config, graph, cluster, *, perf_model=None, seed: int = 0
) -> List[Diagnostic]:
    """Static Eq. 1 feasibility: which stages would OOM, and by how much.

    Requires a structurally valid config (run :func:`analyze_structure`
    first); builds a performance model when none is supplied.
    """
    if perf_model is None:
        from ..perfmodel.model import build_perf_model

        perf_model = build_perf_model(graph, cluster, seed=seed)
    report = perf_model.estimate(config)
    limit = report.memory_limit
    out: List[Diagnostic] = []
    for i, peak in enumerate(report.peak_memories):
        if peak > limit:
            overage = peak - limit
            out.append(Diagnostic(
                "ACE201",
                f"stage {i} peak memory {peak / 2**30:.2f} GiB exceeds "
                f"device capacity {limit / 2**30:.2f} GiB by "
                f"{overage / 2**30:.2f} GiB",
                location=_stage_loc(i),
                hint=(
                    "apply a memory-decreasing primitive to this stage "
                    "(dec-op#, dec-mbs, inc-dp, inc-tp, inc-rc)"
                ),
                attrs={
                    "peak_bytes": float(peak),
                    "limit_bytes": float(limit),
                    "overage_bytes": float(overage),
                },
            ))
    return out


def weight_state_lower_bound(graph, cluster) -> float:
    """Per-GPU lower bound on resident weight+optimizer bytes.

    Weights and optimizer state shard only across tensor-parallel (and
    for the optimizer, dp replicas each keep a copy), so even a perfect
    plan keeps at least ``total_params * (elem + optimizer_bytes) /
    num_gpus`` on some device.  A request whose bound already exceeds
    device capacity cannot be planned at all.
    """
    per_param = graph.elem_bytes + float(graph.optimizer_bytes_per_param)
    return float(graph.total_params) * per_param / cluster.num_gpus


def analyze_weight_state(graph, cluster) -> List[Diagnostic]:
    """Request-level ACE202 check: can the weights fit at all?"""
    bound = weight_state_lower_bound(graph, cluster)
    limit = float(cluster.device.memory_bytes)
    if bound <= limit:
        return []
    return [Diagnostic(
        "ACE202",
        f"weights + optimizer state need at least "
        f"{bound / 2**30:.2f} GiB per GPU but devices have "
        f"{limit / 2**30:.2f} GiB",
        hint="request more GPUs or a smaller model",
        attrs={
            "lower_bound_bytes": bound,
            "limit_bytes": limit,
            "num_gpus": cluster.num_gpus,
        },
    )]


# ----------------------------------------------------------------------
# primitive legality preflight (ACE21x)
# ----------------------------------------------------------------------
def _partner_names(partner: str) -> List[str]:
    """Expand a Table 1 partner spec into primitive names.

    ``"dec-dp/tp"`` means "dec-dp or dec-tp on the partner stage".
    """
    if "/" not in partner:
        return [partner]
    prefix, _, alternatives = partner.partition("-")
    return [f"{prefix}-{alt}" for alt in alternatives.split("/")]


def analyze_primitives(
    names: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Preflight the primitive table (or an explicit name list).

    Every primitive the search may expand must exist in Table 1
    (``ACE210``) and have a registered applier (``ACE211``); partner
    specs must expand to known primitives (``ACE210``).
    """
    from ..core.apply import has_applier
    from ..core.primitives import PRIMITIVES_BY_NAME, _EXTENSIONS, all_primitives

    known = set(PRIMITIVES_BY_NAME) | set(_EXTENSIONS)
    out: List[Diagnostic] = []
    if names is not None:
        for name in names:
            if name not in known:
                out.append(Diagnostic(
                    "ACE210",
                    f"unknown primitive {name!r}",
                    location=name,
                    hint=f"known primitives: {sorted(known)}",
                ))
            elif not has_applier(name):
                out.append(Diagnostic(
                    "ACE211",
                    f"primitive {name!r} has no registered applier",
                    location=name,
                    hint="register one with repro.core.apply.register_applier",
                ))
        return out

    for spec in all_primitives():
        if not has_applier(spec.name):
            out.append(Diagnostic(
                "ACE211",
                f"primitive {spec.name!r} has no registered applier",
                location=spec.name,
                hint="register one with repro.core.apply.register_applier",
            ))
        if spec.partner:
            for partner in _partner_names(spec.partner):
                if partner not in known:
                    out.append(Diagnostic(
                        "ACE210",
                        f"primitive {spec.name!r} names unknown partner "
                        f"{partner!r}",
                        location=spec.name,
                    ))
    return out


# ----------------------------------------------------------------------
# orchestration
# ----------------------------------------------------------------------
def analyze_config(
    config,
    graph,
    cluster,
    *,
    perf_model=None,
    memory: bool = True,
    seed: int = 0,
) -> List[Diagnostic]:
    """Full Tier-A analysis of one configuration.

    Structural diagnostics come first; the Eq. 1 memory pass only runs
    on structurally clean configs (the performance model assumes valid
    spans and degrees).
    """
    out = analyze_structure(config, graph, cluster)
    if memory and not out:
        out.extend(analyze_memory(
            config, graph, cluster, perf_model=perf_model, seed=seed
        ))
    return out
