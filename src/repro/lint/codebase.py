"""Tier-B codebase lint: stdlib-``ast`` rules over ``src/repro``.

Four repo invariants become machine-checked:

* **ACE901** — deterministic modules (``core``, ``perfmodel``,
  ``parallel``, ``ir``) may not call wall-clock time, ``datetime.now``,
  or unseeded RNG constructors/module-level ``random`` functions.
  Monotonic clocks (``time.monotonic``/``perf_counter``) and seeded
  ``random.Random(seed)`` / ``numpy.random.default_rng(seed)`` are
  fine — bit-exact resume and replay (PRs 2–4) depend on exactly this.
* **ACE902/ACE903** — every telemetry emit passes its event name as a
  string literal (or a constant imported from
  :mod:`repro.telemetry.events`), and that name is registered.
* **ACE904** — a class defining ``to_json`` must define ``from_json``;
  one-way serialization is how artifact formats rot.
* **ACE905** — no bare ``except:`` clauses.

Suppressions: a line ending in ``# lint: allow(ACE902)`` (comma-list
accepted) silences those codes on that line; files in
:data:`DETERMINISM_ALLOWLIST` are exempt from ACE901.  Both mechanisms
are deliberate, greppable opt-outs.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import List, Optional, Union

from .diagnostics import Diagnostic
from .source import (
    ImportMap,
    filter_suppressed,
    module_path_for,
    package_parts_for,
)

#: Top-level ``repro`` subpackages under the determinism contract.
DETERMINISTIC_PACKAGES = ("core", "perfmodel", "parallel", "ir")

#: Repo-relative module paths (posix, below ``repro/``) exempt from
#: ACE901 even though they live in a deterministic package.
DETERMINISM_ALLOWLIST: frozenset = frozenset()

#: Calls banned outright in deterministic modules.
_BANNED_CALLS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "datetime.datetime.now": "wall-clock timestamp",
    "datetime.datetime.utcnow": "wall-clock timestamp",
    "datetime.datetime.today": "wall-clock timestamp",
    "datetime.date.today": "wall-clock date",
}

#: RNG constructors that are fine when (and only when) seeded.
_SEEDED_CONSTRUCTORS = frozenset((
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.MT19937",
    "numpy.random.Philox",
))

_EVENTS_MODULE_RE = re.compile(r"(?:^|\.)telemetry\.events$")
_EVENTS_CONST_RE = re.compile(r"(?:^|\.)telemetry\.events\.([A-Za-z_0-9]+)$")


class _Analyzer(ast.NodeVisitor):
    def __init__(
        self, filename: str, module_path: str, deterministic: bool
    ) -> None:
        self.filename = filename
        self.module_path = module_path
        self.deterministic = deterministic
        self.diagnostics: List[Diagnostic] = []
        self._imports = ImportMap(package_parts_for(module_path))

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        self._imports.add_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self._imports.add_import_from(node)
        self.generic_visit(node)

    # -- resolution ----------------------------------------------------
    def _resolve(self, node) -> Optional[str]:
        return self._imports.resolve(node)

    def _report(
        self, code: str, message: str, node: ast.AST, hint: str = ""
    ) -> None:
        self.diagnostics.append(Diagnostic(
            code,
            message,
            location=f"{self.filename}:{node.lineno}",
            hint=hint,
        ))

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self.deterministic:
            self._check_determinism(node)
        self._check_emit(node)
        self.generic_visit(node)

    def _check_determinism(self, node: ast.Call) -> None:
        path = self._resolve(node.func)
        if path is None:
            return
        if path in _BANNED_CALLS:
            self._report(
                "ACE901",
                f"{path}() ({_BANNED_CALLS[path]}) in deterministic "
                f"module {self.module_path}",
                node,
                hint="use time.monotonic/perf_counter or thread a seed",
            )
            return
        seeded = bool(node.args) or bool(node.keywords)
        if path in _SEEDED_CONSTRUCTORS:
            if not seeded:
                self._report(
                    "ACE901",
                    f"unseeded {path}() in deterministic module "
                    f"{self.module_path}",
                    node,
                    hint="pass an explicit seed",
                )
            return
        if path == "random.SystemRandom" or path.startswith(
            "random.SystemRandom."
        ):
            self._report(
                "ACE901",
                f"{path} (OS entropy) in deterministic module "
                f"{self.module_path}",
                node,
            )
            return
        for prefix in ("random.", "numpy.random."):
            if path.startswith(prefix):
                self._report(
                    "ACE901",
                    f"module-level {path}() (shared unseeded RNG state) "
                    f"in deterministic module {self.module_path}",
                    node,
                    hint=(
                        "construct a seeded random.Random / "
                        "numpy.random.default_rng instead"
                    ),
                )
                return

    def _check_emit(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr != "emit":
                return
        elif isinstance(func, ast.Name):
            if func.id != "emit":
                return
        else:
            return
        name_node = node.args[0] if node.args else None
        if name_node is None:
            for keyword in node.keywords:
                if keyword.arg == "name":
                    name_node = keyword.value
                    break
        if name_node is None:
            return
        if isinstance(name_node, ast.Constant) and isinstance(
            name_node.value, str
        ):
            self._check_registered(name_node.value, name_node)
            return
        constant = self._registry_constant(name_node)
        if constant is not None:
            from ..telemetry import events as registry

            if constant not in registry.CONSTANTS_BY_IDENTIFIER:
                self._report(
                    "ACE903",
                    f"telemetry/events.py has no constant {constant!r}",
                    name_node,
                    hint="add it to repro/telemetry/events.py",
                )
            return
        self._report(
            "ACE902",
            "telemetry emit with a non-literal event name",
            name_node,
            hint=(
                "pass a string literal or a constant imported from "
                "repro.telemetry.events"
            ),
        )

    def _registry_constant(self, node) -> Optional[str]:
        """Identifier when ``node`` reads a registry constant."""
        if isinstance(node, ast.Name):
            dotted = self._imports.names.get(node.id)
            if dotted is not None:
                match = _EVENTS_CONST_RE.search(dotted)
                if match:
                    return match.group(1)
            return None
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            if base is not None and _EVENTS_MODULE_RE.search(base):
                return node.attr
        return None

    def _check_registered(self, name: str, node: ast.AST) -> None:
        from ..telemetry import events as registry

        if not registry.is_registered(name):
            self._report(
                "ACE903",
                f"event name {name!r} is not in the telemetry registry",
                node,
                hint="register it in repro/telemetry/events.py",
            )

    # -- classes -------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "to_json" in methods and "from_json" not in methods:
            self._report(
                "ACE904",
                f"class {node.name} defines to_json without a matching "
                f"from_json",
                node,
                hint="serialization must round-trip; add from_json",
            )
        self.generic_visit(node)

    # -- excepts -------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                "ACE905",
                "bare except clause",
                node,
                hint="catch a concrete exception type (or BaseException)",
            )
        self.generic_visit(node)


def analyze_source(
    source: str,
    filename: str,
    *,
    module_path: Optional[str] = None,
) -> List[Diagnostic]:
    """Run every Tier-B rule over one module's source text.

    ``module_path`` (posix, below ``repro/``) determines which rules
    apply; it is derived from ``filename`` when omitted — tests pass it
    explicitly to lint fixture files as if they lived in the package.
    """
    if module_path is None:
        module_path = module_path_for(filename)
    deterministic = (
        module_path.split("/")[0] in DETERMINISTIC_PACKAGES
        and module_path not in DETERMINISM_ALLOWLIST
    )
    tree = ast.parse(source, filename=filename)
    analyzer = _Analyzer(filename, module_path, deterministic)
    analyzer.visit(tree)
    return filter_suppressed(analyzer.diagnostics, source)


def analyze_file(path: Union[str, Path]) -> List[Diagnostic]:
    """Lint one Python file."""
    path = Path(path)
    return analyze_source(path.read_text(encoding="utf-8"), str(path))


def analyze_tree(root: Union[str, Path]) -> List[Diagnostic]:
    """Lint every ``*.py`` file under ``root`` (or a single file)."""
    root = Path(root)
    if root.is_file():
        return analyze_file(root)
    out: List[Diagnostic] = []
    for path in sorted(root.rglob("*.py")):
        out.extend(analyze_file(path))
    return out
