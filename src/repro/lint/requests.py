"""Tier-A admission analysis of :class:`PlanRequest` payloads.

The planner daemon runs this before spawning any search worker: a
request that is malformed (``ACE330``), names an unknown model
(``ACE204``), asks for a cluster shape that cannot be built
(``ACE203``), or whose model cannot fit the cluster under any plan
(``ACE202``) is rejected with the full diagnostics payload instead of
burning a worker on a search that is guaranteed to crash or OOM.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .config_rules import analyze_weight_state
from .diagnostics import Diagnostic


def analyze_request(data) -> Tuple[Optional[object], List[Diagnostic]]:
    """Analyze a raw request payload (dict) or a parsed ``PlanRequest``.

    Returns ``(request, diagnostics)``; ``request`` is ``None`` when the
    payload does not even parse.  Any error-severity diagnostic means
    the request must not reach a worker.
    """
    from ..service.protocol import PlanRequest, ProtocolError

    if isinstance(data, PlanRequest):
        request = data
    else:
        try:
            request = PlanRequest.from_json(data)
        except ProtocolError as exc:
            return None, [Diagnostic(
                "ACE330",
                str(exc),
                location="request",
                hint="see repro.service.protocol.PlanRequest for the schema",
            )]
    return request, analyze_plan_request(request)


def analyze_plan_request(request) -> List[Diagnostic]:
    """Semantic checks on a well-formed ``PlanRequest``."""
    from ..cluster.topology import paper_cluster
    from ..core.searcher import StrategyError, build_options
    from ..ir.models.registry import available_models, build_model

    out: List[Diagnostic] = []
    try:
        # Resolves the strategy name (ACE212) and validates its kwargs
        # against the strategy's options dataclass (ACE213) in one
        # shot; the typed diagnostics ride the raised error.
        build_options(
            request.strategy, dict(request.strategy_kwargs or {})
        )
    except StrategyError as exc:
        out.extend(exc.diagnostics)
    except (TypeError, ValueError) as exc:
        # Known keys with unbuildable values (e.g. a string where the
        # options dataclass wants a float) still must not reach a
        # worker fork.
        out.append(Diagnostic(
            "ACE213",
            f"invalid strategy_kwargs for {request.strategy!r}: {exc}",
            location="strategy_kwargs",
        ))
    graph = None
    try:
        # The registry accepts both the fixed benchmark names and the
        # parametric ``gpt-<N>l`` scalability models, so resolvability
        # — not list membership — is the real "known model" test.
        graph = build_model(request.model)
    except KeyError:
        out.append(Diagnostic(
            "ACE204",
            f"unknown model {request.model!r}",
            location="model",
            hint=f"available models: {available_models()} or gpt-<N>l",
        ))
    cluster = None
    try:
        cluster = paper_cluster(request.gpus)
    except ValueError as exc:
        out.append(Diagnostic(
            "ACE203",
            f"cannot build a {request.gpus}-GPU cluster: {exc}",
            location="gpus",
            hint="use <= 8 GPUs or a multiple of 8",
        ))
    if cluster is not None and graph is not None:
        out.extend(analyze_weight_state(graph, cluster))
    return out
