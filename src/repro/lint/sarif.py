"""SARIF 2.1.0 export for ``repro-lint`` diagnostics.

One static-analysis run becomes one SARIF ``run``: the tool driver
lists every ``ACE***`` code that appears (id + short description from
the registry), and each diagnostic becomes a ``result`` with its
``ruleId``, level, message, and — when the location carries one — a
``physicalLocation`` with 1-based line/column.  CI annotation UIs
(GitHub code scanning among them) consume exactly this subset.

Output is deterministic: results follow the total diagnostic sort
order and the rule list is sorted by code, so the same findings always
produce byte-identical SARIF.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .diagnostics import CODES, Diagnostic, sorted_diagnostics
from .source import split_location

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(
    diagnostics: Iterable[Diagnostic],
    *,
    tool_name: str = "repro-lint",
) -> Dict[str, object]:
    """SARIF 2.1.0 document for ``diagnostics``."""
    ordered = sorted_diagnostics(diagnostics)
    codes = sorted({d.code for d in ordered})
    rules = [
        {
            "id": code,
            "shortDescription": {"text": CODES.get(code, code)},
        }
        for code in codes
    ]
    results: List[Dict[str, object]] = []
    for diag in ordered:
        result: Dict[str, object] = {
            "ruleId": diag.code,
            "level": diag.severity,
            "message": {"text": diag.message},
        }
        path, line, col = split_location(diag.location)
        if path:
            region: Dict[str, object] = {}
            if line > 0:
                region["startLine"] = line
            if col > 0:
                region["startColumn"] = col
            location: Dict[str, object] = {
                "physicalLocation": {
                    "artifactLocation": {"uri": path},
                }
            }
            if region:
                location["physicalLocation"]["region"] = region
            result["locations"] = [location]
        if diag.hint:
            result["properties"] = {"hint": diag.hint}
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
