"""Finding baselines: gate CI on *new* diagnostics only.

A baseline is a committed JSON file holding the multiset of findings a
tree is known (and temporarily allowed) to have.  ``repro-lint
--baseline lint-baseline.json`` subtracts it from the current run:
findings present in the baseline are *matched* (not reported), findings
absent from it are *new* (reported, and they gate), and baseline
entries nothing matched are *stale* (the debt was paid — the baseline
should be regenerated to shrink).

Identity is the ``(path, code, message)`` triple — deliberately **not**
the line number, so unrelated edits that shift code around do not
invalidate the baseline.  Tier-C rule messages are written to contain
no line numbers for exactly this reason; the line lives only in the
diagnostic's ``location``.  Identity is a multiset: two identical
findings in a file need two baseline entries.

The file format is deterministic (sorted entries, stable key order) so
regenerating a baseline with no underlying change is byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from .diagnostics import Diagnostic, sorted_diagnostics
from .source import split_location

FORMAT_VERSION = 1

BaselineKey = Tuple[str, str, str]


def baseline_key(diag: Diagnostic) -> BaselineKey:
    """``(path, code, message)`` — line numbers intentionally excluded."""
    path, _, _ = split_location(diag.location)
    return (path, diag.code, diag.message)


def write_baseline(
    diagnostics: Iterable[Diagnostic], path: Union[str, Path]
) -> Dict[str, object]:
    """Write ``path`` as the baseline for ``diagnostics``; returns the doc."""
    entries = [
        {"path": p, "code": c, "message": m}
        for p, c, m in sorted(baseline_key(d) for d in diagnostics)
    ]
    doc: Dict[str, object] = {
        "format_version": FORMAT_VERSION,
        "findings": entries,
    }
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return doc


class BaselineError(ValueError):
    """The baseline file is unreadable or malformed."""


def load_baseline(path: Union[str, Path]) -> Dict[BaselineKey, int]:
    """Baseline file -> multiset of finding keys (key -> count)."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}")
    if not isinstance(doc, dict) or doc.get("format_version") != (
        FORMAT_VERSION
    ):
        raise BaselineError(
            f"baseline {path} has an unsupported format_version"
        )
    counts: Dict[BaselineKey, int] = {}
    for entry in doc.get("findings", []):
        key = (
            str(entry.get("path", "")),
            str(entry.get("code", "")),
            str(entry.get("message", "")),
        )
        counts[key] = counts.get(key, 0) + 1
    return counts


def apply_baseline(
    diagnostics: Iterable[Diagnostic],
    baseline: Dict[BaselineKey, int],
) -> Tuple[List[Diagnostic], int, List[BaselineKey]]:
    """Split findings against a baseline.

    Returns ``(new, matched_count, stale)``: the diagnostics not
    covered by the baseline (in total sort order), how many were
    absorbed, and the baseline entries nothing matched (sorted).
    """
    remaining = dict(baseline)
    new: List[Diagnostic] = []
    matched = 0
    for diag in sorted_diagnostics(diagnostics):
        key = baseline_key(diag)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            new.append(diag)
    stale = sorted(
        key for key, count in remaining.items() for _ in range(count)
    )
    return new, matched, stale
