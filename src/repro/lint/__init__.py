"""Static analysis for Aceso plans, artifacts, and the codebase itself.

Two tiers share one typed-diagnostics core (:mod:`repro.lint.diagnostics`):

* **Tier A** (domain): collect-all analyzers over in-memory
  ``ParallelConfig``/``OpGraph``/``ClusterSpec`` triples
  (:mod:`repro.lint.config_rules`), admission analysis of
  ``PlanRequest``s before a worker is spawned
  (:mod:`repro.lint.requests`), and linting of every on-disk JSON
  artifact the planner reads or writes — plans, plan-cache entries,
  search checkpoints, request journals, telemetry run logs
  (:mod:`repro.lint.artifacts`).
* **Tier B** (codebase): stdlib-``ast`` rules over ``src/repro``
  enforcing the repo's determinism and telemetry contracts
  (:mod:`repro.lint.codebase`).
* **Tier C** (flow): a module-level call graph plus intraprocedural
  taint interpretation (:mod:`repro.lint.flow`) powering the
  determinism-taint, concurrency-discipline, and resource-lifecycle
  rule packs (:mod:`repro.lint.flow_rules`, codes ACE92x/93x/94x).

The ``repro-lint`` CLI (:mod:`repro.lint.cli`) fronts all tiers and
adds SARIF export (:mod:`repro.lint.sarif`) and new-findings-only
gating against a committed baseline (:mod:`repro.lint.baseline`).
"""

from .diagnostics import (
    CODES,
    ERROR,
    WARNING,
    Diagnostic,
    max_severity,
    sort_key,
    sorted_diagnostics,
)
from .config_rules import (
    analyze_config,
    analyze_memory,
    analyze_primitives,
    analyze_structure,
)
from .requests import analyze_request
from .artifacts import (
    lint_artifact_path,
    lint_checkpoint_file,
    lint_churn_timeline_file,
    lint_fleet_state_file,
    lint_journal_file,
    lint_plan_cache_file,
    lint_plan_file,
    lint_run_log_file,
)
from .codebase import analyze_source, analyze_tree
from .flow_rules import (
    analyze_flow_paths,
    analyze_flow_source,
    analyze_flow_tree,
)
from .baseline import apply_baseline, load_baseline, write_baseline
from .sarif import to_sarif

__all__ = [
    "CODES",
    "ERROR",
    "WARNING",
    "Diagnostic",
    "max_severity",
    "analyze_config",
    "analyze_memory",
    "analyze_primitives",
    "analyze_structure",
    "analyze_request",
    "lint_artifact_path",
    "lint_checkpoint_file",
    "lint_churn_timeline_file",
    "lint_fleet_state_file",
    "lint_journal_file",
    "lint_plan_cache_file",
    "lint_plan_file",
    "lint_run_log_file",
    "analyze_source",
    "analyze_tree",
    "analyze_flow_paths",
    "analyze_flow_source",
    "analyze_flow_tree",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "to_sarif",
    "sort_key",
    "sorted_diagnostics",
]
