"""The ``repro-lint`` command-line front end.

Dispatches each path to the right analyzer: Python files and source
trees go through the Tier-B codebase rules, JSON/JSONL artifacts (and
directories of them) through the Tier-A artifact linters.  Examples::

    repro-lint src/repro                      # codebase invariants
    repro-lint state/ daemon-events.jsonl     # artifact lint
    repro-lint src/repro --format json -o report.json
    repro-lint plan.json --select ACE30       # one rule family

Exit codes: 0 clean (warnings allowed), 1 when any error-severity
diagnostic survives filtering, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .artifacts import lint_artifact_path
from .codebase import analyze_file
from .diagnostics import ERROR, WARNING, Diagnostic

#: Artifact filename suffixes ``repro-lint`` picks up in directories.
_ARTIFACT_SUFFIXES = (".json", ".jsonl")


def _collect_paths(root: Path) -> List[Path]:
    """Lintable files under ``root`` (itself, when it is a file)."""
    if root.is_file():
        return [root]
    files = [p for p in root.rglob("*.py")]
    for suffix in _ARTIFACT_SUFFIXES:
        files.extend(root.rglob(f"*{suffix}"))
    return sorted(p for p in files if p.is_file())


def _lint_file(path: Path) -> List[Diagnostic]:
    if path.suffix == ".py":
        return analyze_file(path)
    return lint_artifact_path(path)


def _select(
    diagnostics: List[Diagnostic], prefixes: Optional[List[str]]
) -> List[Diagnostic]:
    if not prefixes:
        return diagnostics
    wanted = tuple(p.strip().upper() for p in prefixes if p.strip())
    return [d for d in diagnostics if d.code.startswith(wanted)]


def lint_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis for Aceso plans, artifacts, and the "
            "repro codebase (diagnostic codes ACE1xx structural, "
            "ACE2xx feasibility, ACE3xx artifact, ACE9xx codebase)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="files or directories: .py sources, JSON artifacts, "
        "JSONL run logs",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--select",
        "--rule",
        dest="select",
        action="append",
        default=None,
        metavar="CODE",
        help="only report codes with this prefix (repeatable; "
        "e.g. --select ACE9 or --rule ACE331)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the JSON report to this file",
    )
    args = parser.parse_args(argv)

    diagnostics: List[Diagnostic] = []
    checked: List[str] = []
    for raw in args.paths:
        path = Path(raw)
        if not path.exists():
            parser.error(f"no such path: {raw}")
        for file in _collect_paths(path):
            checked.append(str(file))
            try:
                diagnostics.extend(_lint_file(file))
            except SyntaxError as exc:
                print(
                    f"repro-lint: cannot parse {file}: {exc}",
                    file=sys.stderr,
                )
                return 2

    diagnostics = _select(diagnostics, args.select)
    errors = [d for d in diagnostics if d.severity == ERROR]
    warnings = [d for d in diagnostics if d.severity == WARNING]
    report = {
        "diagnostics": [d.to_json() for d in diagnostics],
        "counts": {"error": len(errors), "warning": len(warnings)},
        "files_checked": len(checked),
    }
    if args.output:
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        for diag in diagnostics:
            print(diag.render())
        print(
            f"repro-lint: {len(checked)} file(s), "
            f"{len(errors)} error(s), {len(warnings)} warning(s)"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(lint_main())
