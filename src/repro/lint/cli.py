"""The ``repro-lint`` command-line front end.

Dispatches each path to the selected analyzer tiers: JSON/JSONL
artifacts go through the Tier-A artifact linters, Python files through
the Tier-B per-file codebase rules, and — when Tier C is selected —
every Python file in the invocation is analyzed as *one project* by
the flow engine (taint, concurrency, resources need the shared call
graph).  Examples::

    repro-lint src/repro                      # tiers A+B (default)
    repro-lint --tier C src/repro             # flow analysis only
    repro-lint --tier B --tier C src/repro scripts
    repro-lint state/ daemon-events.jsonl     # artifact lint
    repro-lint src/repro --format json -o report.json
    repro-lint --tier C src/repro --format sarif -o report.sarif
    repro-lint --tier C src/repro --baseline lint-baseline.json
    repro-lint --tier C src/repro --baseline lint-baseline.json \\
        --update-baseline                     # (re)write the baseline

Diagnostics are always reported in the total ``(path, line, col,
code, message)`` order — the same inputs produce byte-identical
reports no matter which tier or analyzer ran first.

With ``--baseline``, findings recorded in the baseline file are
subtracted; only *new* findings are reported and gate the exit code.
``--update-baseline`` instead rewrites the baseline to match the
current findings and exits 0.

Exit codes: 0 clean (warnings allowed), 1 when any error-severity
diagnostic survives filtering/baselining, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .artifacts import lint_artifact_path
from .baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .codebase import analyze_file
from .diagnostics import ERROR, WARNING, Diagnostic, sorted_diagnostics
from .flow_rules import analyze_flow_paths
from .sarif import to_sarif

#: Artifact filename suffixes ``repro-lint`` picks up in directories.
_ARTIFACT_SUFFIXES = (".json", ".jsonl")

_TIERS = ("A", "B", "C")
_DEFAULT_TIERS = ("A", "B")


def _collect_paths(root: Path) -> List[Path]:
    """Lintable files under ``root`` (itself, when it is a file)."""
    if root.is_file():
        return [root]
    files = [p for p in root.rglob("*.py")]
    for suffix in _ARTIFACT_SUFFIXES:
        files.extend(root.rglob(f"*{suffix}"))
    return sorted(p for p in files if p.is_file())


def _select(
    diagnostics: List[Diagnostic], prefixes: Optional[List[str]]
) -> List[Diagnostic]:
    if not prefixes:
        return diagnostics
    wanted = tuple(p.strip().upper() for p in prefixes if p.strip())
    return [d for d in diagnostics if d.code.startswith(wanted)]


def _parse_tiers(raw: Optional[List[str]], error) -> List[str]:
    if not raw:
        return list(_DEFAULT_TIERS)
    tiers: List[str] = []
    for chunk in raw:
        for tier in chunk.replace(",", " ").upper().split():
            if tier not in _TIERS:
                error(f"unknown tier {tier!r} (choose from A, B, C)")
            if tier not in tiers:
                tiers.append(tier)
    return tiers


def lint_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis for Aceso plans, artifacts, and the "
            "repro codebase (diagnostic codes ACE1xx structural, "
            "ACE2xx feasibility, ACE3xx artifact, ACE9xx codebase; "
            "tiers: A artifacts, B per-file AST, C flow analysis)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="files or directories: .py sources, JSON artifacts, "
        "JSONL run logs",
    )
    parser.add_argument(
        "--tier",
        action="append",
        default=None,
        metavar="TIER",
        help="analyzer tiers to run: A (artifacts), B (per-file "
        "codebase AST), C (flow analysis); repeatable or "
        "comma-separated (default A,B)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--select",
        "--rule",
        dest="select",
        action="append",
        default=None,
        metavar="CODE",
        help="only report codes with this prefix (repeatable; "
        "e.g. --select ACE9 or --rule ACE331)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file: subtract its findings and gate on new "
        "ones only (see --update-baseline)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings "
        "and exit 0",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the report to this file (JSON, or SARIF "
        "with --format sarif)",
    )
    args = parser.parse_args(argv)
    tiers = _parse_tiers(args.tier, parser.error)
    if args.update_baseline and not args.baseline:
        parser.error("--update-baseline requires --baseline PATH")

    diagnostics: List[Diagnostic] = []
    checked: List[str] = []
    flow_files: List[Path] = []
    for raw in args.paths:
        path = Path(raw)
        if not path.exists():
            parser.error(f"no such path: {raw}")
        for file in _collect_paths(path):
            checked.append(str(file))
            try:
                if file.suffix == ".py":
                    if "B" in tiers:
                        diagnostics.extend(analyze_file(file))
                    if "C" in tiers:
                        flow_files.append(file)
                elif "A" in tiers:
                    diagnostics.extend(lint_artifact_path(file))
            except SyntaxError as exc:
                print(
                    f"repro-lint: cannot parse {file}: {exc}",
                    file=sys.stderr,
                )
                return 2
    if flow_files:
        try:
            diagnostics.extend(analyze_flow_paths(flow_files))
        except SyntaxError as exc:
            print(
                f"repro-lint: cannot parse: {exc}", file=sys.stderr
            )
            return 2

    diagnostics = sorted_diagnostics(_select(diagnostics, args.select))

    baseline_stats = None
    if args.baseline and args.update_baseline:
        write_baseline(diagnostics, args.baseline)
        print(
            f"repro-lint: wrote baseline {args.baseline} "
            f"({len(diagnostics)} finding(s))"
        )
        return 0
    if args.baseline:
        try:
            known = load_baseline(args.baseline)
        except BaselineError as exc:
            parser.error(str(exc))
        diagnostics, matched, stale = apply_baseline(diagnostics, known)
        baseline_stats = {
            "matched": matched,
            "new": len(diagnostics),
            "stale": len(stale),
        }

    errors = [d for d in diagnostics if d.severity == ERROR]
    warnings = [d for d in diagnostics if d.severity == WARNING]
    report = {
        "diagnostics": [d.to_json() for d in diagnostics],
        "counts": {"error": len(errors), "warning": len(warnings)},
        "files_checked": len(checked),
        "tiers": tiers,
    }
    if baseline_stats is not None:
        report["baseline"] = baseline_stats
    if args.format == "sarif":
        rendered = json.dumps(
            to_sarif(diagnostics), indent=2, sort_keys=True
        )
    else:
        rendered = json.dumps(report, indent=2)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
    if args.format in ("json", "sarif"):
        print(rendered)
    else:
        for diag in diagnostics:
            print(diag.render())
        summary = (
            f"repro-lint: {len(checked)} file(s), tier {'+'.join(tiers)}, "
            f"{len(errors)} error(s), {len(warnings)} warning(s)"
        )
        if baseline_stats is not None:
            summary += (
                f", baseline matched {baseline_stats['matched']}"
                f" (stale {baseline_stats['stale']})"
            )
        print(summary)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(lint_main())
