"""Shared source-model helpers for the Tier-B and Tier-C analyzers.

Both codebase tiers work from the same primitives: a best-effort map
from local binding names to the dotted paths they import
(:class:`ImportMap`), the repo-relative module path a filename denotes
(:func:`module_path_for`), and the ``# lint: allow(CODE, ...)``
suppression comments that silence diagnostics on one line
(:func:`line_suppressions` / :func:`filter_suppressed`).

The import map resolves *lexically*, never by executing anything:
``import numpy as np`` binds ``np -> numpy``; ``from ..telemetry import
get_bus`` inside ``repro/service/daemon.py`` binds ``get_bus ->
repro.telemetry.get_bus`` (relative levels are folded against the
module's own package).  Dynamic imports and attribute reassignment are
invisible — a deliberate false-negative boundary shared by every rule
built on top.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Union

from .diagnostics import Diagnostic

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([A-Z0-9,\s]+)\)")


def module_path_for(filename: Union[str, Path]) -> str:
    """Posix path below the ``repro`` package, best effort.

    Falls back to the bare filename when the path does not contain a
    ``repro`` component (fixture files, scripts).
    """
    parts = Path(filename).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1:])
    return Path(filename).name


def package_parts_for(module_path: str) -> List[str]:
    """Dotted-package components of a repo-relative module path.

    ``service/daemon.py`` lives in package ``repro.service``;
    ``ioutil.py`` lives in ``repro``.  Used to fold relative imports.
    """
    parts = ["repro"] + module_path.split("/")
    # Drop the module filename itself; __init__.py *is* the package.
    leaf = parts.pop()
    if leaf == "__init__.py":
        return parts
    return parts


class ImportMap:
    """Lexical import bindings of one module.

    ``modules`` maps binding name -> dotted module ("np" -> "numpy");
    ``names`` maps binding name -> dotted attribute
    ("Random" -> "random.Random").  :meth:`resolve` walks ``Name`` /
    ``Attribute`` chains into full dotted paths.
    """

    def __init__(self, package_parts: Optional[List[str]] = None) -> None:
        self.modules: Dict[str, str] = {}
        self.names: Dict[str, str] = {}
        self._package = list(package_parts or [])

    # -- construction --------------------------------------------------
    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.modules[alias.asname] = alias.name
            else:
                first = alias.name.split(".")[0]
                self.modules[first] = first

    def add_import_from(self, node: ast.ImportFrom) -> None:
        module = self._absolutize(node.module or "", node.level)
        for alias in node.names:
            binding = alias.asname or alias.name
            dotted = f"{module}.{alias.name}" if module else alias.name
            self.names[binding] = dotted

    def _absolutize(self, module: str, level: int) -> str:
        """Fold a relative import against the module's own package."""
        if level == 0:
            return module
        base = self._package[: len(self._package) - (level - 1)]
        if not base:
            return module
        return ".".join(base + ([module] if module else []))

    def collect(self, tree: ast.AST) -> "ImportMap":
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                self.add_import(node)
            elif isinstance(node, ast.ImportFrom):
                self.add_import_from(node)
        return self

    # -- resolution ----------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path for a ``Name``/``Attribute`` chain, or ``None``."""
        if isinstance(node, ast.Name):
            return self.names.get(node.id) or self.modules.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None


def line_suppressions(source: str) -> Dict[int, Set[str]]:
    """Line number -> codes allowed by a ``# lint: allow(...)`` comment."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            out[lineno] = {
                code.strip() for code in match.group(1).split(",")
            }
    return out


def filter_suppressed(
    diagnostics: Iterable[Diagnostic], source: str
) -> List[Diagnostic]:
    """Drop diagnostics whose line carries a matching allow comment.

    A diagnostic's line is the second ``:``-separated location field
    (``path:line`` or ``path:line:col``).
    """
    suppressions = line_suppressions(source)
    if not suppressions:
        return list(diagnostics)
    kept: List[Diagnostic] = []
    for diag in diagnostics:
        _, lineno, _ = split_location(diag.location)
        allowed = suppressions.get(lineno)
        if allowed is not None and diag.code in allowed:
            continue
        kept.append(diag)
    return kept


def split_location(location: str):
    """``(path, line, col)`` from ``path[:line[:col]]``.

    Line and column are parsed off the right end (the path itself may
    contain colons); missing fields come back as ``-1``.
    """
    path, line, col = location, -1, -1
    head, sep, tail = path.rpartition(":")
    if sep and tail.isdigit():
        path, last = head, int(tail)
        head, sep, tail = path.rpartition(":")
        if sep and tail.isdigit():
            path, line, col = head, int(tail), last
        else:
            line = last
    return path, line, col
