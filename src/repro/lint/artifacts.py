"""Tier-A linting of every on-disk JSON artifact the planner touches.

One collect-all linter per artifact family, each returning
:class:`~repro.lint.diagnostics.Diagnostic` lists instead of raising:

* serialized plans (``repro.parallel.serialization``) — ``ACE30x``
* plan-cache entries (``<fingerprint>.plan.json``) — ``ACE31x``
* search checkpoints (``<fingerprint>.ckpt.json``) — ``ACE32x``
* journaled requests (``<fingerprint>.request.json``) — ``ACE33x``
* telemetry run logs (JSONL) — ``ACE34x`` (plus the ``fleet.*``
  cross-event invariants, ``ACE41x``)
* churn timelines (``*.churn.json``) — ``ACE35x``
* fleet state artifacts (``*.fleet.json``) — ``ACE40x``

These are *static* checks: nothing is deserialized into live planner
objects, so a hostile or bit-rotted file can be linted safely before
the daemon resumes from it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple, Union

from .diagnostics import Diagnostic

#: Fingerprints are the first 16 hex digits of a sha256.
_FINGERPRINT_HEX = 16

#: Valid run-log event kinds (see ``repro.telemetry.bus``).
_EVENT_KINDS = frozenset(("event", "span_begin", "span_end", "counter"))

_PLAN_KEYS = frozenset(("format_version", "microbatch_size", "stages"))
_STAGE_KEYS = frozenset(
    ("start", "end", "num_devices", "tp", "dp", "tp_dim", "recompute")
)
_STAGE_ARRAY_KEYS = ("tp", "dp", "tp_dim", "recompute")
_CACHE_KEYS = frozenset(("plan", "objective", "model", "gpus"))
#: Optional cache-entry keys: allowed but not required, so entries
#: minted before the field existed keep linting clean.
_CACHE_OPTIONAL_KEYS = frozenset(("strategy",))
_CHECKPOINT_KEYS = frozenset(
    ("format_version", "stage_counts", "budget_kwargs", "context",
     "completed", "failures")
)
_RESULT_KEYS = frozenset(
    ("best_config", "best_objective", "top_configs", "num_estimates",
     "elapsed_seconds", "converged", "visited_signatures")
)
_RUN_LOG_KEYS = ("name", "kind", "ts", "pid", "source", "level", "attrs")


def _is_fingerprint(text: str) -> bool:
    return len(text) == _FINGERPRINT_HEX and all(
        c in "0123456789abcdef" for c in text
    )


def _load_json(
    path: Path, code: str
) -> Tuple[Optional[object], List[Diagnostic]]:
    try:
        return json.loads(path.read_text()), []
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        return None, [Diagnostic(
            code,
            f"cannot read {path}: {type(exc).__name__}: {exc}",
            location=str(path),
        )]


# ----------------------------------------------------------------------
# serialized plans (ACE30x)
# ----------------------------------------------------------------------
def lint_plan_dict(data, location: str) -> List[Diagnostic]:
    """Strict-schema lint of one serialized plan dict."""
    out: List[Diagnostic] = []
    if not isinstance(data, dict):
        return [Diagnostic(
            "ACE303", "plan must be a JSON object", location=location
        )]
    version = data.get("format_version")
    if version != 1:
        out.append(Diagnostic(
            "ACE302",
            f"unsupported plan format version {version!r} (expected 1)",
            location=location,
        ))
    unknown = sorted(set(data) - _PLAN_KEYS)
    if unknown:
        out.append(Diagnostic(
            "ACE303",
            f"unknown plan field(s) {unknown}",
            location=location,
        ))
    missing = sorted(_PLAN_KEYS - set(data))
    if missing:
        out.append(Diagnostic(
            "ACE303",
            f"missing plan field(s) {missing}",
            location=location,
        ))
    mbs = data.get("microbatch_size")
    if "microbatch_size" in data and (
        not isinstance(mbs, int) or isinstance(mbs, bool) or mbs < 1
    ):
        out.append(Diagnostic(
            "ACE303",
            f"microbatch_size must be a positive int, got {mbs!r}",
            location=location,
        ))
    stages = data.get("stages")
    if "stages" in data:
        if not isinstance(stages, list) or not stages:
            out.append(Diagnostic(
                "ACE303",
                "stages must be a non-empty list",
                location=location,
            ))
        else:
            for i, stage in enumerate(stages):
                out.extend(_lint_plan_stage(stage, i, location))
    return out


def _lint_plan_stage(stage, i: int, location: str) -> List[Diagnostic]:
    loc = f"{location} stage {i}"
    if not isinstance(stage, dict):
        return [Diagnostic(
            "ACE303", f"stage {i} must be a JSON object", location=loc
        )]
    out: List[Diagnostic] = []
    unknown = sorted(set(stage) - _STAGE_KEYS)
    if unknown:
        out.append(Diagnostic(
            "ACE303", f"stage {i} has unknown field(s) {unknown}",
            location=loc,
        ))
    missing = sorted(_STAGE_KEYS - set(stage))
    if missing:
        out.append(Diagnostic(
            "ACE303", f"stage {i} is missing field(s) {missing}",
            location=loc,
        ))
        return out
    for key in ("start", "end", "num_devices"):
        if not isinstance(stage[key], int) or isinstance(stage[key], bool):
            out.append(Diagnostic(
                "ACE303",
                f"stage {i} field {key!r} must be an int, got "
                f"{stage[key]!r}",
                location=loc,
            ))
            return out
    span = stage["end"] - stage["start"]
    for key in _STAGE_ARRAY_KEYS:
        value = stage[key]
        if not isinstance(value, list):
            out.append(Diagnostic(
                "ACE303",
                f"stage {i} field {key!r} must be a list",
                location=loc,
            ))
        elif span > 0 and len(value) != span:
            out.append(Diagnostic(
                "ACE303",
                f"stage {i} field {key!r} has {len(value)} entries for a "
                f"{span}-op span",
                location=loc,
            ))
    return out


def lint_plan_file(path: Union[str, Path]) -> List[Diagnostic]:
    """Lint one serialized plan JSON file."""
    path = Path(path)
    data, out = _load_json(path, "ACE301")
    if data is None:
        return out
    return lint_plan_dict(data, str(path))


# ----------------------------------------------------------------------
# plan-cache entries (ACE31x)
# ----------------------------------------------------------------------
def lint_plan_cache_file(path: Union[str, Path]) -> List[Diagnostic]:
    """Lint one ``<fingerprint>.plan.json`` cache entry."""
    path = Path(path)
    out: List[Diagnostic] = []
    stem = path.name[: -len(".plan.json")] if path.name.endswith(
        ".plan.json"
    ) else path.stem
    if not _is_fingerprint(stem):
        out.append(Diagnostic(
            "ACE311",
            f"cache entry filename {path.name!r} is not "
            f"<{_FINGERPRINT_HEX}-hex-fingerprint>.plan.json",
            location=str(path),
            hint="cache keys are PlanRequest.fingerprint() digests",
        ))
    data, load_diags = _load_json(path, "ACE301")
    out.extend(load_diags)
    if data is None:
        return out
    if not isinstance(data, dict):
        out.append(Diagnostic(
            "ACE310", "cache entry must be a JSON object",
            location=str(path),
        ))
        return out
    unknown = sorted(set(data) - _CACHE_KEYS - _CACHE_OPTIONAL_KEYS)
    if unknown:
        out.append(Diagnostic(
            "ACE310",
            f"cache entry has unknown field(s) {unknown}",
            location=str(path),
        ))
    missing = sorted(_CACHE_KEYS - set(data))
    if missing:
        out.append(Diagnostic(
            "ACE310",
            f"cache entry is missing field(s) {missing}",
            location=str(path),
        ))
    if "objective" in data and not isinstance(
        data["objective"], (int, float)
    ):
        out.append(Diagnostic(
            "ACE310",
            f"cache entry objective must be a number, got "
            f"{data['objective']!r}",
            location=str(path),
        ))
    if "model" in data and not isinstance(data["model"], str):
        out.append(Diagnostic(
            "ACE310", "cache entry model must be a string",
            location=str(path),
        ))
    if "strategy" in data and not isinstance(data["strategy"], str):
        out.append(Diagnostic(
            "ACE310", "cache entry strategy must be a string",
            location=str(path),
        ))
    if "gpus" in data and (
        not isinstance(data["gpus"], int) or data["gpus"] < 1
    ):
        out.append(Diagnostic(
            "ACE310",
            f"cache entry gpus must be a positive int, got "
            f"{data['gpus']!r}",
            location=str(path),
        ))
    if "plan" in data:
        out.extend(lint_plan_dict(data["plan"], f"{path} plan"))
    return out


# ----------------------------------------------------------------------
# search checkpoints (ACE32x)
# ----------------------------------------------------------------------
def lint_checkpoint_file(path: Union[str, Path]) -> List[Diagnostic]:
    """Lint one ``SearchCheckpoint`` JSON file."""
    path = Path(path)
    data, out = _load_json(path, "ACE320")
    if data is None:
        return out
    if not isinstance(data, dict):
        return [Diagnostic(
            "ACE320", "checkpoint must be a JSON object",
            location=str(path),
        )]
    version = data.get("format_version")
    if version != 1:
        out.append(Diagnostic(
            "ACE321",
            f"unsupported checkpoint format version {version!r} "
            f"(expected 1)",
            location=str(path),
        ))
    unknown = sorted(set(data) - _CHECKPOINT_KEYS)
    if unknown:
        out.append(Diagnostic(
            "ACE322",
            f"checkpoint has unknown field(s) {unknown}",
            location=str(path),
        ))
    missing = sorted(
        {"stage_counts", "budget_kwargs"} - set(data)
    )
    if missing:
        out.append(Diagnostic(
            "ACE322",
            f"checkpoint is missing field(s) {missing}",
            location=str(path),
        ))
    stage_counts: List[int] = []
    raw_counts = data.get("stage_counts", [])
    if not isinstance(raw_counts, list) or any(
        not isinstance(c, int) or isinstance(c, bool) or c < 1
        for c in raw_counts
    ):
        out.append(Diagnostic(
            "ACE322",
            f"stage_counts must be a list of positive ints, got "
            f"{raw_counts!r}",
            location=str(path),
        ))
    else:
        stage_counts = raw_counts
    for key in ("budget_kwargs", "context"):
        if key in data and not isinstance(data[key], dict):
            out.append(Diagnostic(
                "ACE322",
                f"checkpoint field {key!r} must be a JSON object",
                location=str(path),
            ))
    completed = data.get("completed", {})
    completed_counts: List[int] = []
    if not isinstance(completed, dict):
        out.append(Diagnostic(
            "ACE322", "checkpoint completed must be a JSON object",
            location=str(path),
        ))
        completed = {}
    for key, payload in completed.items():
        loc = f"{path} completed[{key}]"
        try:
            count = int(key)
        except (TypeError, ValueError):
            out.append(Diagnostic(
                "ACE322",
                f"completed key {key!r} is not a stage count",
                location=loc,
            ))
            continue
        completed_counts.append(count)
        if not isinstance(payload, dict):
            out.append(Diagnostic(
                "ACE322",
                f"completed[{key}] must be a JSON object",
                location=loc,
            ))
            continue
        missing_result = sorted(_RESULT_KEYS - set(payload))
        if missing_result:
            out.append(Diagnostic(
                "ACE322",
                f"completed[{key}] is missing field(s) {missing_result}",
                location=loc,
            ))
        if "best_config" in payload:
            out.extend(lint_plan_dict(
                payload["best_config"], f"{loc}.best_config"
            ))
        if "best_config" in payload and isinstance(
            payload["best_config"], dict
        ):
            stages = payload["best_config"].get("stages")
            if isinstance(stages, list) and len(stages) != count:
                out.append(Diagnostic(
                    "ACE323",
                    f"completed[{key}] best_config has {len(stages)} "
                    f"stages, expected {count}",
                    location=loc,
                ))
    failures = data.get("failures", [])
    failed_counts: List[int] = []
    if not isinstance(failures, list):
        out.append(Diagnostic(
            "ACE322", "checkpoint failures must be a list",
            location=str(path),
        ))
        failures = []
    for i, failure in enumerate(failures):
        if not isinstance(failure, dict) or not {
            "num_stages", "error", "attempts"
        } <= set(failure):
            out.append(Diagnostic(
                "ACE322",
                f"failures[{i}] must carry num_stages/error/attempts",
                location=str(path),
            ))
            continue
        if isinstance(failure["num_stages"], int):
            failed_counts.append(failure["num_stages"])
    if stage_counts:
        stray = sorted(set(completed_counts) - set(stage_counts))
        if stray:
            out.append(Diagnostic(
                "ACE323",
                f"completed stage counts {stray} are absent from "
                f"stage_counts {sorted(stage_counts)}",
                location=str(path),
            ))
    # record_run removes a count's failure record on success, so a
    # count in both sets means the file was hand-edited or torn.
    both = sorted(set(completed_counts) & set(failed_counts))
    if both:
        out.append(Diagnostic(
            "ACE323",
            f"stage counts {both} appear as both completed and failed",
            location=str(path),
        ))
    return out


# ----------------------------------------------------------------------
# journaled requests (ACE33x)
# ----------------------------------------------------------------------
def lint_journal_file(path: Union[str, Path]) -> List[Diagnostic]:
    """Lint one ``<fingerprint>.request.json`` journal entry."""
    from ..service.protocol import PlanRequest, ProtocolError

    path = Path(path)
    data, out = _load_json(path, "ACE301")
    if data is None:
        return out
    try:
        request = PlanRequest.from_json(data)
    except ProtocolError as exc:
        out.append(Diagnostic(
            "ACE330", str(exc), location=str(path),
        ))
        return out
    if path.name.endswith(".request.json"):
        stem = path.name[: -len(".request.json")]
        expected = request.fingerprint()
        if stem != expected:
            out.append(Diagnostic(
                "ACE331",
                f"journal filename fingerprint {stem!r} does not match "
                f"the request's fingerprint {expected!r}",
                location=str(path),
                hint="the journal was renamed or its request edited",
            ))
    return out


# ----------------------------------------------------------------------
# telemetry run logs (ACE34x)
# ----------------------------------------------------------------------
def lint_run_log_file(path: Union[str, Path]) -> List[Diagnostic]:
    """Collect-all twin of ``repro.telemetry.validate_run_log``.

    Adds the registry check the raise-first validator cannot do: every
    event name must come from :mod:`repro.telemetry.events` (ACE343).
    """
    from ..telemetry import events as registry

    path = Path(path)
    out: List[Diagnostic] = []
    parsed: List[Tuple[int, str, dict]] = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as exc:
        return [Diagnostic(
            "ACE340",
            f"cannot read {path}: {type(exc).__name__}: {exc}",
            location=str(path),
        )]
    for lineno, line in enumerate(lines, start=1):
        loc = f"{path}:{lineno}"
        if not line.strip():
            out.append(Diagnostic(
                "ACE340", "blank line in run log", location=loc,
            ))
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            out.append(Diagnostic(
                "ACE340", f"invalid JSON: {exc}", location=loc,
            ))
            continue
        if not isinstance(data, dict):
            out.append(Diagnostic(
                "ACE341", "event must be a JSON object", location=loc,
            ))
            continue
        missing = [key for key in _RUN_LOG_KEYS if key not in data]
        if missing:
            out.append(Diagnostic(
                "ACE341", f"missing keys {missing}", location=loc,
            ))
            continue
        if not isinstance(data["name"], str) or not data["name"]:
            out.append(Diagnostic(
                "ACE341", "name must be a non-empty string", location=loc,
            ))
            continue
        if not isinstance(data["ts"], (int, float)) or data["ts"] < 0:
            out.append(Diagnostic(
                "ACE341", "ts must be a non-negative number", location=loc,
            ))
        if not isinstance(data["pid"], int):
            out.append(Diagnostic(
                "ACE341", "pid must be an int", location=loc,
            ))
        if not isinstance(data["attrs"], dict):
            out.append(Diagnostic(
                "ACE341", "attrs must be an object", location=loc,
            ))
        kind = data["kind"]
        if kind not in _EVENT_KINDS:
            out.append(Diagnostic(
                "ACE342",
                f"unknown event kind {kind!r} (expected one of "
                f"{sorted(_EVENT_KINDS)})",
                location=loc,
            ))
        if not registry.is_registered(data["name"]):
            out.append(Diagnostic(
                "ACE343",
                f"event name {data['name']!r} is not in the telemetry "
                f"registry",
                location=loc,
                hint="register it in repro/telemetry/events.py",
            ))
        if isinstance(data.get("attrs"), dict):
            parsed.append((lineno, data["name"], data["attrs"]))
    out.extend(_lint_fleet_events(parsed, path))
    return out


def _lint_fleet_events(
    parsed: List[Tuple[int, str, dict]], path: Path
) -> List[Diagnostic]:
    """Cross-event ``fleet.*`` invariants of a router run log (ACE41x).

    * every ``fleet.request.routed`` fingerprint must reach a
      ``fleet.request.completed`` — a routed request with no terminal
      event is exactly the "lost request" the fleet promises never to
      produce (ACE410);
    * every fleet event naming a replica must name one declared by
      ``fleet.start`` (or joined via ``fleet.ring.rebuilt``) — an
      undeclared name means two runs' logs were interleaved or an event
      was hand-edited (ACE411).
    """
    fleet = [
        (lineno, name, attrs)
        for lineno, name, attrs in parsed
        if name.startswith("fleet.")
    ]
    if not fleet:
        return []
    out: List[Diagnostic] = []
    declared: set = set()
    saw_start = False
    routed: dict = {}
    for lineno, name, attrs in fleet:
        loc = f"{path}:{lineno}"
        if name == "fleet.start":
            saw_start = True
            replicas = attrs.get("replicas")
            if isinstance(replicas, list):
                declared.update(r for r in replicas if isinstance(r, str))
        elif name == "fleet.ring.rebuilt":
            joined = attrs.get("joined")
            if isinstance(joined, str):
                declared.add(joined)
            replicas = attrs.get("replicas")
            if isinstance(replicas, list):
                declared.update(r for r in replicas if isinstance(r, str))
        elif name == "fleet.request.routed":
            fingerprint = attrs.get("fingerprint")
            if isinstance(fingerprint, str):
                routed.setdefault(fingerprint, []).append(lineno)
        elif name == "fleet.request.completed":
            fingerprint = attrs.get("fingerprint")
            if isinstance(fingerprint, str) and fingerprint in routed:
                pending = routed[fingerprint]
                if pending:
                    pending.pop(0)
                if not pending:
                    del routed[fingerprint]
        if saw_start:
            replica = attrs.get("replica")
            if isinstance(replica, str) and replica not in declared:
                out.append(Diagnostic(
                    "ACE411",
                    f"{name} references replica {replica!r}, which no "
                    f"fleet.start or fleet.ring.rebuilt declared",
                    location=loc,
                ))
    for fingerprint, pending in sorted(routed.items()):
        for lineno in pending:
            out.append(Diagnostic(
                "ACE410",
                f"request {fingerprint} was routed but never reached a "
                f"fleet.request.completed event",
                location=f"{path}:{lineno}",
                hint="a lost request: the router must always answer",
            ))
    return out


# ----------------------------------------------------------------------
# fleet state artifacts (ACE40x)
# ----------------------------------------------------------------------
#: Config fields that must be positive / non-negative, mirroring
#: ``FleetConfig.__post_init__``.
_FLEET_POSITIVE = ("vnodes", "request_timeout", "hedge_factor", "down_after")
_FLEET_NON_NEGATIVE = ("retries",)


def lint_fleet_state_file(path: Union[str, Path]) -> List[Diagnostic]:
    """Lint one ``*.fleet.json`` router state artifact (ACE40x)."""
    path = Path(path)
    loc = str(path)
    data, out = _load_json(path, "ACE401")
    if data is None:
        return out
    if not isinstance(data, dict):
        return [Diagnostic(
            "ACE401", "fleet state must be a JSON object", location=loc,
        )]
    missing = sorted(
        {"format_version", "fleet", "replicas"} - set(data)
    )
    if missing:
        out.append(Diagnostic(
            "ACE401",
            f"fleet state is missing field(s) {missing}",
            location=loc,
        ))
    version = data.get("format_version")
    if "format_version" in data and version != 1:
        out.append(Diagnostic(
            "ACE401",
            f"unsupported fleet state format_version {version!r} "
            f"(expected 1)",
            location=loc,
        ))
    config = data.get("fleet")
    if "fleet" in data and not isinstance(config, dict):
        out.append(Diagnostic(
            "ACE401", "fleet config must be a JSON object", location=loc,
        ))
        config = None
    if isinstance(config, dict):
        for key in _FLEET_POSITIVE:
            value = config.get(key)
            if value is not None and (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or value <= 0
            ):
                out.append(Diagnostic(
                    "ACE403",
                    f"fleet config {key!r} must be positive, got "
                    f"{value!r}",
                    location=loc,
                ))
        for key in _FLEET_NON_NEGATIVE:
            value = config.get(key)
            if value is not None and (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or value < 0
            ):
                out.append(Diagnostic(
                    "ACE403",
                    f"fleet config {key!r} must be >= 0, got {value!r}",
                    location=loc,
                ))
    replicas = data.get("replicas")
    if "replicas" in data and not isinstance(replicas, list):
        out.append(Diagnostic(
            "ACE401", "fleet replicas must be a list", location=loc,
        ))
        replicas = None
    if isinstance(replicas, list):
        if not replicas:
            out.append(Diagnostic(
                "ACE403",
                "fleet state declares zero replicas",
                location=loc,
                hint="a fleet needs at least one replica",
            ))
        names: List[str] = []
        for i, replica in enumerate(replicas):
            if not isinstance(replica, dict) or not isinstance(
                replica.get("name"), str
            ) or not replica.get("name"):
                out.append(Diagnostic(
                    "ACE401",
                    f"replicas[{i}] must be an object with a non-empty "
                    f"'name'",
                    location=loc,
                ))
                continue
            names.append(replica["name"])
            if "healthy" in replica and not isinstance(
                replica["healthy"], bool
            ):
                out.append(Diagnostic(
                    "ACE401",
                    f"replicas[{i}] 'healthy' must be a boolean",
                    location=loc,
                ))
        duplicates = sorted(
            {name for name in names if names.count(name) > 1}
        )
        if duplicates:
            out.append(Diagnostic(
                "ACE402",
                f"duplicate replica name(s) {duplicates}",
                location=loc,
                hint="replica names are ring identities; they must be "
                "unique",
            ))
    return out


# ----------------------------------------------------------------------
# churn timelines (ACE35x)
# ----------------------------------------------------------------------
def lint_churn_timeline_file(
    path: Union[str, Path],
) -> List[Diagnostic]:
    """Lint one ``*.churn.json`` timeline (Tier A, ``ACE35x``).

    Checks the schema (readable JSON object with ``seed`` and
    ``events``), the format version, time-ordering, per-event kind and
    payload validity, and warns when some prefix of the timeline
    preempts every node it ever mentions — a run replaying it will
    halt there until a join arrives.
    """
    from ..elastic.timeline import CHURN_FORMAT_VERSION, ChurnEvent

    path = Path(path)
    loc = str(path)
    data, out = _load_json(path, "ACE350")
    if data is None:
        return out
    if not isinstance(data, dict) or not isinstance(
        data.get("events"), list
    ):
        return [Diagnostic(
            "ACE350",
            "churn timeline must be a JSON object with an "
            "'events' array",
            location=loc,
        )]
    version = data.get("format_version")
    if version != CHURN_FORMAT_VERSION:
        out.append(Diagnostic(
            "ACE351",
            f"unsupported churn timeline format_version {version!r} "
            f"(expected {CHURN_FORMAT_VERSION})",
            location=loc,
        ))
    events: List[ChurnEvent] = []
    for i, raw in enumerate(data["events"]):
        if not isinstance(raw, dict):
            out.append(Diagnostic(
                "ACE353",
                f"event #{i} is not a JSON object",
                location=loc,
            ))
            continue
        try:
            events.append(ChurnEvent.from_dict(raw))
        except (KeyError, TypeError, ValueError) as exc:
            out.append(Diagnostic(
                "ACE353",
                f"event #{i} is invalid: {exc}",
                location=loc,
                attrs={"index": i, "kind": raw.get("kind")},
            ))
    times = [event.time for event in events]
    if any(b < a for a, b in zip(times, times[1:])):
        out.append(Diagnostic(
            "ACE352",
            "churn timeline events are not sorted by time",
            location=loc,
            hint="sort events by their 'time' field",
        ))
    # Total preemption: with a recorded cluster size, count nodes
    # exactly; otherwise fall back to the nodes the timeline mentions
    # (a timeline can't name the nodes it never touches).
    num_nodes = data.get("num_nodes")
    nodes_seen = {
        e.node_id for e in events if e.node_id is not None
    }
    preempted: set = set()
    for event in events:
        if event.kind == "node_preempt":
            preempted.add(event.node_id)
        elif event.kind == "node_join":
            preempted.discard(event.node_id)
        dark = (
            len(preempted) >= num_nodes
            if isinstance(num_nodes, int)
            else bool(nodes_seen) and preempted >= nodes_seen
        )
        if dark:
            out.append(Diagnostic(
                "ACE354",
                f"at t={event.time:g} every node the timeline "
                f"mentions is preempted; a replay halts there",
                severity="warning",
                location=loc,
                hint="add a node_join or keep one node alive",
            ))
            break
    return out


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def lint_artifact_path(path: Union[str, Path]) -> List[Diagnostic]:
    """Lint one artifact file, dispatching on its name/shape."""
    path = Path(path)
    name = path.name
    if name.endswith(".churn.json"):
        return lint_churn_timeline_file(path)
    if name.endswith(".fleet.json"):
        return lint_fleet_state_file(path)
    if name.endswith(".request.json"):
        return lint_journal_file(path)
    if name.endswith(".ckpt.json"):
        return lint_checkpoint_file(path)
    if name.endswith(".plan.json") and _is_fingerprint(
        name[: -len(".plan.json")]
    ):
        return lint_plan_cache_file(path)
    if name.endswith(".jsonl"):
        return lint_run_log_file(path)
    data, out = _load_json(path, "ACE301")
    if data is None:
        return out
    if isinstance(data, dict):
        if {"fleet", "replicas"} <= set(data):
            return lint_fleet_state_file(path)
        if {"events", "seed"} <= set(data):
            return lint_churn_timeline_file(path)
        if {"plan", "objective"} <= set(data):
            return lint_plan_cache_file(path)
        if {"stage_counts", "completed"} <= set(data) or {
            "stage_counts", "budget_kwargs"
        } <= set(data):
            return lint_checkpoint_file(path)
        if "protocol_version" in data and "model" in data:
            return lint_journal_file(path)
        if "stages" in data or "microbatch_size" in data:
            return lint_plan_dict(data, str(path))
    return [Diagnostic(
        "ACE301",
        f"unrecognized artifact shape in {name}",
        location=str(path),
        severity="warning",
        hint=(
            "expected a plan, cache entry (*.plan.json), checkpoint "
            "(*.ckpt.json), request journal (*.request.json), or "
            "run log (*.jsonl)"
        ),
    )]
