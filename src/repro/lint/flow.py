"""Tier-C flow-analysis core: module models, call graph, taint engine.

This module owns the *machinery* shared by the Tier-C rule packs in
:mod:`repro.lint.flow_rules`; it produces no diagnostics itself.

Three layers:

* **Module models** — every analyzed file becomes a
  :class:`ModuleModel`: its :class:`~repro.lint.source.ImportMap`,
  every function/method as a :class:`FunctionModel`, and every class
  as a :class:`ClassModel` carrying the attributes the concurrency
  rules care about (lock/condition/event attributes, thread-entry
  methods).
* **Call graph** — :meth:`Project.resolve_callee` resolves
  ``self.m(...)``, bare ``f(...)``, and ``mod.f(...)`` call sites to
  analyzed functions, lexically (no execution).  Calls it cannot
  resolve are a documented false-negative boundary.
* **Taint engine** — :class:`TaintEngine` runs a forward, branch-
  joining abstract interpretation over one function body.  The
  abstract value is a set of taint *kinds* (wall-clock, unseeded RNG,
  OS entropy, object identity, filesystem order, set-iteration order)
  plus bookkeeping tags (``param:i`` pseudo-kinds during summary
  computation, ``_set``/``_hash`` type tags).  Function summaries —
  which kinds a call returns, which parameters flow to the return
  value, and which parameters reach a sink inside the callee — give
  the engine one level of interprocedural reach through the call
  graph, per the Tier-C contract.

Determinism of the analysis itself is part of the contract: modules
are processed in sorted path order, functions in source order, and no
set iteration ever feeds an ordered output (summaries and reports are
built from lists; the final diagnostic order is the total sort in
:func:`repro.lint.diagnostics.sort_key`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple, Union

from .source import ImportMap, module_path_for, package_parts_for

# ---------------------------------------------------------------------
# taint kinds
# ---------------------------------------------------------------------
WALLCLOCK = "wallclock"
RNG = "rng"
ENTROPY = "entropy"
OBJECT_ID = "object-id"
FS_ORDER = "fs-order"
ITER_ORDER = "iter-order"

#: Kinds a ``sorted()`` (or other order-fixing reduction) removes.
ORDER_KINDS = frozenset((FS_ORDER, ITER_ORDER))

#: Every reportable kind.
TAINT_KINDS = frozenset(
    (WALLCLOCK, RNG, ENTROPY, OBJECT_ID, FS_ORDER, ITER_ORDER)
)

#: Type tags threaded through the same lattice but never reported.
SET_TAG = "_set"    # value is a set (iterating it is order-taint)
HASH_TAG = "_hash"  # value is a hashlib digest object

#: Pseudo-kind prefix marking "the value of parameter i" during
#: summary computation.
PARAM_PREFIX = "param:"

EMPTY: FrozenSet[str] = frozenset()


def param_kind(index: int) -> str:
    return f"{PARAM_PREFIX}{index}"


def real_kinds(kinds: FrozenSet[str]) -> FrozenSet[str]:
    """Reportable kinds only (tags and param pseudo-kinds dropped)."""
    return kinds & TAINT_KINDS


def param_indices(kinds: FrozenSet[str]) -> Tuple[int, ...]:
    return tuple(sorted(
        int(kind[len(PARAM_PREFIX):])
        for kind in kinds
        if kind.startswith(PARAM_PREFIX)
    ))


# ---------------------------------------------------------------------
# source / sanitizer tables
# ---------------------------------------------------------------------
#: Fully-resolved call paths that *produce* tainted values.
TAINT_SOURCE_CALLS: Dict[str, str] = {
    "time.time": WALLCLOCK,
    "time.time_ns": WALLCLOCK,
    "datetime.datetime.now": WALLCLOCK,
    "datetime.datetime.utcnow": WALLCLOCK,
    "datetime.datetime.today": WALLCLOCK,
    "datetime.date.today": WALLCLOCK,
    "os.urandom": ENTROPY,
    "uuid.uuid1": ENTROPY,
    "uuid.uuid4": ENTROPY,
    "random.SystemRandom": ENTROPY,
    "secrets.token_bytes": ENTROPY,
    "secrets.token_hex": ENTROPY,
    "id": OBJECT_ID,
    "os.listdir": FS_ORDER,
    "os.scandir": FS_ORDER,
    "glob.glob": FS_ORDER,
    "glob.iglob": FS_ORDER,
}

#: RNG constructors that are clean when (and only when) seeded.
SEEDED_CONSTRUCTORS = frozenset((
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
))

#: Attribute names that read filesystem order off a path-like object.
FS_ORDER_METHODS = frozenset(("iterdir", "glob", "rglob"))

#: Builtins that fix an ordering nondeterminism (reductions and sorts
#: whose result does not depend on input order).
ORDER_SANITIZERS = frozenset(("sorted", "min", "max", "sum", "frozenset"))

#: Builtins whose result carries no taint regardless of input.
FULL_SANITIZERS = frozenset(("len", "bool", "type", "isinstance"))

#: Receiver-mutating methods that fold argument taint into the
#: receiver's own taint.
MUTATOR_METHODS = frozenset((
    "append", "add", "extend", "insert", "update", "setdefault",
    "appendleft", "push", "put",
))

#: hashlib constructors (their return value is tagged ``_hash`` and
#: their data argument is a digest sink).
HASH_CONSTRUCTORS = frozenset((
    "hashlib.sha256", "hashlib.sha1", "hashlib.sha512", "hashlib.md5",
    "hashlib.blake2b", "hashlib.blake2s", "hashlib.new",
))

#: Function-name patterns whose *return value* is a serialization /
#: digest sink.
TO_JSON_NAMES = frozenset(("to_json", "to_dict"))
FINGERPRINT_NAMES = frozenset(("fingerprint", "digest", "cache_key"))


# ---------------------------------------------------------------------
# models
# ---------------------------------------------------------------------
@dataclass
class FunctionModel:
    """One analyzed function or method."""

    qualname: str               # "f" or "Class.m"
    name: str
    node: ast.AST               # FunctionDef / AsyncFunctionDef
    class_name: Optional[str]
    params: Tuple[str, ...]     # positional params, "self" excluded
    lineno: int

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassModel:
    """Per-class facts the concurrency rules consume."""

    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionModel] = field(default_factory=dict)
    #: self attributes assigned ``threading.Lock/RLock/Condition`` in
    #: ``__init__`` — the lock names whose ``with`` bodies define the
    #: protected-attribute set.
    lock_attrs: Tuple[str, ...] = ()
    #: The subset of ``lock_attrs`` that are Conditions (their
    #: ``.wait``/``.wait_for`` releases the lock, so it is not a
    #: blocking-under-lock violation).
    condition_attrs: Tuple[str, ...] = ()
    #: self attributes assigned ``threading.Event()``.
    event_attrs: Tuple[str, ...] = ()
    #: self attributes assigned ``threading.Thread(...)``.
    thread_attrs: Tuple[str, ...] = ()


@dataclass
class ModuleModel:
    """One parsed module plus its lexical facts."""

    filename: str
    module_path: str            # posix path below repro/ (or bare name)
    source: str
    tree: ast.Module
    imports: ImportMap
    functions: Dict[str, FunctionModel] = field(default_factory=dict)
    classes: Dict[str, ClassModel] = field(default_factory=dict)
    #: Module-level names bound to ``threading.Lock()``/``RLock()``.
    lock_globals: Tuple[str, ...] = ()
    #: Dotted module name ("repro.service.daemon") for cross-module
    #: call resolution; empty for fixture files outside the package.
    dotted: str = ""


Summary = Tuple[FrozenSet[str], Tuple[int, ...], Tuple[Tuple[int, str], ...]]
#: (returned kinds, params flowing to return, (param, sink-code) pairs)

EMPTY_SUMMARY: Summary = (EMPTY, (), ())


def _positional_params(node) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names)


def build_module(
    source: str,
    filename: str,
    *,
    module_path: Optional[str] = None,
) -> ModuleModel:
    """Parse one file into a :class:`ModuleModel`."""
    if module_path is None:
        module_path = module_path_for(filename)
    tree = ast.parse(source, filename=filename)
    package = package_parts_for(module_path)
    imports = ImportMap(package).collect(tree)
    dotted = ""
    if module_path.endswith(".py") and "repro" in Path(filename).parts:
        stem = module_path[:-3].replace("/", ".")
        if stem.endswith(".__init__"):
            stem = stem[: -len(".__init__")]
        dotted = f"repro.{stem}"
    module = ModuleModel(
        filename=filename,
        module_path=module_path,
        source=source,
        tree=tree,
        imports=imports,
        dotted=dotted,
    )
    lock_globals: List[str] = []
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[stmt.name] = FunctionModel(
                qualname=stmt.name,
                name=stmt.name,
                node=stmt,
                class_name=None,
                params=_positional_params(stmt),
                lineno=stmt.lineno,
            )
        elif isinstance(stmt, ast.ClassDef):
            _build_class(module, stmt)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and isinstance(
                stmt.value, ast.Call
            ):
                ctor = imports.resolve(stmt.value.func)
                if ctor in ("threading.Lock", "threading.RLock"):
                    lock_globals.append(target.id)
    module.lock_globals = tuple(lock_globals)
    return module


def _build_class(module: ModuleModel, node: ast.ClassDef) -> None:
    model = ClassModel(name=node.name, node=node)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = FunctionModel(
                qualname=f"{node.name}.{item.name}",
                name=item.name,
                node=item,
                class_name=node.name,
                params=_positional_params(item),
                lineno=item.lineno,
            )
            model.methods[item.name] = fn
            module.functions[fn.qualname] = fn
    locks: List[str] = []
    conditions: List[str] = []
    events: List[str] = []
    threads: List[str] = []
    # Sync primitives assigned to self anywhere in the class body
    # (conventionally __init__, but start()/reset() patterns count).
    for item in ast.walk(node):
        if not isinstance(item, ast.Assign) or len(item.targets) != 1:
            continue
        target = item.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        if not isinstance(item.value, ast.Call):
            continue
        ctor = module.imports.resolve(item.value.func)
        if ctor in ("threading.Lock", "threading.RLock"):
            if target.attr not in locks:
                locks.append(target.attr)
        elif ctor == "threading.Condition":
            if target.attr not in conditions:
                conditions.append(target.attr)
        elif ctor == "threading.Event":
            if target.attr not in events:
                events.append(target.attr)
        elif ctor in ("threading.Thread", "threading.Timer"):
            if target.attr not in threads:
                threads.append(target.attr)
    # A Condition wraps a lock: its with-body protects attributes too.
    model.lock_attrs = tuple(locks + conditions)
    model.condition_attrs = tuple(conditions)
    model.event_attrs = tuple(events)
    model.thread_attrs = tuple(threads)
    module.classes[node.name] = model


# ---------------------------------------------------------------------
# project: modules + call graph + summaries
# ---------------------------------------------------------------------
class Project:
    """Every analyzed module, with cross-module call resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleModel] = {}
        self._by_dotted: Dict[str, ModuleModel] = {}
        self.summaries: Dict[Tuple[str, str], Summary] = {}

    # -- construction --------------------------------------------------
    def add(self, module: ModuleModel) -> None:
        self.modules[module.module_path] = module
        if module.dotted:
            self._by_dotted[module.dotted] = module

    @classmethod
    def from_sources(
        cls, sources: List[Tuple[str, str, Optional[str]]]
    ) -> "Project":
        """Build from ``(source, filename, module_path)`` triples."""
        project = cls()
        for source, filename, module_path in sources:
            project.add(
                build_module(source, filename, module_path=module_path)
            )
        project.compute_summaries()
        return project

    @classmethod
    def from_paths(cls, paths: List[Union[str, Path]]) -> "Project":
        project = cls()
        for path in sorted(str(p) for p in paths):
            project.add(build_module(
                Path(path).read_text(encoding="utf-8"), path
            ))
        project.compute_summaries()
        return project

    # -- call resolution -----------------------------------------------
    def resolve_callee(
        self,
        module: ModuleModel,
        func_expr: ast.AST,
        current_class: Optional[str],
    ) -> Optional[Tuple[ModuleModel, FunctionModel]]:
        """The analyzed function a call expression targets, if any."""
        # self.m(...) -> a method on the enclosing class.
        if (
            isinstance(func_expr, ast.Attribute)
            and isinstance(func_expr.value, ast.Name)
            and func_expr.value.id == "self"
            and current_class is not None
        ):
            cls_model = module.classes.get(current_class)
            if cls_model is not None:
                target = cls_model.methods.get(func_expr.attr)
                if target is not None:
                    return module, target
            return None
        dotted = module.imports.resolve(func_expr)
        if dotted is None:
            # Bare name: a module-level function, or a class in this
            # module (constructor calls resolve to __init__ for the
            # param-sink check only — skipped for now).
            if isinstance(func_expr, ast.Name):
                target = module.functions.get(func_expr.id)
                if target is not None and not target.is_method:
                    return module, target
            return None
        # from repro.x import f  /  from . import x; x.f(...)
        head, _, leaf = dotted.rpartition(".")
        owner = self._by_dotted.get(head)
        if owner is None:
            # "from repro.service import daemon" + daemon.plan(...) —
            # the dotted path is repro.service.daemon.plan.
            owner = self._by_dotted.get(head) or self._by_dotted.get(
                dotted
            )
        if owner is not None and leaf in owner.functions:
            target = owner.functions[leaf]
            if not target.is_method:
                return owner, target
        return None

    def summary_for(
        self, module: ModuleModel, fn: FunctionModel
    ) -> Summary:
        return self.summaries.get(
            (module.module_path, fn.qualname), EMPTY_SUMMARY
        )

    # -- summaries -----------------------------------------------------
    def compute_summaries(self, rounds: int = 2) -> None:
        """Fixed number of deterministic rounds over every function.

        Round 1 computes each function's local summary with empty
        callee summaries; round 2 re-runs with round-1 summaries
        visible, giving the engine its one level of interprocedural
        reach (a second level accrues for call chains that happen to
        be processed in order — harmless over-approximation).
        """
        for _ in range(rounds):
            next_summaries: Dict[Tuple[str, str], Summary] = {}
            for module_path in sorted(self.modules):
                module = self.modules[module_path]
                for qualname in module.functions:
                    fn = module.functions[qualname]
                    next_summaries[(module_path, qualname)] = (
                        self._summarize(module, fn)
                    )
            self.summaries = next_summaries

    def _summarize(
        self, module: ModuleModel, fn: FunctionModel
    ) -> Summary:
        env = {
            name: frozenset((param_kind(i),))
            for i, name in enumerate(fn.params)
        }
        sink_hits: List[Tuple[int, str]] = []

        def record(
            code: str, node: ast.AST, kinds: FrozenSet[str], via: str
        ) -> None:
            for index in param_indices(kinds):
                if (index, code) not in sink_hits:
                    sink_hits.append((index, code))

        engine = TaintEngine(self, module, fn, report=record)
        returned = engine.run(env)
        return (
            real_kinds(returned),
            param_indices(returned),
            tuple(sink_hits),
        )


# ---------------------------------------------------------------------
# the taint engine
# ---------------------------------------------------------------------
class TaintEngine:
    """Forward taint interpretation over one function body.

    ``report(code, node, kinds)`` is called for every sink reached by
    a non-empty taint set; pass ``None`` to run silently (summary
    computation uses a recorder that only keeps param pseudo-kinds).
    """

    def __init__(
        self,
        project: Project,
        module: ModuleModel,
        fn: FunctionModel,
        *,
        report: Optional[Callable] = None,
    ) -> None:
        self.project = project
        self.module = module
        self.fn = fn
        self.report = report
        self._return_taint: FrozenSet[str] = EMPTY
        self._reported: List[Tuple[str, int, int]] = []

    # -- entry ---------------------------------------------------------
    def run(
        self, env: Optional[Dict[str, FrozenSet[str]]] = None
    ) -> FrozenSet[str]:
        env = dict(env or {})
        self._interp_body(self.fn.node.body, env)
        return self._return_taint

    # -- statements ------------------------------------------------------
    def _interp_body(self, stmts, env) -> None:
        for stmt in stmts:
            self._interp_stmt(stmt, env)

    def _merge(self, env, *branches) -> None:
        keys: List[str] = list(env)
        for branch in branches:
            for key in branch:
                if key not in keys:
                    keys.append(key)
        for key in keys:
            merged = env.get(key, EMPTY)
            for branch in branches:
                merged = merged | branch.get(key, EMPTY)
            env[key] = merged

    def _interp_stmt(self, stmt, env) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(
                    stmt.target, self._eval(stmt.value, env), env
                )
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, env)
            current = self._read_target(stmt.target, env)
            self._assign(stmt.target, current | value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                kinds = self._eval(stmt.value, env)
                self._return_taint = self._return_taint | kinds
                self._check_return_sink(stmt, kinds)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env, else_env = dict(env), dict(env)
            self._interp_body(stmt.body, then_env)
            self._interp_body(stmt.orelse, else_env)
            self._merge(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taint = self._eval(stmt.iter, env)
            element = iter_taint - frozenset((SET_TAG,))
            if SET_TAG in iter_taint:
                element = element | frozenset((ITER_ORDER,))
            # Two passes pick up loop-carried taint.
            for _ in range(2):
                self._assign(stmt.target, element, env)
                body_env = dict(env)
                self._interp_body(stmt.body, body_env)
                self._merge(env, body_env)
            self._interp_body(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            for _ in range(2):
                body_env = dict(env)
                self._interp_body(stmt.body, body_env)
                self._merge(env, body_env)
            self._interp_body(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, ctx, env)
            self._interp_body(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._interp_body(stmt.body, body_env)
            handler_envs = []
            for handler in stmt.handlers:
                handler_env = dict(body_env)
                if handler.name:
                    handler_env[handler.name] = EMPTY
                self._interp_body(handler.body, handler_env)
                handler_envs.append(handler_env)
            self._merge(env, body_env, *handler_envs)
            self._interp_body(stmt.orelse, env)
            self._interp_body(stmt.finalbody, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # Nested function/class definitions are analyzed on their own;
        # globals/nonlocals/imports/pass/break/continue carry no taint.

    def _assign(self, target, kinds: FrozenSet[str], env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = kinds
        elif isinstance(target, ast.Attribute):
            key = self._attr_key(target)
            if key is not None:
                env[key] = kinds
        elif isinstance(target, ast.Subscript):
            # d[k] = v taints the container.
            base = self._read_target(target.value, env)
            self._assign(target.value, base | kinds, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Starred):
                    element = element.value
                self._assign(element, kinds, env)

    def _read_target(self, target, env) -> FrozenSet[str]:
        if isinstance(target, ast.Name):
            return env.get(target.id, EMPTY)
        if isinstance(target, ast.Attribute):
            key = self._attr_key(target)
            if key is not None:
                return env.get(key, EMPTY)
        if isinstance(target, ast.Subscript):
            return self._read_target(target.value, env)
        return EMPTY

    def _attr_key(self, node: ast.Attribute) -> Optional[str]:
        if isinstance(node.value, ast.Name):
            return f"{node.value.id}.{node.attr}"
        return None

    # -- expressions -----------------------------------------------------
    def _eval(self, node, env) -> FrozenSet[str]:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            return env.get(node.id, EMPTY)
        if isinstance(node, ast.Attribute):
            key = self._attr_key(node)
            if key is not None and key in env:
                return env[key]
            return self._eval(node.value, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, (ast.List, ast.Tuple)):
            out = EMPTY
            for element in node.elts:
                if isinstance(element, ast.Starred):
                    element = element.value
                out = out | self._eval(element, env)
            return out
        if isinstance(node, ast.Set):
            out = frozenset((SET_TAG,))
            for element in node.elts:
                out = out | self._eval(element, env)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key, value in zip(node.keys, node.values):
                out = out | self._eval(key, env) | self._eval(value, env)
            return out
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, env, SET_TAG not in EMPTY)
        if isinstance(node, ast.SetComp):
            return self._eval_comprehension(node, env, False) | frozenset(
                (SET_TAG,)
            )
        if isinstance(node, ast.DictComp):
            comp_env = dict(env)
            for generator in node.generators:
                self._bind_comprehension(generator, comp_env)
            return (
                self._eval(node.key, comp_env)
                | self._eval(node.value, comp_env)
            )
        if isinstance(node, ast.BinOp):
            return self._eval(node.left, env) | self._eval(node.right, env)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env)
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for value in node.values:
                out = out | self._eval(value, env)
            return out
        if isinstance(node, ast.Compare):
            # A comparison result is a bool; ordering taint does not
            # survive, but identity/time taint does (x == id(y)).
            out = self._eval(node.left, env)
            for comparator in node.comparators:
                out = out | self._eval(comparator, env)
            return out - ORDER_KINDS - frozenset((SET_TAG,))
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return self._eval(node.body, env) | self._eval(
                node.orelse, env
            )
        if isinstance(node, ast.Subscript):
            return self._eval(node.value, env) - frozenset((SET_TAG,))
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out = out | self._eval(value.value, env)
            return out
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value, env)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            self._assign(node.target, value, env)
            return value
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(node, ast.Await):
            return self._eval(node.value, env)
        return EMPTY

    def _eval_comprehension(self, node, env, _unused) -> FrozenSet[str]:
        comp_env = dict(env)
        for generator in node.generators:
            self._bind_comprehension(generator, comp_env)
        return self._eval(node.elt, comp_env)

    def _bind_comprehension(self, generator, comp_env) -> None:
        iter_taint = self._eval(generator.iter, comp_env)
        element = iter_taint - frozenset((SET_TAG,))
        if SET_TAG in iter_taint:
            element = element | frozenset((ITER_ORDER,))
        self._assign(generator.target, element, comp_env)
        for condition in generator.ifs:
            self._eval(condition, comp_env)

    # -- calls -----------------------------------------------------------
    def _resolve_path(self, func_expr) -> Optional[str]:
        path = self.module.imports.resolve(func_expr)
        if path is None and isinstance(func_expr, ast.Name):
            return func_expr.id
        return path

    def _arg_taints(self, node: ast.Call, env) -> List[FrozenSet[str]]:
        return [self._eval(arg, env) for arg in node.args]

    def _eval_call(self, node: ast.Call, env) -> FrozenSet[str]:
        path = self._resolve_path(node.func)
        arg_taints = self._arg_taints(node, env)
        kw_taints = [
            (kw.arg, self._eval(kw.value, env)) for kw in node.keywords
        ]
        all_args = arg_taints + [t for _, t in kw_taints]
        union_args = EMPTY
        for taint in all_args:
            union_args = union_args | taint

        self._check_call_sinks(
            node, path, arg_taints, kw_taints, env
        )

        if path is not None:
            # Direct sources.
            kind = TAINT_SOURCE_CALLS.get(path)
            if kind is not None:
                return frozenset((kind,))
            if path in SEEDED_CONSTRUCTORS:
                if node.args or node.keywords:
                    return EMPTY
                return frozenset((RNG,))
            if path.startswith("random.") or path.startswith(
                "numpy.random."
            ):
                return frozenset((RNG,))
            if path in HASH_CONSTRUCTORS:
                return frozenset((HASH_TAG,))
            # Sanitizers.
            if path in FULL_SANITIZERS:
                return EMPTY
            if path in ORDER_SANITIZERS:
                return (union_args - ORDER_KINDS) - frozenset((SET_TAG,))
            if path in ("set", "frozenset"):
                return union_args | frozenset((SET_TAG,))
            if path in ("list", "tuple"):
                # list(a_set) inherits the set's iteration order.
                if SET_TAG in union_args:
                    return (
                        union_args - frozenset((SET_TAG,))
                    ) | frozenset((ITER_ORDER,))
                return union_args
            if path == "dict":
                return union_args - frozenset((SET_TAG,))

        # Analyzed callee: apply its summary.
        resolved = self.project.resolve_callee(
            self.module, node.func, self.fn.class_name
        )
        if resolved is not None:
            callee_module, callee = resolved
            returns, flows, param_sinks = self.project.summary_for(
                callee_module, callee
            )
            out = frozenset(returns)
            for index in flows:
                if index < len(arg_taints):
                    out = out | arg_taints[index]
            # Keyword args matched by name.
            name_to_index = {
                name: i for i, name in enumerate(callee.params)
            }
            for kw_name, taint in kw_taints:
                index = name_to_index.get(kw_name or "")
                if index is not None and index in flows:
                    out = out | taint
            for index, code in param_sinks:
                taint = EMPTY
                if index < len(arg_taints):
                    taint = arg_taints[index]
                else:
                    for kw_name, kw_taint in kw_taints:
                        if name_to_index.get(kw_name or "") == index:
                            taint = kw_taint
                if real_kinds(taint) or param_indices(taint):
                    self._report(
                        code, node, taint,
                        via=f"a sink inside {callee.qualname}()",
                    )
            return out

        # Method call on a tainted receiver keeps the receiver's taint
        # (now.isoformat(), rng.random(), path-order chains) and
        # mutator methods fold argument taint back into the receiver.
        if isinstance(node.func, ast.Attribute):
            receiver_taint = self._eval(node.func.value, env)
            if node.func.attr in FS_ORDER_METHODS:
                return frozenset((FS_ORDER,))
            if node.func.attr in MUTATOR_METHODS:
                base = self._read_target(node.func.value, env)
                self._assign(
                    node.func.value, base | union_args, env
                )
                return EMPTY
            if node.func.attr in ("sort",):
                base = self._read_target(node.func.value, env)
                self._assign(
                    node.func.value, base - ORDER_KINDS, env
                )
                return EMPTY
            if node.func.attr in ("pop", "popitem") and SET_TAG in (
                receiver_taint
            ):
                return (
                    receiver_taint - frozenset((SET_TAG,))
                ) | frozenset((ITER_ORDER,))
            return (
                (receiver_taint | union_args)
                - frozenset((SET_TAG, HASH_TAG))
            )

        # Unknown callable: conservative propagation of argument taint.
        return union_args - frozenset((SET_TAG, HASH_TAG))

    # -- sinks -----------------------------------------------------------
    def _check_call_sinks(
        self, node, path, arg_taints, kw_taints, env
    ) -> None:
        def taint_at(index: int) -> FrozenSet[str]:
            return (
                arg_taints[index] if index < len(arg_taints) else EMPTY
            )

        if path in ("json.dump", "json.dumps"):
            self._sink("ACE920", node, taint_at(0), "json payload")
            return
        if path is not None and (
            path == "write_json_atomic"
            or path.endswith(".write_json_atomic")
        ):
            payload = taint_at(1)
            for kw_name, taint in kw_taints:
                if kw_name == "payload":
                    payload = payload | taint
            self._sink(
                "ACE920", node, payload, "write_json_atomic payload"
            )
            return
        if path in HASH_CONSTRUCTORS:
            combined = EMPTY
            for taint in arg_taints:
                combined = combined | taint
            self._sink("ACE921", node, combined, "digest input")
            return
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "update":
                receiver = self._eval(node.func.value, env)
                if HASH_TAG in receiver:
                    combined = EMPTY
                    for taint in arg_taints:
                        combined = combined | taint
                    self._sink(
                        "ACE921", node, combined, "digest input"
                    )
                    return
            if attr == "emit":
                # First positional arg is the event name; everything
                # else is payload.
                combined = EMPTY
                for taint in arg_taints[1:]:
                    combined = combined | taint
                for _, taint in kw_taints:
                    combined = combined | taint
                self._sink(
                    "ACE922", node, combined, "telemetry event payload"
                )

    def _check_return_sink(self, stmt, kinds: FrozenSet[str]) -> None:
        if self.fn.name in TO_JSON_NAMES:
            self._sink(
                "ACE920", stmt, kinds,
                f"return value of {self.fn.qualname}()",
            )
        elif self.fn.name in FINGERPRINT_NAMES:
            self._sink(
                "ACE921", stmt, kinds,
                f"return value of {self.fn.qualname}()",
            )

    def _sink(
        self, code: str, node, kinds: FrozenSet[str], what: str
    ) -> None:
        if real_kinds(kinds) or param_indices(kinds):
            self._report(code, node, kinds, via=what)

    def _report(
        self, code: str, node, kinds: FrozenSet[str], *, via: str = ""
    ) -> None:
        if self.report is None:
            return
        key = (code, node.lineno, getattr(node, "col_offset", 0))
        if key in self._reported:
            return
        self._reported.append(key)
        self.report(code, node, kinds, via)
