"""Simulated kernel profiler.

The paper profiles each operator 50 times on real GPUs under every
partition degree, plus collective times under every group size, and
stores the averages in a reusable database (§3.3, §5.3).  Without GPUs
we *simulate* that measurement: the ground-truth cost functions in
:mod:`repro.profiling.cost` play the hardware, and seeded multiplicative
noise plays measurement jitter.  A linear ``fixed + mbs * slope`` model
is then fitted from two microbatch sizes, exactly the kind of fit a
profile-and-interpolate planner performs.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Optional

import numpy as np

from ..cluster.collectives import CollectiveCostModel
from ..cluster.topology import ClusterSpec
from ..ir.graph import OpGraph
from ..ir.ops import OpSpec
from .cost import op_bwd_time, op_fwd_time, op_signature
from .database import (
    CollectiveProfile,
    OpProfile,
    ProfileDatabase,
    tp_levels,
)

#: Microbatch sizes the linear time model is fitted from.
FIT_POINTS = (1, 9)
#: Byte sizes the collective alpha-beta model is fitted from.
COLLECTIVE_FIT_BYTES = (1 << 20, 64 << 20)


class SimulatedProfiler:
    """Builds :class:`ProfileDatabase` entries from simulated runs.

    Args:
        cluster: the hardware to profile on.
        seed: measurement-noise seed (deterministic database).
        repeats: averaged measurement count per data point (paper: 50).
        noise: relative std-dev of a single measurement.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        seed: int = 0,
        repeats: int = 50,
        noise: float = 0.03,
        parallel_workers: int = 1,
    ) -> None:
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        if parallel_workers < 1:
            raise ValueError("parallel_workers must be >= 1")
        self.cluster = cluster
        self.seed = seed
        self.repeats = repeats
        self.noise = noise
        #: The paper runs operator profiling sequentially and names its
        #: parallelization as future work (§5.3); modelling N workers
        #: divides the simulated wall-clock accordingly.
        self.parallel_workers = parallel_workers
        self.profile_seconds = 0.0  # simulated device-time spent profiling

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def profile(
        self,
        graph: OpGraph,
        *,
        database: Optional[ProfileDatabase] = None,
    ) -> ProfileDatabase:
        """Profile every unique op of ``graph`` plus all collectives.

        Passing an existing ``database`` reuses its records (ops already
        profiled are skipped), reproducing the paper's cross-experiment
        database reuse.
        """
        max_tp = self.cluster.num_gpus
        if database is None:
            database = ProfileDatabase(max_tp=max_tp, precision=graph.precision)
        if database.precision != graph.precision:
            raise ValueError(
                f"database precision {database.precision!r} does not match "
                f"graph precision {graph.precision!r}"
            )
        self._profile_ops(graph, database)
        self._profile_collectives(database)
        return database

    @property
    def profile_wall_seconds(self) -> float:
        """Simulated wall-clock cost of the profiling performed so far.

        Sequential profiling (the paper's implementation) equals the
        accumulated device time; ``parallel_workers > 1`` models the
        paper's future-work parallelization with ideal scaling.
        """
        return self.profile_seconds / self.parallel_workers

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def _profile_ops(self, graph: OpGraph, database: ProfileDatabase) -> None:
        unique: Dict[str, OpSpec] = {}
        for op in graph.ops:
            unique.setdefault(op_signature(op), op)
        levels = tp_levels(database.max_tp)
        for signature, op in unique.items():
            if database.has_op(signature):
                continue
            database.ops[signature] = self._measure_op(
                op, graph.precision, levels, signature
            )

    def _measure_op(
        self,
        op: OpSpec,
        precision: str,
        levels: Iterable[int],
        signature: str,
    ) -> OpProfile:
        levels = list(levels)
        num_opts = op.num_partition_options
        shape = (len(levels), num_opts)
        fwd_fixed = np.zeros(shape)
        fwd_slope = np.zeros(shape)
        bwd_fixed = np.zeros(shape)
        bwd_slope = np.zeros(shape)
        rng = np.random.default_rng((self.seed, zlib.crc32(signature.encode())))
        lo, hi = FIT_POINTS
        for li, tp in enumerate(levels):
            for opt in range(num_opts):
                fwd_lo = self._measure(
                    op_fwd_time(op, self.cluster.device, precision, lo, tp, opt),
                    rng,
                )
                fwd_hi = self._measure(
                    op_fwd_time(op, self.cluster.device, precision, hi, tp, opt),
                    rng,
                )
                bwd_lo = self._measure(
                    op_bwd_time(op, self.cluster.device, precision, lo, tp, opt),
                    rng,
                )
                bwd_hi = self._measure(
                    op_bwd_time(op, self.cluster.device, precision, hi, tp, opt),
                    rng,
                )
                fwd_fixed[li, opt], fwd_slope[li, opt] = self._fit(
                    lo, fwd_lo, hi, fwd_hi
                )
                bwd_fixed[li, opt], bwd_slope[li, opt] = self._fit(
                    lo, bwd_lo, hi, bwd_hi
                )
        return OpProfile(
            fwd_fixed=fwd_fixed,
            fwd_slope=fwd_slope,
            bwd_fixed=bwd_fixed,
            bwd_slope=bwd_slope,
        )

    def _measure(self, true_time: float, rng: np.random.Generator) -> float:
        """Average of ``repeats`` noisy observations of ``true_time``."""
        jitter = rng.normal(0.0, self.noise, size=self.repeats)
        observed = true_time * (1.0 + jitter)
        self.profile_seconds += float(observed.sum())
        return float(observed.mean())

    @staticmethod
    def _fit(x0: float, y0: float, x1: float, y1: float) -> tuple:
        """Two-point linear fit clamped to non-negative coefficients."""
        slope = max(0.0, (y1 - y0) / (x1 - x0))
        fixed = max(0.0, y0 - slope * x0)
        return fixed, slope

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _profile_collectives(self, database: ProfileDatabase) -> None:
        model = CollectiveCostModel(self.cluster)
        levels = tp_levels(database.max_tp)
        rng = np.random.default_rng((self.seed, 0xC0))
        lo_b, hi_b = COLLECTIVE_FIT_BYTES

        def fit_kind(kind: str, timer) -> CollectiveProfile:
            latency = np.zeros(len(levels))
            inv_bw = np.zeros(len(levels))
            for li, group in enumerate(levels):
                if group == 1:
                    continue
                t_lo = self._measure(timer(lo_b, group), rng)
                t_hi = self._measure(timer(hi_b, group), rng)
                lat, slope = self._fit(lo_b, t_lo, hi_b, t_hi)
                latency[li] = lat
                inv_bw[li] = slope
            return CollectiveProfile(latency=latency, inv_bandwidth=inv_bw)

        if "allreduce" not in database.collectives:
            database.collectives["allreduce"] = fit_kind(
                "allreduce", model.allreduce_time
            )
        if "allgather" not in database.collectives:
            database.collectives["allgather"] = fit_kind(
                "allgather", model.allgather_time
            )
        if "p2p_intra" not in database.collectives:
            database.collectives["p2p_intra"] = self._fit_p2p(
                rng, self.cluster.intra_node, len(levels)
            )
        if "p2p_inter" not in database.collectives:
            database.collectives["p2p_inter"] = self._fit_p2p(
                rng, self.cluster.inter_node, len(levels)
            )

    def _fit_p2p(
        self, rng: np.random.Generator, link, num_levels: int
    ) -> CollectiveProfile:
        lo_b, hi_b = COLLECTIVE_FIT_BYTES
        t_lo = self._measure(link.transfer_time(lo_b), rng)
        t_hi = self._measure(link.transfer_time(hi_b), rng)
        lat, slope = self._fit(lo_b, t_lo, hi_b, t_hi)
        # p2p cost is group-size independent; replicate across levels so
        # CollectiveProfile.time(bytes, 2) works uniformly.
        return CollectiveProfile(
            latency=np.full(num_levels, lat),
            inv_bandwidth=np.full(num_levels, slope),
        )
