"""Ground-truth operator cost functions (roofline model).

This module is the *hardware truth* of the reproduction: both the
profiler (which adds measurement noise and fits a linear model into the
profile database) and the discrete-event runtime simulator (which plays
the role of real execution) derive their op times from these functions.
The planner never calls them directly — it only sees profiled data —
which is what makes the predicted-vs-actual experiments meaningful.
"""

from __future__ import annotations

import math
import zlib

from ..cluster.device import DeviceSpec
from ..ir.ops import OpSpec
from ..ir.tensor import dtype_bytes

#: Efficiency loss per doubling of tensor-parallel degree: splitting a
#: kernel shrinks its per-GPU tile sizes, lowering achieved FLOP rates.
TP_EFFICIENCY_PENALTY = 0.05

#: Backward kernels re-read saved activations and write two gradients,
#: roughly doubling HBM traffic relative to forward.
BWD_BYTES_RATIO = 2.0


def effective_tp(op: OpSpec, tp: int) -> int:
    """Degree the op's work is actually divided by under ``tp``.

    Ops whose ``max_tp`` is smaller than the group size are replicated
    on the extra devices (no further speedup, no extra comm).
    """
    if tp < 1:
        raise ValueError("tp must be >= 1")
    return min(tp, op.max_tp)


def tp_efficiency(tp: int) -> float:
    """Fraction of single-GPU kernel efficiency retained at degree ``tp``."""
    if tp < 1:
        raise ValueError("tp must be >= 1")
    return 1.0 / (1.0 + TP_EFFICIENCY_PENALTY * math.log2(tp))


def op_fwd_bytes(op: OpSpec, samples: float, elem_bytes: int, tp: int) -> float:
    """Forward-pass HBM traffic in bytes for ``samples`` samples."""
    etp = effective_tp(op, tp)
    activation = (op.saved_numel + op.out_numel) * samples * elem_bytes / etp
    weights = op.params * elem_bytes / etp
    return activation + weights


def option_bias(op: OpSpec, option_index: int) -> float:
    """Deterministic per-(op, partition-dim) kernel-efficiency bias.

    Real kernels achieve slightly different throughput depending on
    which dimension is split (tile shapes change).  This +/-3% bias is
    derived from a stable hash so the profiler and the ground-truth
    runtime agree on it — and it gives the fine-tuning pass's flexible
    tp-dimension choice (§4.2) a real signal to optimize.
    """
    opt = op.partition_options[min(option_index, op.num_partition_options - 1)]
    digest = zlib.crc32(f"{op.kind}|{op.flops:.6g}|{opt.name}".encode())
    return 1.0 + 0.03 * ((digest % 2001) / 1000.0 - 1.0)


def op_fwd_time(
    op: OpSpec,
    device: DeviceSpec,
    precision: str,
    samples: float,
    tp: int,
    option_index: int = 0,
) -> float:
    """Forward kernel time for ``samples`` samples at degree ``tp``."""
    if samples < 0:
        raise ValueError("samples must be non-negative")
    etp = effective_tp(op, tp)
    flops = op.flops * samples / etp
    compute = flops / (device.sustained_flops(precision) * tp_efficiency(etp))
    membound = op_fwd_bytes(op, samples, dtype_bytes(precision), tp)
    memory = membound / device.memory_bandwidth
    bias = option_bias(op, option_index) if etp > 1 else 1.0
    return max(compute, memory) * bias + device.kernel_overhead


def op_bwd_time(
    op: OpSpec,
    device: DeviceSpec,
    precision: str,
    samples: float,
    tp: int,
    option_index: int = 0,
) -> float:
    """Backward kernel time for ``samples`` samples at degree ``tp``."""
    if samples < 0:
        raise ValueError("samples must be non-negative")
    etp = effective_tp(op, tp)
    flops = op.bwd_flops * samples / etp
    compute = flops / (device.sustained_flops(precision) * tp_efficiency(etp))
    membound = (
        op_fwd_bytes(op, samples, dtype_bytes(precision), tp) * BWD_BYTES_RATIO
    )
    memory = membound / device.memory_bandwidth
    bias = option_bias(op, option_index) if etp > 1 else 1.0
    return max(compute, memory) * bias + device.kernel_overhead


def op_weight_bytes(op: OpSpec, elem_bytes: int, tp: int) -> float:
    """Per-device bytes of weights for this op at degree ``tp``."""
    return op.params * elem_bytes / effective_tp(op, tp)


def op_saved_bytes(op: OpSpec, samples: float, elem_bytes: int, tp: int) -> float:
    """Per-device bytes of saved activations for backward."""
    etp = effective_tp(op, tp)
    return op.saved_numel * samples * elem_bytes / etp


def op_signature(op: OpSpec) -> str:
    """Stable identity of an op's *cost* (not its name).

    Two ops with the same signature share one profile record; GPT's
    repeated layers collapse to a handful of unique signatures, which
    is what makes profiling 1K-layer models cheap.
    """
    comm = ";".join(
        f"{o.name},{o.fwd_comm_numel},{o.bwd_comm_numel},{int(o.shards_output)}"
        for o in op.partition_options
    )
    return (
        f"{op.kind}|f={op.flops:.6g}|bf={op.bwd_flops:.6g}|p={op.params}"
        f"|o={op.out_numel}|s={op.saved_numel}|mtp={op.max_tp}|{comm}"
    )
