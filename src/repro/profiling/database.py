"""Persistable profile database and its vectorized per-graph view.

The database maps *op signatures* to linear time models measured per
tensor-parallel degree, plus collective-communication coefficients per
group size.  ``ProfiledGraph`` gathers a graph's records into dense
numpy arrays so a configuration can be costed with a few vectorized
gathers — the property that lets Aceso evaluate thousands of
configurations per second (§3.3).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from ..ir.graph import OpGraph
from .cost import op_signature


def tp_level_index(tp: int) -> int:
    """Index of power-of-two degree ``tp`` into profile arrays."""
    if tp < 1 or tp & (tp - 1):
        raise ValueError(f"tp must be a power of two, got {tp}")
    return tp.bit_length() - 1


def tp_levels(max_tp: int) -> List[int]:
    """All power-of-two degrees up to and including ``max_tp``."""
    if max_tp < 1:
        raise ValueError("max_tp must be positive")
    return [1 << i for i in range(max_tp.bit_length())]


@dataclass
class OpProfile:
    """Linear time model of one op: ``time(mbs) = fixed + mbs * slope``.

    Arrays are indexed ``[tp_level, partition_option]``.
    """

    fwd_fixed: np.ndarray
    fwd_slope: np.ndarray
    bwd_fixed: np.ndarray
    bwd_slope: np.ndarray

    def __post_init__(self) -> None:
        shape = self.fwd_fixed.shape
        for arr in (self.fwd_slope, self.bwd_fixed, self.bwd_slope):
            if arr.shape != shape:
                raise ValueError("OpProfile arrays must share one shape")

    @property
    def num_tp_levels(self) -> int:
        return int(self.fwd_fixed.shape[0])

    @property
    def num_options(self) -> int:
        return int(self.fwd_fixed.shape[1])

    def to_json(self) -> dict:
        return {
            "fwd_fixed": self.fwd_fixed.tolist(),
            "fwd_slope": self.fwd_slope.tolist(),
            "bwd_fixed": self.bwd_fixed.tolist(),
            "bwd_slope": self.bwd_slope.tolist(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "OpProfile":
        return cls(
            fwd_fixed=np.asarray(data["fwd_fixed"], dtype=np.float64),
            fwd_slope=np.asarray(data["fwd_slope"], dtype=np.float64),
            bwd_fixed=np.asarray(data["bwd_fixed"], dtype=np.float64),
            bwd_slope=np.asarray(data["bwd_slope"], dtype=np.float64),
        )


@dataclass
class CollectiveProfile:
    """alpha-beta fit of one collective kind per group-size level.

    ``time(bytes, group) = latency[level(group)] + bytes * inv_bw[...]``.
    """

    latency: np.ndarray
    inv_bandwidth: np.ndarray

    def time(self, num_bytes: float, group_size: int) -> float:
        if group_size <= 1 or num_bytes <= 0:
            return 0.0
        level = tp_level_index(group_size)
        if level >= len(self.latency):
            raise ValueError(
                f"group size {group_size} exceeds profiled range"
            )
        return float(
            self.latency[level] + num_bytes * self.inv_bandwidth[level]
        )

    def to_json(self) -> dict:
        return {
            "latency": self.latency.tolist(),
            "inv_bandwidth": self.inv_bandwidth.tolist(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "CollectiveProfile":
        return cls(
            latency=np.asarray(data["latency"], dtype=np.float64),
            inv_bandwidth=np.asarray(data["inv_bandwidth"], dtype=np.float64),
        )


@dataclass
class ProfileDatabase:
    """All profiled measurements for one (cluster, precision) pair.

    The database is keyed by op *signature*, so it is reusable across
    models sharing operators and across searches over the same model —
    the paper's "profiled database can be reused" property (§3.3).
    """

    max_tp: int
    precision: str
    ops: Dict[str, OpProfile] = field(default_factory=dict)
    collectives: Dict[str, CollectiveProfile] = field(default_factory=dict)

    def has_op(self, signature: str) -> bool:
        return signature in self.ops

    def lookup(self, signature: str) -> OpProfile:
        try:
            return self.ops[signature]
        except KeyError:
            raise KeyError(
                f"op signature not profiled: {signature[:60]}..."
            ) from None

    def collective(self, kind: str) -> CollectiveProfile:
        try:
            return self.collectives[kind]
        except KeyError:
            raise KeyError(f"collective not profiled: {kind!r}") from None

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    def save(self, path: Union[str, Path]) -> None:
        """Persist as JSON (the paper's reusable profile database)."""
        payload = {
            "max_tp": self.max_tp,
            "precision": self.precision,
            "ops": {k: v.to_json() for k, v in self.ops.items()},
            "collectives": {
                k: v.to_json() for k, v in self.collectives.items()
            },
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ProfileDatabase":
        payload = json.loads(Path(path).read_text())
        return cls(
            max_tp=payload["max_tp"],
            precision=payload["precision"],
            ops={
                k: OpProfile.from_json(v)
                for k, v in payload["ops"].items()
            },
            collectives={
                k: CollectiveProfile.from_json(v)
                for k, v in payload["collectives"].items()
            },
        )


class ProfiledGraph:
    """Dense per-op profile arrays for one graph.

    Indexing: ``fwd_fixed[op, tp_level, option]`` etc.  Options beyond
    an op's real option count repeat its last option (same padding as
    :class:`~repro.ir.graph.GraphArrays`).
    """

    __slots__ = (
        "graph",
        "database",
        "fwd_fixed",
        "fwd_slope",
        "bwd_fixed",
        "bwd_slope",
    )

    def __init__(self, graph: OpGraph, database: ProfileDatabase) -> None:
        self.graph = graph
        self.database = database
        n = graph.num_ops
        num_levels = tp_level_index(database.max_tp) + 1
        max_opts = max(op.num_partition_options for op in graph.ops)
        shape = (n, num_levels, max_opts)
        self.fwd_fixed = np.zeros(shape)
        self.fwd_slope = np.zeros(shape)
        self.bwd_fixed = np.zeros(shape)
        self.bwd_slope = np.zeros(shape)
        for i, op in enumerate(graph.ops):
            record = database.lookup(op_signature(op))
            for j in range(max_opts):
                src = min(j, record.num_options - 1)
                self.fwd_fixed[i, :, j] = record.fwd_fixed[:, src]
                self.fwd_slope[i, :, j] = record.fwd_slope[:, src]
                self.bwd_fixed[i, :, j] = record.bwd_fixed[:, src]
                self.bwd_slope[i, :, j] = record.bwd_slope[:, src]
        for arr in (self.fwd_fixed, self.fwd_slope,
                    self.bwd_fixed, self.bwd_slope):
            arr.setflags(write=False)

    @property
    def num_tp_levels(self) -> int:
        return int(self.fwd_fixed.shape[1])
