"""Profiling substrate: cost functions, database, simulated profiler."""

from .cost import (
    BWD_BYTES_RATIO,
    TP_EFFICIENCY_PENALTY,
    effective_tp,
    op_bwd_time,
    op_fwd_bytes,
    op_fwd_time,
    op_saved_bytes,
    op_signature,
    op_weight_bytes,
    option_bias,
    tp_efficiency,
)
from .database import (
    CollectiveProfile,
    OpProfile,
    ProfileDatabase,
    ProfiledGraph,
    tp_level_index,
    tp_levels,
)
from .profiler import SimulatedProfiler

__all__ = [
    "BWD_BYTES_RATIO",
    "CollectiveProfile",
    "OpProfile",
    "ProfileDatabase",
    "ProfiledGraph",
    "SimulatedProfiler",
    "TP_EFFICIENCY_PENALTY",
    "effective_tp",
    "op_bwd_time",
    "op_fwd_bytes",
    "op_fwd_time",
    "op_saved_bytes",
    "op_signature",
    "op_weight_bytes",
    "option_bias",
    "tp_efficiency",
    "tp_level_index",
    "tp_levels",
]
