"""Forward/backward math for the numeric runtime.

A tiny, explicit autodiff vocabulary — linear, ReLU, mean-squared-error
— sufficient to *actually train* small models and check that the
parallelized executions (data/tensor/pipeline parallel, recomputation)
produce the same gradients as serial execution.  Everything is float64
so parallel reductions stay within tight tolerance of serial sums.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def linear_fwd(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray
) -> np.ndarray:
    """``y = x @ W + b`` with shapes (B, in), (in, out), (out,)."""
    if x.shape[1] != weight.shape[0]:
        raise ValueError(
            f"shape mismatch: x {x.shape} vs weight {weight.shape}"
        )
    return x @ weight + bias


def linear_bwd(
    x: np.ndarray,
    weight: np.ndarray,
    grad_out: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns (grad_x, grad_weight, grad_bias)."""
    grad_x = grad_out @ weight.T
    grad_weight = x.T @ grad_out
    grad_bias = grad_out.sum(axis=0)
    return grad_x, grad_weight, grad_bias


def relu_fwd(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_bwd(x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
    return grad_out * (x > 0.0)


def mse_loss_fwd(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error over all elements."""
    if pred.shape != target.shape:
        raise ValueError(
            f"shape mismatch: pred {pred.shape} vs target {target.shape}"
        )
    diff = pred - target
    return float((diff * diff).mean())


def mse_loss_bwd(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Gradient of the mean squared error w.r.t. ``pred``."""
    return 2.0 * (pred - target) / pred.size
