"""Data-parallel execution of the numeric runtime.

Each simulated worker holds a full model replica, computes gradients on
its batch shard, and the shards' gradients are all-reduced (summed)
before the update — the textbook data-parallel recipe.  Because the
loss is a *mean*, shard gradients are weighted by shard size so the
aggregate equals the serial full-batch gradient.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .model import MLP, LayerParams
from .tensor_ops import mse_loss_bwd, mse_loss_fwd


def shard_batch(
    x: np.ndarray, target: np.ndarray, num_workers: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split a batch into ``num_workers`` equal contiguous shards."""
    batch = x.shape[0]
    if batch % num_workers:
        raise ValueError(
            f"batch {batch} not divisible by {num_workers} workers"
        )
    size = batch // num_workers
    return [
        (x[i * size:(i + 1) * size], target[i * size:(i + 1) * size])
        for i in range(num_workers)
    ]


def allreduce_grads(
    per_worker: List[List[LayerParams]],
) -> List[LayerParams]:
    """Sum gradients across workers (the ring all-reduce's result)."""
    if not per_worker:
        raise ValueError("no worker gradients")
    num_layers = len(per_worker[0])
    total = []
    for layer in range(num_layers):
        weight = sum(w[layer].weight for w in per_worker)
        bias = sum(w[layer].bias for w in per_worker)
        total.append(LayerParams(weight, bias))
    return total


def dp_loss_and_grads(
    model: MLP,
    x: np.ndarray,
    target: np.ndarray,
    num_workers: int,
) -> Tuple[float, List[LayerParams]]:
    """Data-parallel loss + gradients, equal to the serial result.

    The global loss is the mean over all samples; each worker's local
    mean gradient is scaled by its shard fraction before the reduce.
    """
    shards = shard_batch(x, target, num_workers)
    batch = x.shape[0]
    per_worker = []
    loss_sum = 0.0
    for shard_x, shard_t in shards:
        pred, saved = model.forward(shard_x)
        local_loss = mse_loss_fwd(pred, shard_t)
        fraction = shard_x.shape[0] / batch
        loss_sum += local_loss * fraction
        grad = mse_loss_bwd(pred, shard_t) * fraction
        grads, _ = model.backward(saved, grad)
        per_worker.append(grads)
    return loss_sum, allreduce_grads(per_worker)


def dp_train_step(
    model: MLP,
    x: np.ndarray,
    target: np.ndarray,
    num_workers: int,
    lr: float,
) -> float:
    """One synchronized data-parallel SGD step; returns the loss."""
    loss, grads = dp_loss_and_grads(model, x, target, num_workers)
    model.apply_grads(grads, lr)
    return loss
