"""Numeric runtime: real numpy training under each parallel mechanism."""

from .hybrid import (
    dp_pp_loss_and_grads,
    dp_pp_rc_loss_and_grads,
    dp_rc_loss_and_grads,
    pp_rc_loss_and_grads,
)
from .data_parallel import (
    allreduce_grads,
    dp_loss_and_grads,
    dp_train_step,
    shard_batch,
)
from .model import MLP, LayerParams
from .pipeline import pp_loss_and_grads, split_stages
from .recompute import checkpoint_segments, rc_loss_and_grads
from .tensor_parallel import (
    column_parallel_bwd,
    column_parallel_fwd,
    merge_column_grads,
    merge_row_grads,
    row_parallel_bwd,
    row_parallel_fwd,
    split_columns,
    split_rows,
    tp_loss_and_grads,
)
from .tensor_ops import (
    linear_bwd,
    linear_fwd,
    mse_loss_bwd,
    mse_loss_fwd,
    relu_bwd,
    relu_fwd,
)
from .trainer import (
    TrainRun,
    dp_fn,
    make_dataset,
    max_weight_difference,
    pp_fn,
    rc_fn,
    runs_equivalent,
    serial_fn,
    tp_fn,
    train,
)

__all__ = [
    "MLP",
    "LayerParams",
    "TrainRun",
    "allreduce_grads",
    "checkpoint_segments",
    "column_parallel_bwd",
    "column_parallel_fwd",
    "dp_fn",
    "dp_pp_loss_and_grads",
    "dp_pp_rc_loss_and_grads",
    "dp_rc_loss_and_grads",
    "pp_rc_loss_and_grads",
    "dp_loss_and_grads",
    "dp_train_step",
    "linear_bwd",
    "linear_fwd",
    "make_dataset",
    "max_weight_difference",
    "merge_column_grads",
    "merge_row_grads",
    "mse_loss_bwd",
    "mse_loss_fwd",
    "pp_fn",
    "pp_loss_and_grads",
    "rc_fn",
    "rc_loss_and_grads",
    "relu_bwd",
    "relu_fwd",
    "row_parallel_bwd",
    "row_parallel_fwd",
    "runs_equivalent",
    "serial_fn",
    "shard_batch",
    "split_columns",
    "split_rows",
    "split_stages",
    "tp_fn",
    "tp_loss_and_grads",
    "train",
]
