"""Recomputation (activation checkpointing) in the numeric runtime.

Forward keeps only segment-boundary activations; backward re-runs each
segment's forward to regenerate the intermediates it needs.  The
gradients are *identical* to vanilla execution — recomputation trades
compute for memory without touching semantics, which is why Aceso's
inc/dec-rc primitives are always safe to apply.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .model import MLP, LayerParams
from .tensor_ops import (
    linear_bwd,
    linear_fwd,
    mse_loss_bwd,
    mse_loss_fwd,
    relu_bwd,
    relu_fwd,
)


def checkpoint_segments(
    num_layers: int, segment_size: int
) -> List[Tuple[int, int]]:
    """Layer spans recomputed as units."""
    if segment_size < 1:
        raise ValueError("segment_size must be positive")
    return [
        (lo, min(lo + segment_size, num_layers))
        for lo in range(0, num_layers, segment_size)
    ]


def _segment_forward(
    model: MLP, span: Tuple[int, int], h: np.ndarray, last_overall: int
) -> Tuple[np.ndarray, List[np.ndarray]]:
    saved = []
    lo, hi = span
    for i in range(lo, hi):
        saved.append(h)
        layer = model.layers[i]
        h = linear_fwd(h, layer.weight, layer.bias)
        if i != last_overall:
            h = relu_fwd(h)
    return h, saved


def rc_loss_and_grads(
    model: MLP,
    x: np.ndarray,
    target: np.ndarray,
    segment_size: int,
) -> Tuple[float, List[LayerParams]]:
    """Checkpointed loss + gradients (bit-equal to vanilla).

    Memory accounting is implicit: only one checkpoint per segment is
    held between forward and backward; intermediates are regenerated.
    """
    segments = checkpoint_segments(model.num_layers, segment_size)
    last = model.num_layers - 1
    checkpoints = []
    h = x
    for span in segments:
        checkpoints.append(h)
        h, _ = _segment_forward(model, span, h, last)
    loss = mse_loss_fwd(h, target)
    g = mse_loss_bwd(h, target)
    grads: List[LayerParams] = [None] * model.num_layers
    for span, checkpoint in zip(reversed(segments), reversed(checkpoints)):
        # Recompute the segment's intermediates from its checkpoint.
        _, saved = _segment_forward(model, span, checkpoint, last)
        lo, hi = span
        for local, i in enumerate(reversed(range(lo, hi))):
            xin = saved[hi - lo - 1 - local]
            layer = model.layers[i]
            pre = linear_fwd(xin, layer.weight, layer.bias)
            if i != last:
                g = relu_bwd(pre, g)
            grad_x, grad_w, grad_b = linear_bwd(xin, layer.weight, g)
            grads[i] = LayerParams(grad_w, grad_b)
            g = grad_x
    return loss, grads
