"""Tensor-parallel execution of the numeric runtime.

Implements Megatron-style column- and row-parallel linear layers on
simulated shards and shows they reproduce serial math exactly:

* **column-parallel**: ``W`` splits by output features; each shard
  computes a slice of ``y``; backward all-reduces the input gradient.
* **row-parallel**: ``W`` splits by input features (activations arrive
  sharded); forward all-reduces the partial outputs.

``tp_loss_and_grads`` chains column->ReLU->row (the transformer MLP
pattern) over an even number of layers.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .model import MLP, LayerParams
from .tensor_ops import (
    linear_bwd,
    linear_fwd,
    mse_loss_bwd,
    mse_loss_fwd,
    relu_bwd,
    relu_fwd,
)


def split_columns(layer: LayerParams, ways: int) -> List[LayerParams]:
    """Shard a layer output-feature-wise (column parallel)."""
    out = layer.weight.shape[1]
    if out % ways:
        raise ValueError(f"{out} output features not divisible by {ways}")
    size = out // ways
    return [
        LayerParams(
            layer.weight[:, i * size:(i + 1) * size].copy(),
            layer.bias[i * size:(i + 1) * size].copy(),
        )
        for i in range(ways)
    ]


def split_rows(layer: LayerParams, ways: int) -> List[LayerParams]:
    """Shard a layer input-feature-wise (row parallel).

    The bias is applied once (by shard 0) after the all-reduce.
    """
    fan_in = layer.weight.shape[0]
    if fan_in % ways:
        raise ValueError(f"{fan_in} input features not divisible by {ways}")
    size = fan_in // ways
    shards = []
    for i in range(ways):
        bias = layer.bias.copy() if i == 0 else np.zeros_like(layer.bias)
        shards.append(
            LayerParams(layer.weight[i * size:(i + 1) * size].copy(), bias)
        )
    return shards


def column_parallel_fwd(
    x: np.ndarray, shards: List[LayerParams]
) -> List[np.ndarray]:
    """Each shard's output slice (input is replicated)."""
    return [linear_fwd(x, s.weight, s.bias) for s in shards]


def column_parallel_bwd(
    x: np.ndarray,
    shards: List[LayerParams],
    grad_slices: List[np.ndarray],
) -> Tuple[np.ndarray, List[LayerParams]]:
    """All-reduced input gradient plus per-shard weight gradients."""
    grad_x_total = None
    grads = []
    for shard, g in zip(shards, grad_slices):
        grad_x, grad_w, grad_b = linear_bwd(x, shard.weight, g)
        grads.append(LayerParams(grad_w, grad_b))
        grad_x_total = grad_x if grad_x_total is None else grad_x_total + grad_x
    return grad_x_total, grads


def row_parallel_fwd(
    x_slices: List[np.ndarray], shards: List[LayerParams]
) -> np.ndarray:
    """All-reduced (summed) output of row-parallel shards."""
    partials = [
        linear_fwd(x, s.weight, s.bias)
        for x, s in zip(x_slices, shards)
    ]
    return sum(partials)


def row_parallel_bwd(
    x_slices: List[np.ndarray],
    shards: List[LayerParams],
    grad_out: np.ndarray,
) -> Tuple[List[np.ndarray], List[LayerParams]]:
    """Per-shard input-slice gradients and weight gradients."""
    grad_slices = []
    grads = []
    for x, shard in zip(x_slices, shards):
        grad_x, grad_w, grad_b = linear_bwd(x, shard.weight, grad_out)
        grads.append(LayerParams(grad_w, grad_b))
        grad_slices.append(grad_x)
    return grad_slices, grads


def merge_column_grads(grads: List[LayerParams]) -> LayerParams:
    """Reassemble a column-sharded gradient into the full layer."""
    return LayerParams(
        np.concatenate([g.weight for g in grads], axis=1),
        np.concatenate([g.bias for g in grads]),
    )


def merge_row_grads(grads: List[LayerParams]) -> LayerParams:
    """Reassemble a row-sharded gradient into the full layer.

    The bias is owned by shard 0 alone (it is added once, after the
    all-reduce), so only that shard's bias gradient counts.
    """
    return LayerParams(
        np.concatenate([g.weight for g in grads], axis=0),
        grads[0].bias.copy(),
    )


def tp_loss_and_grads(
    model: MLP,
    x: np.ndarray,
    target: np.ndarray,
    ways: int,
) -> Tuple[float, List[LayerParams]]:
    """Tensor-parallel loss + gradients over column/row layer pairs.

    Layers alternate column- and row-parallel (Megatron's MLP block
    pattern), so the model must have an even number of layers.
    """
    if model.num_layers % 2:
        raise ValueError("tensor-parallel execution expects layer pairs")
    h = x
    stack = []  # per pair: (x_in, col_shards, slices_pre, row_shards, x_slices)
    for pair in range(model.num_layers // 2):
        col = split_columns(model.layers[2 * pair], ways)
        row = split_rows(model.layers[2 * pair + 1], ways)
        slices_pre = column_parallel_fwd(h, col)
        x_slices = [relu_fwd(s) for s in slices_pre]
        out = row_parallel_fwd(x_slices, row)
        if pair < model.num_layers // 2 - 1:
            out_post = relu_fwd(out)
        else:
            out_post = out
        stack.append((h, col, slices_pre, row, x_slices, out))
        h = out_post
    loss = mse_loss_fwd(h, target)
    g = mse_loss_bwd(h, target)
    grads: List[LayerParams] = [None] * model.num_layers
    for pair in reversed(range(model.num_layers // 2)):
        x_in, col, slices_pre, row, x_slices, out = stack[pair]
        if pair < model.num_layers // 2 - 1:
            g = relu_bwd(out, g)
        grad_slices, row_grads = row_parallel_bwd(x_slices, row, g)
        grad_slices = [
            relu_bwd(pre, gs) for pre, gs in zip(slices_pre, grad_slices)
        ]
        g, col_grads = column_parallel_bwd(x_in, col, grad_slices)
        grads[2 * pair] = merge_column_grads(col_grads)
        grads[2 * pair + 1] = merge_row_grads(row_grads)
    return loss, grads
