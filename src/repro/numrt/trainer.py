"""Equivalence harness: serial vs. parallel training runs.

The paper's claim that "all reconfiguration primitives are
semantic-preserving" (§3.2.1) is validated here by *training*: run N
SGD steps serially and under each parallel mechanism (or combinations),
then compare losses and final weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from .data_parallel import dp_loss_and_grads
from .model import MLP, LayerParams
from .pipeline import pp_loss_and_grads
from .recompute import rc_loss_and_grads
from .tensor_parallel import tp_loss_and_grads

GradFn = Callable[[MLP, np.ndarray, np.ndarray], Tuple[float, List[LayerParams]]]


@dataclass
class TrainRun:
    """Losses per step and the final model of one training run."""

    losses: List[float]
    model: MLP


def make_dataset(
    num_samples: int, in_dim: int, out_dim: int, *, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """A fixed random-regression dataset."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(num_samples, in_dim))
    true = rng.normal(size=(in_dim, out_dim)) / np.sqrt(in_dim)
    target = x @ true + 0.01 * rng.normal(size=(num_samples, out_dim))
    return x, target


def train(
    model: MLP,
    x: np.ndarray,
    target: np.ndarray,
    grad_fn: GradFn,
    *,
    steps: int = 5,
    lr: float = 0.05,
) -> TrainRun:
    """Run ``steps`` SGD steps using ``grad_fn`` for loss/gradients."""
    model = model.clone()
    losses = []
    for _ in range(steps):
        loss, grads = grad_fn(model, x, target)
        model.apply_grads(grads, lr)
        losses.append(loss)
    return TrainRun(losses=losses, model=model)


def serial_fn(model: MLP, x: np.ndarray, t: np.ndarray):
    return model.loss_and_grads(x, t)


def dp_fn(num_workers: int) -> GradFn:
    return lambda model, x, t: dp_loss_and_grads(model, x, t, num_workers)


def tp_fn(ways: int) -> GradFn:
    return lambda model, x, t: tp_loss_and_grads(model, x, t, ways)


def pp_fn(num_stages: int, num_microbatches: int) -> GradFn:
    return lambda model, x, t: pp_loss_and_grads(
        model, x, t, num_stages, num_microbatches
    )


def rc_fn(segment_size: int) -> GradFn:
    return lambda model, x, t: rc_loss_and_grads(model, x, t, segment_size)


def max_weight_difference(a: MLP, b: MLP) -> float:
    """Largest absolute elementwise weight difference between models."""
    worst = 0.0
    for la, lb in zip(a.layers, b.layers):
        worst = max(worst, float(np.abs(la.weight - lb.weight).max()))
        worst = max(worst, float(np.abs(la.bias - lb.bias).max()))
    return worst


def runs_equivalent(
    reference: TrainRun, candidate: TrainRun, *, tol: float = 1e-9
) -> bool:
    """Whether two runs trained to the same weights and losses."""
    if len(reference.losses) != len(candidate.losses):
        return False
    loss_gap = max(
        abs(a - b) for a, b in zip(reference.losses, candidate.losses)
    )
    return (
        loss_gap <= tol
        and max_weight_difference(reference.model, candidate.model) <= tol
    )
