"""Pipeline-parallel execution of the numeric runtime.

Layers split into contiguous stages; the batch splits into
microbatches; each stage's gradients accumulate across microbatches.
Because summation of per-microbatch mean-scaled gradients equals the
full-batch gradient, pipeline execution is semantics-preserving — which
is what lets Aceso's inc/dec-op# primitives move ops freely.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .model import MLP, LayerParams
from .tensor_ops import mse_loss_bwd, mse_loss_fwd, relu_bwd, relu_fwd


def split_stages(num_layers: int, num_stages: int) -> List[Tuple[int, int]]:
    """Contiguous layer spans, as even as possible."""
    if not 1 <= num_stages <= num_layers:
        raise ValueError(
            f"cannot split {num_layers} layers into {num_stages} stages"
        )
    edges = np.linspace(0, num_layers, num_stages + 1).astype(int)
    return [(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:])]


def _stage_forward(
    model: MLP, span: Tuple[int, int], h: np.ndarray, is_last_stage: bool
) -> Tuple[np.ndarray, List[np.ndarray]]:
    saved = []
    lo, hi = span
    for i in range(lo, hi):
        saved.append(h)
        layer = model.layers[i]
        h = h @ layer.weight + layer.bias
        last_layer_overall = is_last_stage and i == hi - 1
        if not last_layer_overall:
            h = relu_fwd(h)
    return h, saved


def _stage_backward(
    model: MLP,
    span: Tuple[int, int],
    saved: List[np.ndarray],
    grad_out: np.ndarray,
    is_last_stage: bool,
    grads: List[LayerParams],
) -> np.ndarray:
    lo, hi = span
    g = grad_out
    for local, i in enumerate(reversed(range(lo, hi))):
        x = saved[hi - lo - 1 - local]
        layer = model.layers[i]
        pre = x @ layer.weight + layer.bias
        last_layer_overall = is_last_stage and i == hi - 1
        if not last_layer_overall:
            g = relu_bwd(pre, g)
        grad_w = x.T @ g
        grad_b = g.sum(axis=0)
        if grads[i] is None:
            grads[i] = LayerParams(grad_w, grad_b)
        else:
            grads[i].weight += grad_w
            grads[i].bias += grad_b
        g = g @ layer.weight.T
    return g


def pp_loss_and_grads(
    model: MLP,
    x: np.ndarray,
    target: np.ndarray,
    num_stages: int,
    num_microbatches: int,
) -> Tuple[float, List[LayerParams]]:
    """Pipeline loss + gradients, equal to the serial result.

    Gradient contributions of each microbatch are scaled by its batch
    fraction (the loss is a mean) and accumulated per layer.
    """
    batch = x.shape[0]
    if batch % num_microbatches:
        raise ValueError(
            f"batch {batch} not divisible into {num_microbatches} microbatches"
        )
    spans = split_stages(model.num_layers, num_stages)
    size = batch // num_microbatches
    grads: List[LayerParams] = [None] * model.num_layers
    total_loss = 0.0
    for m in range(num_microbatches):
        mb_x = x[m * size:(m + 1) * size]
        mb_t = target[m * size:(m + 1) * size]
        # Forward through stages, keeping per-stage activations.
        h = mb_x
        stage_saved = []
        for s, span in enumerate(spans):
            h, saved = _stage_forward(model, span, h, s == len(spans) - 1)
            stage_saved.append(saved)
        fraction = size / batch
        total_loss += mse_loss_fwd(h, mb_t) * fraction
        g = mse_loss_bwd(h, mb_t) * fraction
        # Backward through stages in reverse.
        for s in reversed(range(len(spans))):
            g = _stage_backward(
                model, spans[s], stage_saved[s], g,
                s == len(spans) - 1, grads,
            )
    return total_loss, grads
