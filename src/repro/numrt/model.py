"""A small trainable MLP and its serial forward/backward.

The serial execution is the semantic reference every parallel mechanism
in :mod:`repro.numrt` must match: identical loss, identical gradients
(up to floating-point reduction order), identical updated weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .tensor_ops import (
    linear_bwd,
    linear_fwd,
    mse_loss_bwd,
    mse_loss_fwd,
    relu_bwd,
    relu_fwd,
)


@dataclass
class LayerParams:
    """One linear layer's parameters (and their gradients)."""

    weight: np.ndarray
    bias: np.ndarray

    def clone(self) -> "LayerParams":
        return LayerParams(self.weight.copy(), self.bias.copy())


class MLP:
    """``dims[0] -> dims[1] -> ... -> dims[-1]`` with ReLU between."""

    def __init__(self, dims: List[int], *, seed: int = 0) -> None:
        if len(dims) < 2:
            raise ValueError("need at least input and output dims")
        rng = np.random.default_rng(seed)
        self.dims = list(dims)
        self.layers: List[LayerParams] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            scale = 1.0 / np.sqrt(fan_in)
            self.layers.append(
                LayerParams(
                    weight=rng.normal(0.0, scale, size=(fan_in, fan_out)),
                    bias=np.zeros(fan_out),
                )
            )

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def clone(self) -> "MLP":
        copy = MLP.__new__(MLP)
        copy.dims = list(self.dims)
        copy.layers = [layer.clone() for layer in self.layers]
        return copy

    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Returns (output, saved activations for backward).

        ``saved[i]`` is the *input* to layer ``i`` (post-ReLU of the
        previous layer).
        """
        saved = []
        h = x
        for i, layer in enumerate(self.layers):
            saved.append(h)
            h = linear_fwd(h, layer.weight, layer.bias)
            if i < self.num_layers - 1:
                h = relu_fwd(h)
        return h, saved

    def backward(
        self,
        saved: List[np.ndarray],
        grad_out: np.ndarray,
    ) -> Tuple[List[LayerParams], np.ndarray]:
        """Returns (per-layer gradients, grad w.r.t. the input)."""
        grads: List[LayerParams] = [None] * self.num_layers
        g = grad_out
        for i in reversed(range(self.num_layers)):
            x = saved[i]
            pre_act = linear_fwd(x, self.layers[i].weight, self.layers[i].bias)
            if i < self.num_layers - 1:
                g = relu_bwd(pre_act, g)
            grad_x, grad_w, grad_b = linear_bwd(x, self.layers[i].weight, g)
            grads[i] = LayerParams(grad_w, grad_b)
            g = grad_x
        return grads, g

    # ------------------------------------------------------------------
    def loss_and_grads(
        self, x: np.ndarray, target: np.ndarray
    ) -> Tuple[float, List[LayerParams]]:
        """Serial reference: full-batch loss and parameter gradients."""
        pred, saved = self.forward(x)
        loss = mse_loss_fwd(pred, target)
        grads, _ = self.backward(saved, mse_loss_bwd(pred, target))
        return loss, grads

    def apply_grads(self, grads: List[LayerParams], lr: float) -> None:
        """In-place SGD step."""
        if len(grads) != self.num_layers:
            raise ValueError("gradient count mismatch")
        for layer, grad in zip(self.layers, grads):
            layer.weight -= lr * grad.weight
            layer.bias -= lr * grad.bias
