"""Hybrid parallel execution: the combinations real configs use.

An Aceso configuration is never a single mechanism — it is pipeline
stages *times* per-stage data parallelism *times* recomputation.  This
module composes the numeric runtime's mechanisms the same way a
deployed plan would and shows the composition is still semantics-
preserving (the property §4 of the paper validates against
Megatron-LM outputs).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .data_parallel import allreduce_grads, shard_batch
from .model import MLP, LayerParams
from .pipeline import pp_loss_and_grads
from .recompute import rc_loss_and_grads
from .tensor_ops import mse_loss_bwd, mse_loss_fwd, relu_bwd, relu_fwd


def dp_pp_loss_and_grads(
    model: MLP,
    x: np.ndarray,
    target: np.ndarray,
    dp_ways: int,
    num_stages: int,
    num_microbatches: int,
) -> Tuple[float, List[LayerParams]]:
    """Data parallelism over pipeline replicas (Figure 2's hierarchy).

    Each of the ``dp_ways`` workers runs the *pipelined* model over its
    batch shard; gradients all-reduce across replicas.  Equals serial
    full-batch training exactly.
    """
    shards = shard_batch(x, target, dp_ways)
    batch = x.shape[0]
    per_worker = []
    total_loss = 0.0
    for shard_x, shard_t in shards:
        fraction = shard_x.shape[0] / batch
        loss, grads = pp_loss_and_grads(
            model, shard_x, shard_t, num_stages, num_microbatches
        )
        # pp_loss_and_grads normalizes by the *shard* batch; rescale to
        # the global mean before the replica all-reduce.
        total_loss += loss * fraction
        for grad in grads:
            grad.weight *= fraction
            grad.bias *= fraction
        per_worker.append(grads)
    return total_loss, allreduce_grads(per_worker)


def dp_rc_loss_and_grads(
    model: MLP,
    x: np.ndarray,
    target: np.ndarray,
    dp_ways: int,
    segment_size: int,
) -> Tuple[float, List[LayerParams]]:
    """Data parallelism over checkpointed replicas."""
    shards = shard_batch(x, target, dp_ways)
    batch = x.shape[0]
    per_worker = []
    total_loss = 0.0
    for shard_x, shard_t in shards:
        fraction = shard_x.shape[0] / batch
        loss, grads = rc_loss_and_grads(
            model, shard_x, shard_t, segment_size
        )
        total_loss += loss * fraction
        for grad in grads:
            grad.weight *= fraction
            grad.bias *= fraction
        per_worker.append(grads)
    return total_loss, allreduce_grads(per_worker)


def pp_rc_loss_and_grads(
    model: MLP,
    x: np.ndarray,
    target: np.ndarray,
    num_stages: int,
    num_microbatches: int,
    segment_size: int,
) -> Tuple[float, List[LayerParams]]:
    """Pipeline stages whose backward passes recompute activations.

    Forward keeps only each stage's *input* checkpoint per microbatch
    (the 1F1B memory regime with recomputation enabled); backward
    re-runs the stage forward in ``segment_size``-layer chunks before
    differentiating.
    """
    from .pipeline import split_stages

    batch = x.shape[0]
    if batch % num_microbatches:
        raise ValueError("batch not divisible into microbatches")
    spans = split_stages(model.num_layers, num_stages)
    size = batch // num_microbatches
    last = model.num_layers - 1
    grads: List[LayerParams] = [None] * model.num_layers
    total_loss = 0.0

    for m in range(num_microbatches):
        mb_x = x[m * size:(m + 1) * size]
        mb_t = target[m * size:(m + 1) * size]
        # Forward: store only per-stage input checkpoints.
        checkpoints = []
        h = mb_x
        for span in spans:
            checkpoints.append(h)
            lo, hi = span
            for i in range(lo, hi):
                layer = model.layers[i]
                h = h @ layer.weight + layer.bias
                if i != last:
                    h = relu_fwd(h)
        fraction = size / batch
        total_loss += mse_loss_fwd(h, mb_t) * fraction
        g = mse_loss_bwd(h, mb_t) * fraction
        # Backward per stage: recompute the stage from its checkpoint
        # in segments, then differentiate.
        for span, checkpoint in zip(reversed(spans), reversed(checkpoints)):
            lo, hi = span
            # Recompute and retain inputs for each layer of the stage
            # segment by segment (bounded extra memory).
            saved = [None] * (hi - lo)
            h_seg = checkpoint
            for seg_lo in range(lo, hi, segment_size):
                seg_hi = min(seg_lo + segment_size, hi)
                for i in range(seg_lo, seg_hi):
                    saved[i - lo] = h_seg
                    layer = model.layers[i]
                    h_seg = h_seg @ layer.weight + layer.bias
                    if i != last:
                        h_seg = relu_fwd(h_seg)
            for i in reversed(range(lo, hi)):
                xin = saved[i - lo]
                layer = model.layers[i]
                pre = xin @ layer.weight + layer.bias
                if i != last:
                    g = relu_bwd(pre, g)
                grad_w = xin.T @ g
                grad_b = g.sum(axis=0)
                if grads[i] is None:
                    grads[i] = LayerParams(grad_w, grad_b)
                else:
                    grads[i].weight += grad_w
                    grads[i].bias += grad_b
                g = g @ layer.weight.T
    return total_loss, grads


def dp_pp_rc_loss_and_grads(
    model: MLP,
    x: np.ndarray,
    target: np.ndarray,
    dp_ways: int,
    num_stages: int,
    num_microbatches: int,
    segment_size: int,
) -> Tuple[float, List[LayerParams]]:
    """The full hierarchy: dp replicas of a recomputing pipeline."""
    shards = shard_batch(x, target, dp_ways)
    batch = x.shape[0]
    per_worker = []
    total_loss = 0.0
    for shard_x, shard_t in shards:
        fraction = shard_x.shape[0] / batch
        loss, grads = pp_rc_loss_and_grads(
            model, shard_x, shard_t, num_stages, num_microbatches,
            segment_size,
        )
        total_loss += loss * fraction
        for grad in grads:
            grad.weight *= fraction
            grad.bias *= fraction
        per_worker.append(grads)
    return total_loss, allreduce_grads(per_worker)
