"""The strategy arena: race registered searchers under equal budgets.

Aceso's headline claim is not "greedy search finds good plans" but
"greedy bottleneck alleviation finds them *cheaper* than the
alternatives searching the same space".  The arena makes that claim
measurable: every registered strategy runs from the same initial
configuration, against its own **fresh** :class:`PerfModel` (no
strategy inherits another's warm cache), under the same
:class:`SearchBudget` and per-entry deadline.  The output is one
:class:`TournamentResult` — per-entry best objective, estimates-to-
best, and a deterministic quality-vs-cost curve (best objective by
iteration index) — serialized as ``BENCH_strategies.json``.

Entries run serially by default; with ``workers > 1`` they are
dispatched onto the crash-safe :class:`~repro.core.pool.WorkerPool`
(an entry that crashes its worker becomes a failure record, the rest
still report).  Lifecycle is published as ``arena.*`` telemetry
events, and each worker's captured ``search.strategy.*`` stream is
re-emitted with entry attribution so one run log holds the whole
tournament.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..cluster.topology import ClusterSpec
from ..ioutil import write_json_atomic
from ..ir.graph import OpGraph
from ..parallel.initializer import balanced_config
from ..perfmodel.model import PerfModel
from ..telemetry import WARNING, get_bus
from ..telemetry.events import (
    ARENA_BEGIN,
    ARENA_END,
    ARENA_ENTRY_BEGIN,
    ARENA_ENTRY_END,
    ARENA_ENTRY_FAILED,
)
from ..core.budget import Deadline, SearchBudget
from ..core.pool import WorkerPool
from ..core.search import SearchResult
from ..core.searcher import build_options, make_searcher

#: Format marker for ``BENCH_strategies.json``.
TOURNAMENT_FORMAT_VERSION = 1

#: Seconds past the per-entry deadline before a pool worker is reaped.
ENTRY_KILL_GRACE = 1.0


@dataclass(frozen=True)
class ArenaEntry:
    """One tournament lane: a strategy, its seed, and extra kwargs.

    ``strategy_kwargs`` must *not* repeat ``seed`` — the entry's
    ``seed`` field is folded in so sweeps over seeds stay declarative.
    """

    strategy: str
    seed: int = 0
    strategy_kwargs: Optional[dict] = None

    @property
    def name(self) -> str:
        return f"{self.strategy}#{self.seed}"

    def options(self):
        kwargs = dict(self.strategy_kwargs or {})
        kwargs["seed"] = self.seed
        return build_options(self.strategy, kwargs)

    def to_json(self) -> dict:
        return {
            "strategy": self.strategy,
            "seed": self.seed,
            "strategy_kwargs": dict(self.strategy_kwargs or {}),
        }

    @classmethod
    def from_json(cls, data: dict) -> "ArenaEntry":
        return cls(
            strategy=data["strategy"],
            seed=int(data.get("seed", 0)),
            strategy_kwargs=dict(data.get("strategy_kwargs", {})) or None,
        )


@dataclass
class EntryOutcome:
    """What one lane reported (or how it failed).

    ``curve`` is the deterministic quality-vs-cost trajectory:
    ``[iteration index, best objective]`` pairs, bit-reproducible from
    the entry's seed (unlike wall-clock convergence curves).
    """

    strategy: str
    seed: int
    best_objective: Optional[float] = None
    feasible: bool = False
    partial: bool = False
    converged: bool = False
    num_estimates: int = 0
    estimates_to_best: int = 0
    iterations: int = 0
    elapsed_seconds: float = 0.0
    best_signature: str = ""
    curve: List[List[float]] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def to_json(self) -> dict:
        return {
            "strategy": self.strategy,
            "seed": self.seed,
            "best_objective": self.best_objective,
            "feasible": self.feasible,
            "partial": self.partial,
            "converged": self.converged,
            "num_estimates": self.num_estimates,
            "estimates_to_best": self.estimates_to_best,
            "iterations": self.iterations,
            "elapsed_seconds": self.elapsed_seconds,
            "best_signature": self.best_signature,
            "curve": [list(point) for point in self.curve],
            "error": self.error,
        }

    @classmethod
    def from_json(cls, data: dict) -> "EntryOutcome":
        return cls(
            strategy=data["strategy"],
            seed=int(data.get("seed", 0)),
            best_objective=data.get("best_objective"),
            feasible=bool(data.get("feasible", False)),
            partial=bool(data.get("partial", False)),
            converged=bool(data.get("converged", False)),
            num_estimates=int(data.get("num_estimates", 0)),
            estimates_to_best=int(data.get("estimates_to_best", 0)),
            iterations=int(data.get("iterations", 0)),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            best_signature=str(data.get("best_signature", "")),
            curve=[list(point) for point in data.get("curve", [])],
            error=data.get("error"),
        )


@dataclass
class TournamentResult:
    """Everything one tournament produced, JSON round-trippable."""

    label: str
    stage_count: int
    budget: dict
    deadline_seconds: Optional[float]
    outcomes: List[EntryOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def winner(self) -> Optional[EntryOutcome]:
        """Best surviving entry: feasible plans first, then objective."""
        ranked = [o for o in self.outcomes if not o.failed]
        if not ranked:
            return None
        return min(
            ranked,
            key=lambda o: (not o.feasible, o.best_objective),
        )

    def outcome_for(self, strategy: str) -> Optional[EntryOutcome]:
        """The best (lowest-objective) non-failed lane of a strategy."""
        lanes = [
            o
            for o in self.outcomes
            if o.strategy == strategy and not o.failed
        ]
        if not lanes:
            return None
        return min(lanes, key=lambda o: (not o.feasible, o.best_objective))

    def to_json(self) -> dict:
        winner = self.winner
        return {
            "format_version": TOURNAMENT_FORMAT_VERSION,
            "label": self.label,
            "stage_count": self.stage_count,
            "budget": dict(self.budget),
            "deadline_seconds": self.deadline_seconds,
            "entries": [o.to_json() for o in self.outcomes],
            "winner": winner.strategy if winner is not None else None,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TournamentResult":
        result = cls(
            label=str(data.get("label", "")),
            stage_count=int(data["stage_count"]),
            budget=dict(data["budget"]),
            deadline_seconds=data.get("deadline_seconds"),
            outcomes=[
                EntryOutcome.from_json(entry)
                for entry in data.get("entries", [])
            ],
            wall_seconds=float(data.get("wall_seconds", 0.0)),
        )
        return result

    def write_json(self, path) -> None:
        """Atomic write, matching the repo's artifact conventions."""
        write_json_atomic(path, self.to_json())


def _outcome_from_result(
    entry: ArenaEntry, result: SearchResult
) -> EntryOutcome:
    return EntryOutcome(
        strategy=entry.strategy,
        seed=entry.seed,
        best_objective=result.best_objective,
        feasible=result.is_feasible,
        partial=result.partial,
        converged=result.converged,
        num_estimates=result.num_estimates,
        estimates_to_best=result.estimates_to_best,
        iterations=result.trace.num_iterations,
        elapsed_seconds=result.elapsed_seconds,
        best_signature=result.best_config.signature(),
        curve=[
            [record.index, record.best_objective]
            for record in result.trace.records
        ],
    )


def _run_entry(
    graph: OpGraph,
    cluster: ClusterSpec,
    perf_model: PerfModel,
    entry: ArenaEntry,
    stage_count: int,
    budget_kwargs: dict,
    deadline_seconds: Optional[float],
) -> EntryOutcome:
    searcher = make_searcher(
        entry.strategy, graph, cluster, perf_model, options=entry.options()
    )
    init = balanced_config(graph, cluster, stage_count)
    deadline = (
        None if deadline_seconds is None else Deadline(deadline_seconds)
    )
    result = searcher.run(
        init, SearchBudget(**budget_kwargs), deadline=deadline
    )
    return _outcome_from_result(entry, result)


def _entry_worker(payload: tuple) -> EntryOutcome:
    """Run one lane in a pool worker (module-level so it pickles)."""
    (graph, cluster, database, entry_json, stage_count, budget_kwargs,
     model_kwargs, deadline_seconds) = payload
    entry = ArenaEntry.from_json(entry_json)
    perf_model = PerfModel(graph, cluster, database, **model_kwargs)
    return _run_entry(
        graph, cluster, perf_model, entry, stage_count, budget_kwargs,
        deadline_seconds,
    )


def _entry_payload_from_task(
    shared: tuple, task: Tuple[dict, Optional[float]]
):
    (graph, cluster, database, stage_count, budget_kwargs,
     model_kwargs) = shared
    entry_json, deadline_seconds = task
    return (graph, cluster, database, entry_json, stage_count,
            budget_kwargs, model_kwargs, deadline_seconds)


def run_tournament(
    graph: OpGraph,
    cluster: ClusterSpec,
    database,
    *,
    entries: Sequence[ArenaEntry],
    stage_count: int,
    budget_per_entry: Optional[dict] = None,
    deadline_seconds: Optional[float] = None,
    workers: int = 1,
    model_kwargs: Optional[dict] = None,
    label: str = "",
) -> TournamentResult:
    """Race ``entries`` under equal budget and per-entry deadline.

    Every lane searches from ``balanced_config(graph, cluster,
    stage_count)`` with a fresh :class:`PerfModel` built from the shared
    profile ``database``, so estimate counts are comparable across
    strategies (the same accounting trick the stage-count driver uses).
    Strategy names and kwargs are validated up front — a typo fails
    with a typed ``ACE212``/``ACE213`` error before any search or fork.

    ``workers > 1`` dispatches lanes onto a :class:`WorkerPool`; a lane
    whose worker crashes or overruns ``deadline_seconds`` by
    :data:`ENTRY_KILL_GRACE` becomes a failure outcome (no retries —
    a tournament rematch is a rerun, not a retry).  Results are merged
    in entry order either way, so the report is deterministic.
    """
    if not entries:
        raise ValueError("no arena entries to race")
    if stage_count < 1:
        raise ValueError("stage_count must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    budget_kwargs = SearchBudget.validate_kwargs(
        dict(budget_per_entry or {"max_iterations": 30})
    )
    for entry in entries:
        entry.options()  # typed ACE212/ACE213 error before any work

    bus = get_bus()
    bus.emit(
        ARENA_BEGIN,
        source="arena",
        label=label,
        entries=[entry.name for entry in entries],
        stage_count=stage_count,
        budget=dict(budget_kwargs),
        deadline_seconds=deadline_seconds,
        workers=min(workers, len(entries)),
    )
    started = time.perf_counter()
    outcomes: List[Optional[EntryOutcome]] = [None] * len(entries)

    if workers <= 1 or len(entries) <= 1:
        for index, entry in enumerate(entries):
            bus.emit(
                ARENA_ENTRY_BEGIN,
                source="arena",
                entry=entry.name,
                strategy=entry.strategy,
                seed=entry.seed,
            )
            perf_model = PerfModel(
                graph, cluster, database, **(model_kwargs or {})
            )
            try:
                outcome = _run_entry(
                    graph, cluster, perf_model, entry, stage_count,
                    budget_kwargs, deadline_seconds,
                )
            except Exception as exc:  # noqa: BLE001 - lane fails, race continues
                outcome = EntryOutcome(
                    strategy=entry.strategy,
                    seed=entry.seed,
                    error=f"{type(exc).__name__}: {exc}",
                )
                bus.emit(
                    ARENA_ENTRY_FAILED,
                    source="arena",
                    level=WARNING,
                    entry=entry.name,
                    error=outcome.error,
                )
            else:
                bus.emit(
                    ARENA_ENTRY_END,
                    source="arena",
                    entry=entry.name,
                    best_objective=outcome.best_objective,
                    feasible=outcome.feasible,
                    partial=outcome.partial,
                    num_estimates=outcome.num_estimates,
                    estimates_to_best=outcome.estimates_to_best,
                )
            outcomes[index] = outcome
    else:
        outcomes = _run_entries_in_pool(
            graph, cluster, database, entries, stage_count,
            budget_kwargs, model_kwargs or {}, deadline_seconds,
            min(workers, len(entries)), bus,
        )

    result = TournamentResult(
        label=label,
        stage_count=stage_count,
        budget=dict(budget_kwargs),
        deadline_seconds=deadline_seconds,
        outcomes=[o for o in outcomes if o is not None],
        wall_seconds=time.perf_counter() - started,
    )
    winner = result.winner
    bus.emit(
        ARENA_END,
        source="arena",
        label=label,
        winner=winner.strategy if winner is not None else None,
        winner_objective=(
            winner.best_objective if winner is not None else None
        ),
        failed=[o.strategy for o in result.outcomes if o.failed],
        wall_seconds=result.wall_seconds,
    )
    return result


def _run_entries_in_pool(
    graph,
    cluster,
    database,
    entries: Sequence[ArenaEntry],
    stage_count: int,
    budget_kwargs: dict,
    model_kwargs: dict,
    deadline_seconds: Optional[float],
    max_workers: int,
    bus,
) -> List[Optional[EntryOutcome]]:
    """Dispatch lanes onto a :class:`WorkerPool`, no retries.

    The heavy problem state crosses into workers once (fork-inherited);
    each dispatched task is just ``(entry_json, deadline_seconds)``.
    """
    import functools

    shared = (graph, cluster, database, stage_count, budget_kwargs,
              model_kwargs)
    pool = WorkerPool(
        _entry_worker,
        functools.partial(_entry_payload_from_task, shared),
        max_workers=max_workers,
        bus=bus,
    )
    pending = list(range(len(entries)))
    active: dict = {}
    outcomes: List[Optional[EntryOutcome]] = [None] * len(entries)

    def fail(index: int, error: str) -> None:
        entry = entries[index]
        outcomes[index] = EntryOutcome(
            strategy=entry.strategy, seed=entry.seed, error=error
        )
        bus.emit(
            ARENA_ENTRY_FAILED,
            source="arena",
            level=WARNING,
            entry=entry.name,
            error=error,
        )

    try:
        while pending or active:
            while pending:
                worker = pool.acquire()
                if worker is None:
                    break
                index = pending[0]
                entry = entries[index]
                try:
                    worker.conn.send(
                        (entry.to_json(), deadline_seconds)
                    )
                except (BrokenPipeError, OSError):
                    pool.discard(worker)
                    continue
                pending.pop(0)
                worker.busy = True
                bus.emit(
                    ARENA_ENTRY_BEGIN,
                    source="arena",
                    entry=entry.name,
                    strategy=entry.strategy,
                    seed=entry.seed,
                    worker_pid=worker.pid,
                )
                kill_at = (
                    time.monotonic() + deadline_seconds + ENTRY_KILL_GRACE
                    if deadline_seconds is not None
                    else None
                )
                active[index] = (worker, kill_at)

            finished = []
            for index, (worker, kill_at) in active.items():
                entry = entries[index]
                message = None
                if worker.conn.poll(0):
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        message = None
                if message is None and not worker.alive():
                    if worker.conn.poll(0.05):
                        try:
                            message = worker.conn.recv()
                        except (EOFError, OSError):
                            message = None
                if message is not None:
                    finished.append(index)
                    worker.busy = False
                    worker.tasks_done += 1
                    status, value, worker_events = message
                    if bus.active:
                        for event in worker_events:
                            bus.emit_event(
                                event.with_attrs(arena_entry=entry.name)
                            )
                    if status == "ok":
                        outcomes[index] = value
                        bus.emit(
                            ARENA_ENTRY_END,
                            source="arena",
                            entry=entry.name,
                            best_objective=value.best_objective,
                            feasible=value.feasible,
                            partial=value.partial,
                            num_estimates=value.num_estimates,
                            estimates_to_best=value.estimates_to_best,
                        )
                    else:
                        fail(index, value)
                elif not worker.alive():
                    finished.append(index)
                    pool.discard(worker)
                    fail(
                        index,
                        "worker process died with exit code "
                        f"{worker.process.exitcode}",
                    )
                elif kill_at is not None and time.monotonic() >= kill_at:
                    finished.append(index)
                    pool.discard(worker, kill=True)
                    fail(
                        index,
                        "worker reaped past the per-entry deadline",
                    )
            for index in finished:
                active.pop(index)
            if active and not finished:
                time.sleep(0.005)
    finally:
        pool.shutdown()
    return outcomes
