"""Tournament harness racing search strategies under equal budgets."""

from .tournament import (
    ENTRY_KILL_GRACE,
    TOURNAMENT_FORMAT_VERSION,
    ArenaEntry,
    EntryOutcome,
    TournamentResult,
    run_tournament,
)

__all__ = [
    "ENTRY_KILL_GRACE",
    "TOURNAMENT_FORMAT_VERSION",
    "ArenaEntry",
    "EntryOutcome",
    "TournamentResult",
    "run_tournament",
]
